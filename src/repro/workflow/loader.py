"""Load workflow definitions from ordinary Python files.

The ``yprov wf`` commands (and the CI crash-smoke job) need to rebuild the
*same* DAG in a fresh process that never saw the original run — resume is
only meaningful if the workflow's shape can be reconstructed from source.
The contract is one zero-argument factory::

    # pipeline.py
    def build_workflow():
        from repro.workflow import Workflow
        wf = Workflow("my_pipeline")
        ...
        return wf

``load_workflow_file`` imports the file and calls the factory; every
failure mode (missing file, import error surface, wrong return type) is a
:class:`~repro.errors.WorkflowError` so the CLI reports it uniformly.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path
from typing import Union

from repro.errors import WorkflowError
from repro.workflow.dag import Workflow

PathLike = Union[str, Path]

#: Name of the factory function a workflow definition file must export.
FACTORY_NAME = "build_workflow"


def load_workflow_file(path: PathLike) -> Workflow:
    """Import *path* and return the Workflow its ``build_workflow()`` makes."""
    file_path = Path(path)
    if not file_path.is_file():
        raise WorkflowError(f"workflow file not found: {file_path}")
    spec = importlib.util.spec_from_file_location(
        "repro_wf_definition", file_path
    )
    if spec is None or spec.loader is None:
        raise WorkflowError(f"cannot import workflow file: {file_path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    factory = getattr(module, FACTORY_NAME, None)
    if not callable(factory):
        raise WorkflowError(
            f"{file_path} does not define a {FACTORY_NAME}() factory"
        )
    workflow = factory()
    if not isinstance(workflow, Workflow):
        raise WorkflowError(
            f"{FACTORY_NAME}() in {file_path} returned "
            f"{type(workflow).__name__}, expected a Workflow"
        )
    return workflow
