"""Workflow-level provenance producer (yProv4WFs analogue).

Maps a :class:`~repro.workflow.dag.WorkflowResult` onto W3C PROV, keeping
the document "as generalized as possible, meaning avoiding domain-oriented
tags" (paper §2): tasks are plain activities, the WFMS is an agent, task
outputs become entities, and dataflow edges use ``wasInformedBy`` /
``used`` / ``wasGeneratedBy``.

**Recovery provenance**: when the run was journaled (pass its
:class:`~repro.workflow.journal.WorkflowHistory`), every execution
*attempt* becomes its own Activity (``wf:task/<name>/attempt/<k>``) linked
``wasInformedBy`` to its predecessor — including across resume boundaries
— with ``repro:resumed`` marking attempts in resumed segments and
``repro:quarantined`` marking poisoned tasks, so lineage queries (PROVQL)
can answer "which outputs came from a retried or resumed task".
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.core.experiment import utc
from repro.core.provgen import REPRO_NS
from repro.prov.document import ProvDocument
from repro.prov.identifiers import Namespace
from repro.workflow.dag import TaskState, Workflow, WorkflowResult
from repro.workflow.journal import WorkflowHistory

#: workflow vocabulary namespace (kept minimal & domain-agnostic)
YPROV4WFS = Namespace("yprov4wfs", "https://github.com/HPCI-Lab/yProv4WFs#")


def _output_value_repr(value: Any) -> str:
    """Compact, deterministic representation of a task output value."""
    try:
        return json.dumps(value, sort_keys=True, default=str)
    except TypeError:
        return repr(value)


def build_workflow_document(
    workflow: Workflow,
    result: WorkflowResult,
    user_namespace: str = "http://example.org/",
    username: str = "user",
    history: Optional[WorkflowHistory] = None,
) -> ProvDocument:
    """Build the workflow-level PROV document for one execution.

    When *history* (the parsed journal of a journaled run) is given, the
    document additionally carries recovery provenance: one Activity per
    execution attempt, chained ``wasInformedBy`` across retries and resume
    boundaries, with ``repro:resumed`` / ``repro:quarantined`` markers.
    """
    doc = ProvDocument()
    wf = doc.add_namespace("wf", user_namespace)
    doc.add_namespace(YPROV4WFS)
    if history is not None:
        doc.add_namespace(REPRO_NS)

    user_agent = doc.agent(
        wf(f"agent/{username}"),
        {"prov:type": YPROV4WFS("User"), "prov:label": username},
    )
    wfms_agent = doc.agent(
        YPROV4WFS("wfms"),
        {"prov:type": YPROV4WFS("WorkflowManagementSystem"),
         "prov:label": "repro workflow engine"},
    )
    doc.acted_on_behalf_of(wfms_agent.identifier, user_agent.identifier)

    wf_id = wf(f"workflow/{result.workflow_name}")
    doc.activity(
        wf_id,
        start_time=utc(result.start_time),
        end_time=utc(result.end_time),
        attributes={
            "prov:type": YPROV4WFS("WorkflowRun"),
            "prov:label": result.workflow_name,
            "yprov4wfs:succeeded": result.succeeded,
            "yprov4wfs:n_tasks": len(result.tasks),
            **(
                {
                    "yprov4wfs:segments": history.segments,
                    "repro:resumed": history.resumed,
                }
                if history is not None
                else {}
            ),
        },
    )
    doc.was_associated_with(wf_id, wfms_agent.identifier)
    doc.was_associated_with(wf_id, user_agent.identifier)

    task_ids: Dict[str, Any] = {}
    output_entity_ids: Dict[str, Dict[str, Any]] = {}

    for name, task_result in result.tasks.items():
        task = workflow.tasks.get(name)
        task_id = wf(f"task/{name}")
        task_ids[name] = task_id
        attrs: Dict[str, Any] = {
            "prov:type": YPROV4WFS("Task"),
            "prov:label": name,
            "yprov4wfs:state": task_result.state.value,
            "yprov4wfs:attempts": task_result.attempts,
        }
        if task is not None and task.description:
            attrs["yprov4wfs:description"] = task.description
        if task_result.error:
            attrs["yprov4wfs:error"] = task_result.error
        if history is not None:
            if task_result.state is TaskState.QUARANTINED:
                attrs["repro:quarantined"] = True
            if task_result.replayed:
                attrs["repro:replayed"] = True
        doc.activity(
            task_id,
            start_time=utc(task_result.start_time) if task_result.start_time else None,
            end_time=utc(task_result.end_time) if task_result.end_time else None,
            attributes=attrs,
        )
        doc.was_started_by(task_id, starter=wf_id)
        doc.was_informed_by(task_id, wf_id)

        # outputs as entities
        output_entity_ids[name] = {}
        for key, value in task_result.outputs.items():
            ent_id = wf(f"data/{name}/{key}")
            doc.entity(
                ent_id,
                {
                    "prov:type": YPROV4WFS("Data"),
                    "prov:label": key,
                    "yprov4wfs:value": _output_value_repr(value),
                },
            )
            when = utc(task_result.end_time) if task_result.end_time else None
            doc.was_generated_by(ent_id, task_id, time=when)
            output_entity_ids[name][key] = ent_id

    # dataflow: each task used its dependencies' outputs and wasInformedBy them
    for name, task in workflow.tasks.items():
        if name not in task_ids:
            continue
        for dep in task.deps:
            if dep in task_ids:
                doc.was_informed_by(task_ids[name], task_ids[dep])
            for ent_id in output_entity_ids.get(dep, {}).values():
                task_result = result.tasks[name]
                when = utc(task_result.start_time) if task_result.start_time else None
                doc.used(task_ids[name], ent_id, time=when)

    if history is not None:
        _add_attempt_lineage(doc, wf, history, task_ids)

    return doc


def _add_attempt_lineage(
    doc: ProvDocument,
    wf: Namespace,
    history: WorkflowHistory,
    task_ids: Dict[str, Any],
) -> None:
    """Emit one Activity per journaled execution attempt, chained in order.

    Consecutive attempts of the same task are linked ``wasInformedBy`` —
    attempt *k* was informed by attempt *k-1* — and the chain runs straight
    across resume boundaries, so a PROVQL ``TRAVERSE upstream VIA
    wasInformedBy`` from the final attempt walks the task's whole retry /
    crash / resume history.
    """
    for task_name in sorted(history.attempts):
        prev_id = None
        for attempt in history.attempts[task_name]:
            attempt_id = wf(f"task/{task_name}/attempt/{attempt.number}")
            attrs: Dict[str, Any] = {
                "prov:type": YPROV4WFS("TaskAttempt"),
                "prov:label": f"{task_name} attempt {attempt.number}",
                "yprov4wfs:task": task_name,
                "yprov4wfs:attempt": attempt.number,
                "yprov4wfs:segment": attempt.segment,
                "yprov4wfs:outcome": attempt.outcome or "interrupted",
            }
            if attempt.error:
                attrs["yprov4wfs:error"] = attempt.error
            if attempt.segment > 0:
                # this attempt ran in a resumed segment, after >=1 crash
                attrs["repro:resumed"] = True
            doc.activity(
                attempt_id,
                start_time=utc(attempt.start_time),
                end_time=utc(attempt.end_time) if attempt.end_time else None,
                attributes=attrs,
            )
            task_id = task_ids.get(task_name)
            if task_id is not None:
                doc.was_started_by(attempt_id, starter=task_id)
            if prev_id is not None:
                doc.was_informed_by(attempt_id, prev_id)
            prev_id = attempt_id
