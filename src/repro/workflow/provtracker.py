"""Workflow-level provenance producer (yProv4WFs analogue).

Maps a :class:`~repro.workflow.dag.WorkflowResult` onto W3C PROV, keeping
the document "as generalized as possible, meaning avoiding domain-oriented
tags" (paper §2): tasks are plain activities, the WFMS is an agent, task
outputs become entities, and dataflow edges use ``wasInformedBy`` /
``used`` / ``wasGeneratedBy``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.core.experiment import utc
from repro.prov.document import ProvDocument
from repro.prov.identifiers import Namespace
from repro.workflow.dag import TaskState, Workflow, WorkflowResult

#: workflow vocabulary namespace (kept minimal & domain-agnostic)
YPROV4WFS = Namespace("yprov4wfs", "https://github.com/HPCI-Lab/yProv4WFs#")


def _output_value_repr(value: Any) -> str:
    """Compact, deterministic representation of a task output value."""
    try:
        return json.dumps(value, sort_keys=True, default=str)
    except TypeError:
        return repr(value)


def build_workflow_document(
    workflow: Workflow,
    result: WorkflowResult,
    user_namespace: str = "http://example.org/",
    username: str = "user",
) -> ProvDocument:
    """Build the workflow-level PROV document for one execution."""
    doc = ProvDocument()
    wf = doc.add_namespace("wf", user_namespace)
    doc.add_namespace(YPROV4WFS)

    user_agent = doc.agent(
        wf(f"agent/{username}"),
        {"prov:type": YPROV4WFS("User"), "prov:label": username},
    )
    wfms_agent = doc.agent(
        YPROV4WFS("wfms"),
        {"prov:type": YPROV4WFS("WorkflowManagementSystem"),
         "prov:label": "repro workflow engine"},
    )
    doc.acted_on_behalf_of(wfms_agent.identifier, user_agent.identifier)

    wf_id = wf(f"workflow/{result.workflow_name}")
    doc.activity(
        wf_id,
        start_time=utc(result.start_time),
        end_time=utc(result.end_time),
        attributes={
            "prov:type": YPROV4WFS("WorkflowRun"),
            "prov:label": result.workflow_name,
            "yprov4wfs:succeeded": result.succeeded,
            "yprov4wfs:n_tasks": len(result.tasks),
        },
    )
    doc.was_associated_with(wf_id, wfms_agent.identifier)
    doc.was_associated_with(wf_id, user_agent.identifier)

    task_ids: Dict[str, Any] = {}
    output_entity_ids: Dict[str, Dict[str, Any]] = {}

    for name, task_result in result.tasks.items():
        task = workflow.tasks.get(name)
        task_id = wf(f"task/{name}")
        task_ids[name] = task_id
        attrs: Dict[str, Any] = {
            "prov:type": YPROV4WFS("Task"),
            "prov:label": name,
            "yprov4wfs:state": task_result.state.value,
            "yprov4wfs:attempts": task_result.attempts,
        }
        if task is not None and task.description:
            attrs["yprov4wfs:description"] = task.description
        if task_result.error:
            attrs["yprov4wfs:error"] = task_result.error
        doc.activity(
            task_id,
            start_time=utc(task_result.start_time) if task_result.start_time else None,
            end_time=utc(task_result.end_time) if task_result.end_time else None,
            attributes=attrs,
        )
        doc.was_started_by(task_id, starter=wf_id)
        doc.was_informed_by(task_id, wf_id)

        # outputs as entities
        output_entity_ids[name] = {}
        for key, value in task_result.outputs.items():
            ent_id = wf(f"data/{name}/{key}")
            doc.entity(
                ent_id,
                {
                    "prov:type": YPROV4WFS("Data"),
                    "prov:label": key,
                    "yprov4wfs:value": _output_value_repr(value),
                },
            )
            when = utc(task_result.end_time) if task_result.end_time else None
            doc.was_generated_by(ent_id, task_id, time=when)
            output_entity_ids[name][key] = ent_id

    # dataflow: each task used its dependencies' outputs and wasInformedBy them
    for name, task in workflow.tasks.items():
        if name not in task_ids:
            continue
        for dep in task.deps:
            if dep in task_ids:
                doc.was_informed_by(task_ids[name], task_ids[dep])
            for ent_id in output_entity_ids.get(dep, {}).values():
                task_result = result.tasks[name]
                when = utc(task_result.start_time) if task_result.start_time else None
                doc.used(task_ids[name], ent_id, time=when)

    return doc
