"""Seeded chaos harness for the workflow runtime.

Deterministic fault injection at the exact boundaries that matter for
crash-safety proofs:

* :class:`CrashAfterRecords` — an in-process "kill": raises
  :class:`SimulatedCrash` from the journal's post-flush hook, leaving the
  on-disk journal byte-identical to a SIGKILL at that record boundary
  (the journal marks itself dead, so no further records leak out);
* :func:`sigkill_after_records` — the real thing, for subprocess tests
  and the CI smoke job: ``SIGKILL`` the current process at the boundary;
* :func:`truncate_journal_tail` / :func:`corrupt_journal_tail` — simulate
  torn and bit-rotted tail records, the residue of dying mid-write;
* :class:`ChaosPlan` — a seeded plan mapping one integer seed to a
  reproducible set of injection points, so a CI seed matrix covers the
  space without flaking.

``SimulatedCrash`` derives from :class:`BaseException` on purpose: task
functions (and the executor's own retry machinery) catch ``Exception``
broadly, and a simulated kill — like a real one — must not be catchable
by application code.
"""

from __future__ import annotations

import os
import random
import signal
from pathlib import Path
from typing import Callable, List, Optional, Union

PathLike = Union[str, Path]

#: Environment variable the CLI honors to install a SIGKILL chaos hook:
#: ``REPRO_WF_KILL_AFTER=<n>`` kills the process after the n-th journal
#: record is durably on disk.  Testing/CI hook — never set it in production.
KILL_AFTER_ENV = "REPRO_WF_KILL_AFTER"


class SimulatedCrash(BaseException):
    """An injected process death (uncatchable by task code, like SIGKILL)."""


class CrashAfterRecords:
    """Journal hook: simulate a kill once *n* records are durably on disk.

    ``n=0`` crashes on the very first record (the ``wf_start``);
    ``n=k`` lets k records land and dies flushing record k+1's boundary.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"crash point must be >= 0, got {n}")
        self.n = int(n)

    def __call__(self, kind: str, index: int) -> None:
        if index >= self.n:
            raise SimulatedCrash(
                f"simulated kill after journal record {index} ({kind})"
            )


def sigkill_after_records(n: int) -> Callable[[str, int], None]:
    """A journal hook that really SIGKILLs the process at the boundary."""

    def hook(kind: str, index: int) -> None:
        if index >= n:
            os.kill(os.getpid(), signal.SIGKILL)

    return hook


def hook_from_env() -> Optional[Callable[[str, int], None]]:
    """The SIGKILL hook requested via ``REPRO_WF_KILL_AFTER``, if any."""
    raw = os.environ.get(KILL_AFTER_ENV)
    if not raw:
        return None
    return sigkill_after_records(int(raw))


# ---------------------------------------------------------------------------
# journal tail damage
# ---------------------------------------------------------------------------

def truncate_journal_tail(path: PathLike, nbytes: int) -> int:
    """Cut *nbytes* off the end of a journal file (a torn final write).

    Returns the resulting file size.  Truncating more bytes than the file
    holds leaves an empty file, exactly like dying before the first flush.
    """
    path = Path(path)
    size = path.stat().st_size
    new_size = max(0, size - int(nbytes))
    with path.open("rb+") as fh:  # lint: disable=SL201 -- chaos harness deliberately tears the file in place
        fh.truncate(new_size)
    return new_size


def corrupt_journal_tail(path: PathLike, seed: int = 0) -> int:
    """Flip one seeded bit inside the last record of a journal.

    Returns the corrupted byte offset (-1 when the file is empty).  The
    crc catches the flip on the next read; every earlier record stays
    loadable.
    """
    path = Path(path)
    data = path.read_bytes()
    if not data:
        return -1
    # find the start of the last non-empty line
    body = data.rstrip(b"\n")
    last_nl = body.rfind(b"\n")
    lo = last_nl + 1
    rng = random.Random(seed)
    offset = rng.randrange(lo, len(body)) if len(body) > lo else lo
    with path.open("rb+") as fh:  # lint: disable=SL201 -- chaos harness deliberately flips bits in place
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0x40]))
    return offset


# ---------------------------------------------------------------------------
# seeded plans
# ---------------------------------------------------------------------------

class ChaosPlan:
    """Map one integer seed to a reproducible set of injection decisions."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def kill_point(self, total_records: int) -> int:
        """A record boundary to die at, in ``[1, total_records - 1]``.

        Never 0 (dying before ``wf_start`` leaves nothing to resume) and
        never past the last record (that run already completed).
        """
        if total_records < 2:
            return 1
        return self._rng.randrange(1, total_records)

    def kill_points(self, total_records: int, k: int) -> List[int]:
        """*k* distinct seeded kill points for a multi-crash scenario."""
        upper = max(total_records, 2)
        population = list(range(1, upper))
        self._rng.shuffle(population)
        return sorted(population[:k])

    def tail_damage(self, file_size: int) -> int:
        """A seeded number of bytes to tear off a journal tail."""
        if file_size <= 1:
            return 0
        return self._rng.randrange(1, file_size)
