"""Workflow management + workflow-level provenance (yProv4WFs analogue).

yProv4ML "is fully integrated with the yProv framework, allowing for higher
level pairing in tasks run also through workflow management systems."  This
package provides:

* :mod:`repro.workflow.dag` — a minimal workflow management system: a task
  DAG with dependency-ordered execution, retries and failure propagation;
* :mod:`repro.workflow.provtracker` — a provenance *producer* emitting a
  W3C PROV document for a workflow execution (tasks as activities, data as
  entities, the WFMS as an agent);
* :mod:`repro.workflow.pairing` — multi-level pairing: run-level yProv4ML
  documents produced inside tasks are embedded as bundles of the
  workflow-level document and linked to their task activity.
"""

from repro.workflow.dag import Task, TaskResult, TaskState, Workflow, WorkflowResult
from repro.workflow.provtracker import build_workflow_document
from repro.workflow.pairing import pair_run_documents
from repro.workflow.wfcrate import create_workflow_crate, read_workflow_crate

__all__ = [
    "Task",
    "TaskResult",
    "TaskState",
    "Workflow",
    "WorkflowResult",
    "build_workflow_document",
    "pair_run_documents",
    "create_workflow_crate",
    "read_workflow_crate",
]
