"""Workflow management + workflow-level provenance (yProv4WFs analogue).

yProv4ML "is fully integrated with the yProv framework, allowing for higher
level pairing in tasks run also through workflow management systems."  This
package provides:

* :mod:`repro.workflow.dag` — the workflow management system: a task DAG
  with dependency-ordered execution, retries, deadlines and failure
  propagation, plus durable journaled runs and crash resume;
* :mod:`repro.workflow.journal` — the crc-checked write-ahead journal a
  journaled run appends to (and resume/status read back);
* :mod:`repro.workflow.supervisor` — per-attempt deadline enforcement,
  heartbeats and cooperative cancellation;
* :mod:`repro.workflow.chaos` — seeded fault injection (simulated kills,
  torn journal tails) driving the crash-safety test suites;
* :mod:`repro.workflow.provtracker` — a provenance *producer* emitting a
  W3C PROV document for a workflow execution (tasks as activities, data as
  entities, the WFMS as an agent);
* :mod:`repro.workflow.pairing` — multi-level pairing: run-level yProv4ML
  documents produced inside tasks are embedded as bundles of the
  workflow-level document and linked to their task activity.
"""

from repro.workflow.dag import Task, TaskResult, TaskState, Workflow, WorkflowResult
from repro.workflow.journal import (
    WorkflowHistory,
    WorkflowJournal,
    load_history,
    workflow_journal_path,
)
from repro.workflow.provtracker import build_workflow_document
from repro.workflow.pairing import pair_run_documents
from repro.workflow.supervisor import TaskContext
from repro.workflow.wfcrate import create_workflow_crate, read_workflow_crate

__all__ = [
    "Task",
    "TaskContext",
    "TaskResult",
    "TaskState",
    "Workflow",
    "WorkflowHistory",
    "WorkflowJournal",
    "WorkflowResult",
    "build_workflow_document",
    "load_history",
    "pair_run_documents",
    "create_workflow_crate",
    "read_workflow_crate",
    "workflow_journal_path",
]
