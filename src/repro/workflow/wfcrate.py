"""Workflow Run RO-Crate (the §2 interoperability target).

Related Work cites Workflow Run RO-Crate — "an extension of the RO-Crate
model to record the provenance of workflow executions ... based on W3C
PROV, [aiming] to improve interoperability between different workflow
management systems."  This module packages a workflow execution the same
way: a crate whose root describes the workflow run (``CreateAction``-style
metadata: name, start/end, outcome), containing the workflow-level
PROV-JSON document and any task output files, with each task execution
summarized in the crate metadata.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.atomicio import atomic_write_text
from repro.crate.rocrate import METADATA_FILENAME, PROV_CONFORMS_TO, ROCrate
from repro.errors import CrateError
from repro.prov.document import ProvDocument
from repro.workflow.dag import TaskState, Workflow, WorkflowResult

WORKFLOW_RUN_PROFILE = "https://w3id.org/ro/wfrun/process/0.1"


def create_workflow_crate(
    workflow: Workflow,
    result: WorkflowResult,
    document: ProvDocument,
    crate_dir: Union[str, Path],
) -> Path:
    """Package a workflow execution as a Workflow-Run-style RO-Crate.

    Writes the workflow PROV-JSON into *crate_dir*, then builds the crate:
    the root dataset conforms to the workflow-run profile, the provenance
    file conforms to W3C PROV, and each task appears as a ``CreateAction``
    contextual entity with its state, attempts and timing.
    """
    crate_dir = Path(crate_dir)
    crate_dir.mkdir(parents=True, exist_ok=True)

    prov_path = crate_dir / "workflow_prov.json"
    document.save(prov_path)

    crate = ROCrate(
        crate_dir,
        name=f"workflow run {result.workflow_name}",
        description=(
            f"execution of workflow {result.workflow_name!r}: "
            f"{'succeeded' if result.succeeded else 'failed'}, "
            f"{len(result.tasks)} tasks"
        ),
    )
    crate.add_file(
        prov_path,
        description="workflow-level W3C PROV-JSON provenance",
        conforms_to=PROV_CONFORMS_TO,
    )
    # any other files already present (task outputs copied in by the caller)
    for path in sorted(crate_dir.rglob("*")):
        if path.is_file() and path.name not in (METADATA_FILENAME, prov_path.name):
            crate.add_file(path)

    # task executions as CreateAction contextual entities
    for name, task_result in sorted(result.tasks.items()):
        action: Dict[str, Any] = {
            "@id": f"#action-{name}",
            "@type": "CreateAction",
            "name": name,
            "actionStatus": {
                TaskState.SUCCEEDED: "CompletedActionStatus",
                TaskState.FAILED: "FailedActionStatus",
                TaskState.SKIPPED: "PotentialActionStatus",
                TaskState.PENDING: "PotentialActionStatus",
            }[task_result.state],
            "attempts": task_result.attempts,
        }
        if task_result.duration is not None:
            action["duration"] = task_result.duration
        if task_result.error:
            action["error"] = task_result.error
        task = workflow.tasks.get(name)
        if task is not None and task.description:
            action["description"] = task.description
        crate.entities.append(action)

    # declare profile conformance on the root by rewriting metadata
    metadata = crate.metadata()
    for entity in metadata["@graph"]:
        if entity["@id"] == "./":
            entity["conformsTo"] = {"@id": WORKFLOW_RUN_PROFILE}
    out = crate_dir / METADATA_FILENAME
    atomic_write_text(out, json.dumps(metadata, indent=2))
    return out


def read_workflow_crate(crate_dir: Union[str, Path]) -> Dict[str, Any]:
    """Load a workflow crate: the provenance document + task actions."""
    crate_dir = Path(crate_dir)
    meta_path = crate_dir / METADATA_FILENAME
    if not meta_path.is_file():
        raise CrateError(f"not a crate: {crate_dir}")
    metadata = json.loads(meta_path.read_text(encoding="utf-8"))
    actions = [
        e for e in metadata.get("@graph", [])
        if e.get("@type") == "CreateAction"
    ]
    root = next(
        (e for e in metadata["@graph"] if e.get("@id") == "./"), {}
    )
    prov_path = crate_dir / "workflow_prov.json"
    document = ProvDocument.load(prov_path) if prov_path.is_file() else None
    return {
        "name": root.get("name"),
        "conformsTo": (root.get("conformsTo") or {}).get("@id"),
        "actions": {a["name"]: a for a in actions},
        "document": document,
    }
