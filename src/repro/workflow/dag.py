"""Minimal workflow management system: task DAGs with ordered execution.

A :class:`Workflow` is a named DAG of :class:`Task` objects.  Each task's
callable receives a dict of the outputs of its dependencies (keyed by task
name) and returns a dict of named outputs.  Execution is deterministic:
tasks run in topological order (ties broken by name), failures mark all
transitive dependents as skipped, and per-task retries are supported.

Time is injectable (``clock``) so the simulator and tests can run workflows
on simulated time.
"""

from __future__ import annotations

import enum
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set

from repro.errors import CycleError, WorkflowError
from repro.retry import ExponentialBackoff, seed_from_name

TaskFn = Callable[[Dict[str, Dict[str, Any]]], Optional[Dict[str, Any]]]
SleepFn = Callable[[float], None]


class TaskState(enum.Enum):
    PENDING = "pending"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    SKIPPED = "skipped"  # a dependency failed


@dataclass
class Task:
    """One node of the workflow DAG."""

    name: str
    fn: TaskFn
    deps: Sequence[str] = ()
    retries: int = 0
    description: str = ""
    #: base delay before the first retry; 0 (default) retries immediately,
    #: preserving the pre-backoff behaviour
    retry_backoff_s: float = 0.0
    backoff_factor: float = 2.0
    #: fractional jitter spread; the draw is seeded from the task name so
    #: the schedule is deterministic and assertable in tests
    backoff_jitter: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkflowError("task name must be non-empty")
        if self.retries < 0:
            raise WorkflowError(f"retries must be >= 0, got {self.retries}")
        if self.retry_backoff_s < 0:
            raise WorkflowError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )

    def backoff_schedule(self) -> List[float]:
        """The deterministic delay (seconds) before each retry."""
        if self.retries == 0 or self.retry_backoff_s == 0:
            return [0.0] * self.retries
        backoff = ExponentialBackoff(
            base_s=self.retry_backoff_s,
            factor=self.backoff_factor,
            jitter=self.backoff_jitter,
            seed=seed_from_name(self.name),
        )
        return backoff.delays(self.retries)


@dataclass
class TaskResult:
    """Execution record of one task."""

    name: str
    state: TaskState
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    attempts: int = 0
    outputs: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    #: delays actually slept between failed attempts (empty without retries)
    backoff_delays: List[float] = field(default_factory=list)

    @property
    def duration(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time


@dataclass
class WorkflowResult:
    """Execution record of a whole workflow."""

    workflow_name: str
    start_time: float
    end_time: float
    tasks: Dict[str, TaskResult]

    @property
    def succeeded(self) -> bool:
        return all(t.state is TaskState.SUCCEEDED for t in self.tasks.values())

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def outputs_of(self, task: str) -> Dict[str, Any]:
        result = self.tasks.get(task)
        if result is None:
            raise WorkflowError(f"unknown task: {task!r}")
        return result.outputs


class Workflow:
    """A named DAG of tasks."""

    def __init__(self, name: str) -> None:
        if not name:
            raise WorkflowError("workflow name must be non-empty")
        self.name = name
        self._tasks: Dict[str, Task] = {}

    def add_task(
        self,
        name: str,
        fn: TaskFn,
        deps: Sequence[str] = (),
        retries: int = 0,
        description: str = "",
        retry_backoff_s: float = 0.0,
        backoff_factor: float = 2.0,
        backoff_jitter: float = 0.0,
    ) -> Task:
        """Register a task; dependencies must already exist (keeps it acyclic
        by construction, and catches typos early)."""
        if name in self._tasks:
            raise WorkflowError(f"duplicate task: {name!r}")
        for dep in deps:
            if dep not in self._tasks:
                raise WorkflowError(f"task {name!r} depends on unknown task {dep!r}")
        task = Task(name, fn, tuple(deps), retries, description,
                    retry_backoff_s, backoff_factor, backoff_jitter)
        self._tasks[name] = task
        return task

    def task(self, name: str, deps: Sequence[str] = (), retries: int = 0,
             description: str = "", retry_backoff_s: float = 0.0,
             backoff_factor: float = 2.0,
             backoff_jitter: float = 0.0) -> Callable[[TaskFn], TaskFn]:
        """Decorator form of :meth:`add_task`."""

        def decorator(fn: TaskFn) -> TaskFn:
            self.add_task(name, fn, deps=deps, retries=retries,
                          description=description,
                          retry_backoff_s=retry_backoff_s,
                          backoff_factor=backoff_factor,
                          backoff_jitter=backoff_jitter)
            return fn

        return decorator

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    @property
    def tasks(self) -> Dict[str, Task]:
        return dict(self._tasks)

    def topological_order(self) -> List[str]:
        """Kahn's algorithm with deterministic (sorted) tie-breaking."""
        indegree: Dict[str, int] = {name: len(t.deps) for name, t in self._tasks.items()}
        dependents: Dict[str, List[str]] = {name: [] for name in self._tasks}
        for name, task in self._tasks.items():
            for dep in task.deps:
                dependents[dep].append(name)
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            inserted = False
            for child in dependents[current]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
                    inserted = True
            if inserted:
                ready.sort()
        if len(order) != len(self._tasks):
            raise CycleError(f"workflow {self.name!r} contains a cycle")
        return order

    # ------------------------------------------------------------------
    def run(
        self,
        clock: Optional[Callable[[], float]] = None,
        inputs: Optional[Mapping[str, Dict[str, Any]]] = None,
        max_workers: int = 1,
        sleep: Optional[SleepFn] = None,
    ) -> WorkflowResult:
        """Execute the DAG.

        ``inputs`` optionally provides pre-seeded "outputs" for task names
        not present in the DAG (external data sources).  With
        ``max_workers > 1`` independent ready tasks run concurrently in a
        thread pool (the results — states, outputs, skip propagation — are
        identical to sequential execution; only wall-clock differs).
        ``sleep`` is the function used for retry backoff waits
        (``time.sleep`` by default; injectable for tests/simulated time).
        """
        if max_workers < 1:
            raise WorkflowError(f"max_workers must be >= 1, got {max_workers}")
        sleep = sleep if sleep is not None else _time.sleep
        if max_workers > 1:
            return self._run_parallel(clock or _time.time, inputs, max_workers,
                                      sleep)
        clock = clock or _time.time
        order = self.topological_order()
        results: Dict[str, TaskResult] = {}
        available: Dict[str, Dict[str, Any]] = {
            name: dict(outs) for name, outs in (inputs or {}).items()
        }
        start = clock()

        for name in order:
            task = self._tasks[name]
            failed_dep = next(
                (
                    dep
                    for dep in task.deps
                    if results.get(dep) is not None
                    and results[dep].state is not TaskState.SUCCEEDED
                ),
                None,
            )
            if failed_dep is not None:
                results[name] = TaskResult(
                    name=name,
                    state=TaskState.SKIPPED,
                    error=f"dependency {failed_dep!r} did not succeed",
                )
                continue

            dep_outputs = {dep: available[dep] for dep in task.deps}
            result = self._run_task(task, dep_outputs, clock, sleep)
            results[name] = result
            if result.state is TaskState.SUCCEEDED:
                available[name] = result.outputs

        return WorkflowResult(
            workflow_name=self.name,
            start_time=start,
            end_time=clock(),
            tasks=results,
        )

    def _run_task(
        self,
        task: Task,
        dep_outputs: Dict[str, Dict[str, Any]],
        clock: Callable[[], float],
        sleep: SleepFn,
    ) -> TaskResult:
        """Execute one task with its retry policy (shared by both modes).

        Between failed attempts the task's seeded exponential-backoff
        schedule is slept (no-op when ``retry_backoff_s`` is 0); the delays
        actually waited are recorded on the result for observability.
        """
        result = TaskResult(name=task.name, state=TaskState.PENDING,
                            start_time=clock())
        schedule = task.backoff_schedule()
        for attempt in range(task.retries + 1):
            result.attempts = attempt + 1
            try:
                outputs = task.fn(dep_outputs) or {}
                if not isinstance(outputs, dict):
                    raise WorkflowError(
                        f"task {task.name!r} must return a dict of outputs, "
                        f"got {type(outputs).__name__}"
                    )
                result.outputs = outputs
                result.state = TaskState.SUCCEEDED
                result.error = None
                break
            except Exception as exc:  # noqa: BLE001 — task errors are data
                result.state = TaskState.FAILED
                result.error = f"{type(exc).__name__}: {exc}"
                if attempt < task.retries:
                    delay = schedule[attempt]
                    result.backoff_delays.append(delay)
                    if delay > 0:
                        sleep(delay)
        result.end_time = clock()
        return result

    def _run_parallel(
        self,
        clock: Callable[[], float],
        inputs: Optional[Mapping[str, Dict[str, Any]]],
        max_workers: int,
        sleep: SleepFn,
    ) -> WorkflowResult:
        """Dependency-ordered execution with a thread pool.

        A task is submitted as soon as all of its dependencies succeeded;
        tasks whose dependencies failed/skipped are marked skipped without
        running.  ``clock`` is called from worker threads, so injected
        clocks must be thread-safe (the monotonic counters used in tests
        and the SimClock's float add both are, under CPython).
        """
        import concurrent.futures as _futures

        self.topological_order()  # validates acyclicity up front
        results: Dict[str, TaskResult] = {}
        available: Dict[str, Dict[str, Any]] = {
            name: dict(outs) for name, outs in (inputs or {}).items()
        }
        start = clock()
        remaining = dict(self._tasks)
        futures: Dict[_futures.Future, str] = {}

        def ready(task: Task) -> bool:
            return all(
                dep in results and results[dep].state is TaskState.SUCCEEDED
                for dep in task.deps
            )

        def doomed(task: Task) -> Optional[str]:
            for dep in task.deps:
                dep_result = results.get(dep)
                if dep_result is not None and dep_result.state is not TaskState.SUCCEEDED:
                    return dep
            return None

        with _futures.ThreadPoolExecutor(max_workers=max_workers) as pool:
            while remaining or futures:
                # mark skips and submit everything currently runnable
                progressed = True
                while progressed:
                    progressed = False
                    for name in sorted(remaining):
                        task = remaining[name]
                        failed_dep = doomed(task)
                        if failed_dep is not None:
                            results[name] = TaskResult(
                                name=name,
                                state=TaskState.SKIPPED,
                                error=f"dependency {failed_dep!r} did not succeed",
                            )
                            del remaining[name]
                            progressed = True
                            break
                        if ready(task):
                            dep_outputs = {d: available[d] for d in task.deps}
                            futures[pool.submit(
                                self._run_task, task, dep_outputs, clock, sleep
                            )] = name
                            del remaining[name]
                            progressed = True
                            break
                if not futures:
                    if remaining:  # nothing runnable and nothing in flight
                        raise WorkflowError(
                            f"workflow {self.name!r} stalled with tasks "
                            f"{sorted(remaining)}"
                        )
                    break
                done, _ = _futures.wait(
                    futures, return_when=_futures.FIRST_COMPLETED
                )
                for future in done:
                    name = futures.pop(future)
                    result = future.result()
                    results[name] = result
                    if result.state is TaskState.SUCCEEDED:
                        available[name] = result.outputs

        return WorkflowResult(
            workflow_name=self.name,
            start_time=start,
            end_time=clock(),
            tasks=results,
        )
