"""Workflow management system: task DAGs with durable, resumable execution.

A :class:`Workflow` is a named DAG of :class:`Task` objects.  Each task's
callable receives a dict of the outputs of its dependencies (keyed by task
name) — and, if it accepts a second positional argument, a
:class:`~repro.workflow.supervisor.TaskContext` for heartbeats and
cooperative cancellation — and returns a dict of named outputs.  Execution
is deterministic: tasks run in topological order (ties broken by name),
failures mark all transitive dependents as skipped, and per-task retries
and deadlines are supported.

Fault tolerance (see :mod:`repro.workflow.journal`): pass ``state_dir`` to
:meth:`Workflow.run` and every task start/attempt/success/failure/skip is
journaled durably before execution proceeds.  After a crash,
:meth:`Workflow.resume` replays completed tasks bit-identically from the
journal — no SUCCEEDED task re-executes — and runs only what is left, so
the resumed run's final :class:`WorkflowResult` (states, outputs, attempt
counts) equals the uninterrupted run's.  A task that crashed the process
``quarantine_after`` times resumes as QUARANTINED instead of wedging the
run forever.

Time is injectable (``clock``) so the simulator and tests can run workflows
on simulated time; deadline enforcement honors the injected clock too.
"""

from __future__ import annotations

import copy
import enum
import os
import time as _time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Union

from repro.errors import CycleError, WorkflowError
from repro.retry import ExponentialBackoff, seed_from_name
from repro.workflow.journal import (
    WorkflowHistory,
    WorkflowJournal,
    canonical_outputs,
    load_history,
    workflow_journal_path,
)
from repro.workflow.supervisor import supervise_attempt

TaskFn = Callable[..., Optional[Dict[str, Any]]]
SleepFn = Callable[[float], None]
PathLike = Union[str, "os.PathLike[str]"]


class TaskState(enum.Enum):
    PENDING = "pending"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    SKIPPED = "skipped"  # a dependency failed
    TIMED_OUT = "timed_out"  # exceeded its timeout_s deadline
    QUARANTINED = "quarantined"  # crashed the process too many times


#: Terminal states a dependency must reach for its dependents to run.
_TERMINAL_STATES = frozenset(
    (TaskState.SUCCEEDED, TaskState.FAILED, TaskState.SKIPPED,
     TaskState.TIMED_OUT, TaskState.QUARANTINED)
)


@dataclass
class Task:
    """One node of the workflow DAG."""

    name: str
    fn: TaskFn
    deps: Sequence[str] = ()
    retries: int = 0
    description: str = ""
    #: base delay before the first retry; 0 (default) retries immediately,
    #: preserving the pre-backoff behaviour
    retry_backoff_s: float = 0.0
    backoff_factor: float = 2.0
    #: fractional jitter spread; the draw is seeded from the task name so
    #: the schedule is deterministic and assertable in tests
    backoff_jitter: float = 0.0
    #: deadline per attempt, measured on the run's (injectable) clock; a
    #: task past its deadline is cancelled and reported TIMED_OUT
    #: (terminal — timeouts are not retried)
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkflowError("task name must be non-empty")
        if self.retries < 0:
            raise WorkflowError(f"retries must be >= 0, got {self.retries}")
        if self.retry_backoff_s < 0:
            raise WorkflowError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise WorkflowError(
                f"timeout_s must be > 0, got {self.timeout_s}"
            )

    def backoff_schedule(self) -> List[float]:
        """The deterministic delay (seconds) before each retry."""
        if self.retries == 0 or self.retry_backoff_s == 0:
            return [0.0] * self.retries
        backoff = ExponentialBackoff(
            base_s=self.retry_backoff_s,
            factor=self.backoff_factor,
            jitter=self.backoff_jitter,
            seed=seed_from_name(self.name),
        )
        return backoff.delays(self.retries)

    def spec(self) -> Dict[str, Any]:
        """The journalable description of this task (for ``wf_start``)."""
        return {
            "deps": list(self.deps),
            "retries": self.retries,
            "timeout_s": self.timeout_s,
        }


@dataclass
class TaskResult:
    """Execution record of one task."""

    name: str
    state: TaskState
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    attempts: int = 0
    outputs: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    #: delays actually slept between failed attempts (empty without retries)
    backoff_delays: List[float] = field(default_factory=list)
    #: True when this result was replayed from the journal on resume
    #: rather than produced by executing the task
    replayed: bool = False

    @property
    def duration(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def journal_payload(self) -> Dict[str, Any]:
        """The replayable ``task_result`` record for this result."""
        return {
            "task": self.name,
            "state": self.state.value,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "attempts": self.attempts,
            "outputs": self.outputs,
            "error": self.error,
            "backoff_delays": list(self.backoff_delays),
        }

    @classmethod
    def from_journal_payload(cls, payload: Mapping[str, Any]) -> "TaskResult":
        """Rebuild a terminal result bit-identically from its record."""
        return cls(
            name=str(payload["task"]),
            state=TaskState(payload["state"]),
            start_time=payload.get("start_time"),
            end_time=payload.get("end_time"),
            attempts=int(payload.get("attempts", 0)),
            outputs=dict(payload.get("outputs") or {}),
            error=payload.get("error"),
            backoff_delays=list(payload.get("backoff_delays") or []),
            replayed=True,
        )


@dataclass
class WorkflowResult:
    """Execution record of a whole workflow."""

    workflow_name: str
    start_time: float
    end_time: float
    tasks: Dict[str, TaskResult]
    #: how many journal segments (1 + number of resumes) produced this
    segments: int = 1

    @property
    def succeeded(self) -> bool:
        return all(t.state is TaskState.SUCCEEDED for t in self.tasks.values())

    @property
    def resumed(self) -> bool:
        return self.segments > 1

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def outputs_of(self, task: str) -> Dict[str, Any]:
        result = self.tasks.get(task)
        if result is None:
            raise WorkflowError(f"unknown task: {task!r}")
        return result.outputs

    def to_comparable(self) -> Dict[str, Dict[str, Any]]:
        """The resume-invariant view: states, outputs, attempt counts.

        A resumed run must produce exactly this dict for the uninterrupted
        run's (wall-clock timings legitimately differ).
        """
        return {
            name: {
                "state": r.state.value,
                "outputs": r.outputs,
                "attempts": r.attempts,
            }
            for name, r in sorted(self.tasks.items())
        }


@dataclass
class _Runtime:
    """Per-execution plumbing shared by the sequential and parallel paths."""

    clock: Callable[[], float]
    sleep: SleepFn
    journal: Optional[WorkflowJournal] = None
    heartbeat_interval_s: Optional[float] = None
    #: tasks whose terminal results replay from the journal (resume)
    preloaded: Dict[str, TaskResult] = field(default_factory=dict)
    #: next global attempt number per task (continues across resumes)
    next_attempt: Dict[str, int] = field(default_factory=dict)

    def attempt_number(self, task: str) -> int:
        number = self.next_attempt.get(task, 1)
        self.next_attempt[task] = number + 1
        return number

    def record(self, kind: str, payload: Dict[str, Any]) -> None:
        if self.journal is not None:
            self.journal.append(kind, payload)

    def finish_task(self, result: TaskResult) -> TaskResult:
        """Canonicalize outputs (journaled runs) and journal the terminal."""
        if self.journal is not None:
            if result.state is TaskState.SUCCEEDED:
                result.outputs = canonical_outputs(result.outputs)
            self.record("task_result", result.journal_payload())
        return result


class Workflow:
    """A named DAG of tasks."""

    def __init__(self, name: str) -> None:
        if not name:
            raise WorkflowError("workflow name must be non-empty")
        self.name = name
        self._tasks: Dict[str, Task] = {}

    def add_task(
        self,
        name: str,
        fn: TaskFn,
        deps: Sequence[str] = (),
        retries: int = 0,
        description: str = "",
        retry_backoff_s: float = 0.0,
        backoff_factor: float = 2.0,
        backoff_jitter: float = 0.0,
        timeout_s: Optional[float] = None,
    ) -> Task:
        """Register a task; dependencies must already exist (keeps it acyclic
        by construction, and catches typos early)."""
        if name in self._tasks:
            raise WorkflowError(f"duplicate task: {name!r}")
        for dep in deps:
            if dep not in self._tasks:
                raise WorkflowError(f"task {name!r} depends on unknown task {dep!r}")
        task = Task(name, fn, tuple(deps), retries, description,
                    retry_backoff_s, backoff_factor, backoff_jitter,
                    timeout_s)
        self._tasks[name] = task
        return task

    def task(self, name: str, deps: Sequence[str] = (), retries: int = 0,
             description: str = "", retry_backoff_s: float = 0.0,
             backoff_factor: float = 2.0,
             backoff_jitter: float = 0.0,
             timeout_s: Optional[float] = None) -> Callable[[TaskFn], TaskFn]:
        """Decorator form of :meth:`add_task`."""

        def decorator(fn: TaskFn) -> TaskFn:
            self.add_task(name, fn, deps=deps, retries=retries,
                          description=description,
                          retry_backoff_s=retry_backoff_s,
                          backoff_factor=backoff_factor,
                          backoff_jitter=backoff_jitter,
                          timeout_s=timeout_s)
            return fn

        return decorator

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    @property
    def tasks(self) -> Dict[str, Task]:
        return dict(self._tasks)

    def topological_order(self) -> List[str]:
        """Kahn's algorithm with deterministic (sorted) tie-breaking."""
        indegree: Dict[str, int] = {name: len(t.deps) for name, t in self._tasks.items()}
        dependents: Dict[str, List[str]] = {name: [] for name in self._tasks}
        for name, task in self._tasks.items():
            for dep in task.deps:
                dependents[dep].append(name)
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            inserted = False
            for child in dependents[current]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
                    inserted = True
            if inserted:
                ready.sort()
        if len(order) != len(self._tasks):
            raise CycleError(f"workflow {self.name!r} contains a cycle")
        return order

    # ------------------------------------------------------------------
    def run(
        self,
        clock: Optional[Callable[[], float]] = None,
        inputs: Optional[Mapping[str, Dict[str, Any]]] = None,
        max_workers: int = 1,
        sleep: Optional[SleepFn] = None,
        state_dir: Optional[PathLike] = None,
        quarantine_after: int = 3,
        heartbeat_interval_s: Optional[float] = None,
        fsync: bool = True,
        on_record: Optional[Callable[[str, int], None]] = None,
    ) -> WorkflowResult:
        """Execute the DAG.

        ``inputs`` optionally provides pre-seeded "outputs" for task names
        not present in the DAG (external data sources).  With
        ``max_workers > 1`` independent ready tasks run concurrently in a
        thread pool (the results — states, outputs, skip propagation — are
        identical to sequential execution; only wall-clock differs).
        ``sleep`` is the function used for retry backoff waits
        (``time.sleep`` by default; injectable for tests/simulated time).

        With ``state_dir`` the run is journaled durably (see
        :mod:`repro.workflow.journal`): task outputs must then be
        JSON-representable (they are canonicalized through JSON so a
        resumed run replays them bit-identically).  ``on_record`` is the
        chaos harness's record-boundary hook; ``heartbeat_interval_s``
        makes the supervisor journal liveness proof for long tasks.
        A state directory holding a previous run is refused — resume it
        (or point at a fresh directory) instead of silently overwriting
        its journal.
        """
        if max_workers < 1:
            raise WorkflowError(f"max_workers must be >= 1, got {max_workers}")
        clock = clock or _time.time
        journal: Optional[WorkflowJournal] = None
        if state_dir is not None:
            journal_path = workflow_journal_path(state_dir)
            if journal_path.exists() and journal_path.stat().st_size > 0:
                history = load_history(state_dir)
                if history.started:
                    verb = "interrupted" if history.interrupted else "completed"
                    raise WorkflowError(
                        f"state dir {os.fspath(state_dir)!r} already holds "
                        f"an {verb} run of {history.workflow_name!r}; "
                        "resume it or use a fresh directory"
                    )
            journal = WorkflowJournal(journal_path, fsync=fsync,
                                      on_record=on_record)
            journal.append("wf_start", {
                "workflow": self.name,
                "run_id": uuid.uuid4().hex,
                "pid": os.getpid(),
                "t": clock(),
                "tasks": {name: t.spec() for name, t in self._tasks.items()},
            })
        try:
            return self._execute(
                clock=clock, inputs=inputs, max_workers=max_workers,
                sleep=sleep, journal=journal,
                quarantine_after=quarantine_after,
                heartbeat_interval_s=heartbeat_interval_s,
                history=None,
            )
        finally:
            if journal is not None:
                journal.close()

    def resume(
        self,
        state_dir: PathLike,
        clock: Optional[Callable[[], float]] = None,
        inputs: Optional[Mapping[str, Dict[str, Any]]] = None,
        max_workers: int = 1,
        sleep: Optional[SleepFn] = None,
        quarantine_after: int = 3,
        heartbeat_interval_s: Optional[float] = None,
        fsync: bool = True,
        on_record: Optional[Callable[[str, int], None]] = None,
    ) -> WorkflowResult:
        """Resume an interrupted journaled run from its state directory.

        Tasks whose terminal results reached the journal are **not
        re-executed** — their cached outputs replay bit-identically.  A
        task whose attempts crashed the process ``quarantine_after`` or
        more times is quarantined instead of re-run.  Resuming a run that
        already completed is a no-op that returns the recorded result
        (idempotent: resuming twice yields identical results).
        """
        clock = clock or _time.time
        journal_path = workflow_journal_path(state_dir)
        history: Optional[WorkflowHistory] = None
        if journal_path.exists():
            history = load_history(state_dir)
        if history is not None and history.started:
            if history.workflow_name != self.name:
                raise WorkflowError(
                    f"state dir {os.fspath(state_dir)!r} belongs to workflow "
                    f"{history.workflow_name!r}, not {self.name!r}"
                )
            if history.ended:
                return self._replay_completed(history)
        else:
            history = None  # journal missing/empty: nothing usable, run fresh

        journal = WorkflowJournal(journal_path, fsync=fsync,
                                  on_record=on_record)
        if history is None:
            journal.append("wf_start", {
                "workflow": self.name,
                "run_id": uuid.uuid4().hex,
                "pid": os.getpid(),
                "t": clock(),
                "tasks": {name: t.spec() for name, t in self._tasks.items()},
            })
        else:
            journal.append("wf_resume", {"pid": os.getpid(), "t": clock()})
        try:
            return self._execute(
                clock=clock, inputs=inputs, max_workers=max_workers,
                sleep=sleep, journal=journal,
                quarantine_after=quarantine_after,
                heartbeat_interval_s=heartbeat_interval_s,
                history=history,
            )
        finally:
            journal.close()

    def _replay_completed(self, history: WorkflowHistory) -> WorkflowResult:
        """Rebuild the result of an already-completed run (resume no-op)."""
        tasks = {
            name: TaskResult.from_journal_payload(payload)
            for name, payload in history.terminal.items()
        }
        end = history.end_payload or {}
        return WorkflowResult(
            workflow_name=self.name,
            start_time=float(end.get("start_time",
                                     history.started_at or 0.0)),
            end_time=float(end.get("t", 0.0)),
            tasks=tasks,
            segments=history.segments,
        )

    # ------------------------------------------------------------------
    def _execute(
        self,
        clock: Callable[[], float],
        inputs: Optional[Mapping[str, Dict[str, Any]]],
        max_workers: int,
        sleep: Optional[SleepFn],
        journal: Optional[WorkflowJournal],
        quarantine_after: int,
        heartbeat_interval_s: Optional[float],
        history: Optional[WorkflowHistory],
    ) -> WorkflowResult:
        if max_workers < 1:
            raise WorkflowError(f"max_workers must be >= 1, got {max_workers}")
        if quarantine_after < 1:
            raise WorkflowError(
                f"quarantine_after must be >= 1, got {quarantine_after}"
            )
        runtime = _Runtime(
            clock=clock,
            sleep=sleep if sleep is not None else _time.sleep,
            journal=journal,
            heartbeat_interval_s=heartbeat_interval_s,
        )
        segments = 1
        run_start = clock()
        if history is not None:
            segments = history.segments + 1
            run_start = history.started_at if history.started_at is not None \
                else run_start
            for name, payload in history.terminal.items():
                if name in self._tasks:
                    runtime.preloaded[name] = \
                        TaskResult.from_journal_payload(payload)
            for name in self._tasks:
                runtime.next_attempt[name] = history.next_attempt_number(name)
            # poison-task quarantine: a task that crashed the process too
            # many times must not wedge the run forever
            for name, crashes in sorted(history.crash_counts().items()):
                if name in runtime.preloaded or name not in self._tasks:
                    continue
                if crashes >= quarantine_after:
                    now = clock()
                    result = TaskResult(
                        name=name,
                        state=TaskState.QUARANTINED,
                        start_time=now,
                        end_time=now,
                        attempts=0,
                        error=(
                            f"task crashed the process {crashes} time(s) "
                            f"(quarantine_after={quarantine_after}); "
                            "quarantined instead of re-running"
                        ),
                    )
                    runtime.preloaded[name] = runtime.finish_task(result)

        if max_workers > 1:
            result = self._run_parallel(runtime, inputs, max_workers,
                                        run_start, segments)
        else:
            result = self._run_sequential(runtime, inputs, run_start, segments)
        runtime.record("wf_end", {
            "t": result.end_time,
            "start_time": result.start_time,
            "succeeded": result.succeeded,
        })
        return result

    def _run_sequential(
        self,
        runtime: _Runtime,
        inputs: Optional[Mapping[str, Dict[str, Any]]],
        run_start: float,
        segments: int,
    ) -> WorkflowResult:
        order = self.topological_order()
        results: Dict[str, TaskResult] = {}
        available: Dict[str, Dict[str, Any]] = {
            name: dict(outs) for name, outs in (inputs or {}).items()
        }

        for name in order:
            task = self._tasks[name]
            preloaded = runtime.preloaded.get(name)
            if preloaded is not None:
                results[name] = preloaded
                if preloaded.state is TaskState.SUCCEEDED:
                    available[name] = preloaded.outputs
                continue
            failed_dep = next(
                (
                    dep
                    for dep in task.deps
                    if results.get(dep) is not None
                    and results[dep].state is not TaskState.SUCCEEDED
                ),
                None,
            )
            if failed_dep is not None:
                results[name] = self._skip_task(runtime, name, failed_dep)
                continue

            dep_outputs = self._dep_outputs(task, available)
            result = self._run_task(task, dep_outputs, runtime)
            results[name] = result
            if result.state is TaskState.SUCCEEDED:
                available[name] = result.outputs

        return WorkflowResult(
            workflow_name=self.name,
            start_time=run_start,
            end_time=runtime.clock(),
            tasks=results,
            segments=segments,
        )

    @staticmethod
    def _dep_outputs(
        task: Task, available: Dict[str, Dict[str, Any]]
    ) -> Dict[str, Dict[str, Any]]:
        """Deep-copied dependency outputs for one consumer.

        Every consumer gets its own copy: a task mutating its view of a
        dependency's outputs must not corrupt what sibling tasks see
        (which was nondeterministic in parallel mode).
        """
        return {dep: copy.deepcopy(available[dep]) for dep in task.deps}

    def _skip_task(
        self, runtime: _Runtime, name: str, failed_dep: str
    ) -> TaskResult:
        """A SKIPPED terminal result, stamped and journaled."""
        now = runtime.clock()
        return runtime.finish_task(TaskResult(
            name=name,
            state=TaskState.SKIPPED,
            start_time=now,
            end_time=now,
            error=f"dependency {failed_dep!r} did not succeed",
        ))

    def _run_task(
        self,
        task: Task,
        dep_outputs: Dict[str, Dict[str, Any]],
        runtime: _Runtime,
    ) -> TaskResult:
        """Execute one task with its retry policy (shared by both modes).

        Each attempt is journaled (``attempt_start`` / ``attempt_end``)
        and supervised: deadline enforcement on the injected clock,
        heartbeats on the configured cadence.  Between failed attempts the
        task's seeded exponential-backoff schedule is slept (no-op when
        ``retry_backoff_s`` is 0); the delays actually waited are recorded
        on the result for observability.  A timed-out attempt is terminal:
        deadlines bound the *total* time a task may hold the run hostage,
        so timeouts are not retried.
        """
        clock = runtime.clock
        result = TaskResult(name=task.name, state=TaskState.PENDING,
                            start_time=clock())
        schedule = task.backoff_schedule()
        for attempt in range(task.retries + 1):
            result.attempts = attempt + 1
            number = runtime.attempt_number(task.name)
            runtime.record("attempt_start", {
                "task": task.name, "attempt": number, "t": clock(),
            })

            def beat(task_name: str = task.name, n: int = number) -> None:
                runtime.record("heartbeat", {
                    "task": task_name, "attempt": n, "t": clock(),
                })

            outcome = supervise_attempt(
                task.fn, dep_outputs,
                task_name=task.name, attempt=number,
                clock=clock, sleep=runtime.sleep,
                timeout_s=task.timeout_s,
                heartbeat_interval_s=runtime.heartbeat_interval_s
                if runtime.journal is not None else None,
                on_heartbeat=beat if runtime.journal is not None else None,
            )
            runtime.record("attempt_end", {
                "task": task.name, "attempt": number, "t": clock(),
                "outcome": outcome.outcome, "error": outcome.error,
            })
            if outcome.succeeded:
                result.outputs = outcome.outputs or {}
                result.state = TaskState.SUCCEEDED
                result.error = None
                break
            result.error = outcome.error
            if outcome.timed_out:
                result.state = TaskState.TIMED_OUT
                break
            result.state = TaskState.FAILED
            if attempt < task.retries:
                delay = schedule[attempt]
                result.backoff_delays.append(delay)
                if delay > 0:
                    runtime.sleep(delay)
        result.end_time = clock()
        return runtime.finish_task(result)

    def _run_parallel(
        self,
        runtime: _Runtime,
        inputs: Optional[Mapping[str, Dict[str, Any]]],
        max_workers: int,
        run_start: float,
        segments: int,
    ) -> WorkflowResult:
        """Dependency-ordered execution with a thread pool.

        A task is submitted as soon as all of its dependencies succeeded;
        tasks whose dependencies failed/skipped are marked skipped without
        running.  ``clock`` is called from worker threads, so injected
        clocks must be thread-safe (the monotonic counters used in tests
        and the SimClock's float add both are, under CPython).
        """
        import concurrent.futures as _futures

        self.topological_order()  # validates acyclicity up front
        results: Dict[str, TaskResult] = {}
        available: Dict[str, Dict[str, Any]] = {
            name: dict(outs) for name, outs in (inputs or {}).items()
        }
        remaining = dict(self._tasks)
        for name, preloaded in runtime.preloaded.items():
            if name in remaining:
                results[name] = preloaded
                if preloaded.state is TaskState.SUCCEEDED:
                    available[name] = preloaded.outputs
                del remaining[name]
        futures: Dict[_futures.Future, str] = {}

        def ready(task: Task) -> bool:
            return all(
                dep in results and results[dep].state is TaskState.SUCCEEDED
                for dep in task.deps
            )

        def doomed(task: Task) -> Optional[str]:
            for dep in task.deps:
                dep_result = results.get(dep)
                if dep_result is not None and dep_result.state is not TaskState.SUCCEEDED:
                    return dep
            return None

        with _futures.ThreadPoolExecutor(max_workers=max_workers) as pool:
            while remaining or futures:
                # mark skips and submit everything currently runnable
                progressed = True
                while progressed:
                    progressed = False
                    for name in sorted(remaining):
                        task = remaining[name]
                        failed_dep = doomed(task)
                        if failed_dep is not None:
                            results[name] = self._skip_task(
                                runtime, name, failed_dep
                            )
                            del remaining[name]
                            progressed = True
                            break
                        if ready(task):
                            dep_outputs = self._dep_outputs(task, available)
                            futures[pool.submit(
                                self._run_task, task, dep_outputs, runtime
                            )] = name
                            del remaining[name]
                            progressed = True
                            break
                if not futures:
                    if remaining:  # nothing runnable and nothing in flight
                        raise WorkflowError(
                            f"workflow {self.name!r} stalled with tasks "
                            f"{sorted(remaining)}"
                        )
                    break
                done, _ = _futures.wait(
                    futures, return_when=_futures.FIRST_COMPLETED
                )
                for future in done:
                    name = futures.pop(future)
                    result = future.result()
                    results[name] = result
                    if result.state is TaskState.SUCCEEDED:
                        available[name] = result.outputs

        return WorkflowResult(
            workflow_name=self.name,
            start_time=run_start,
            end_time=runtime.clock(),
            tasks=results,
            segments=segments,
        )
