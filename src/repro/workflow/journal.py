"""Durable workflow journal: crash-safe orchestration state for one run.

The in-memory :class:`~repro.workflow.dag.Workflow` executor loses every
completed task when the process dies — unacceptable under the walltime
caps and node failures the paper's Frontier study runs under.  This module
gives a workflow run a *state directory* holding ``workflow.wal``, an
append-only, crc-checked write-ahead log (same wire format as the run-level
:mod:`repro.core.journal`): every task attempt, heartbeat, terminal result
and lifecycle boundary is flushed to disk before execution proceeds, so a
killed run can be resumed with no SUCCEEDED task re-executed and its cached
outputs replayed bit-identically.

Record kinds (all carry a ``t`` timestamp from the run's injected clock):

``wf_start``
    Opens *segment 0*: workflow name, run id, pid, task specs.
``wf_resume``
    Opens segment *k*: a resume boundary (new pid).
``attempt_start`` / ``attempt_end``
    Bracket one execution attempt of one task.  An ``attempt_start``
    with no matching ``attempt_end`` in a dead segment means the process
    crashed *inside* that attempt — the signal the poison-task quarantine
    counts.
``heartbeat``
    Liveness proof for a long-running attempt (supervisor-emitted on a
    cadence, or task-emitted via :meth:`TaskContext.heartbeat`), so
    ``yprov wf status`` can tell *running* from *hung* from *dead*.
``task_result``
    The terminal record of one task: state, timings, attempts, canonical
    JSON outputs.  Resume replays these instead of re-executing.
``wf_end``
    Clean completion of the whole DAG; its absence from the last segment
    marks an interrupted run (lint rule PL112).

Torn or corrupted tail records — the normal residue of a kill — are
skipped record-by-record on read; the intact prefix always loads.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.core.journal import decode_record, encode_record, to_jsonable
from repro.errors import JournalError, WorkflowJournalError

PathLike = Union[str, Path]

#: File name of the workflow write-ahead journal inside a state directory.
WORKFLOW_JOURNAL_NAME = "workflow.wal"

#: Hook called after each record is durably on disk: ``(kind, index)``.
#: The chaos harness uses it to kill the process at record boundaries.
RecordHook = Callable[[str, int], None]


def workflow_journal_path(state_dir: PathLike) -> Path:
    """The workflow journal location for a state directory."""
    return Path(state_dir) / WORKFLOW_JOURNAL_NAME


def canonical_outputs(outputs: Mapping[str, Any]) -> Dict[str, Any]:
    """Normalize task outputs through canonical JSON.

    Journaled workflows require JSON-representable outputs so a resumed
    run can replay them bit-identically; normalizing the *live* run
    through the same round-trip guarantees live and replayed outputs are
    equal (tuples become lists, numpy scalars become Python numbers) —
    the resumed result can never drift from the uninterrupted one.
    """
    text = json.dumps(to_jsonable(dict(outputs)), sort_keys=True,
                      separators=(",", ":"))
    return json.loads(text)


class WorkflowJournal:
    """Append-only, checksummed, thread-safe event log for one workflow run.

    Appends are serialized by a lock (parallel mode journals from worker
    threads) and flushed+fsynced per record — a record either survives a
    kill in full or is detected as torn on the next read.  ``on_record``
    fires *after* the flush; if it raises (the chaos harness simulating a
    kill) the journal marks itself dead and drops all further appends, so
    the on-disk state is exactly what a SIGKILL at that boundary leaves.
    """

    def __init__(
        self,
        path: PathLike,
        fsync: bool = True,
        on_record: Optional[RecordHook] = None,
    ) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.on_record = on_record
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("ab")  # lint: disable=SL201 -- the append-only WAL is itself the crash-safety primitive; atomic rewrite would defeat it
        self._lock = threading.Lock()
        self._count = 0
        self._dead = False

    def append(self, kind: str, payload: Optional[Mapping[str, Any]] = None) -> None:
        """Durably append one record, then fire the chaos hook."""
        with self._lock:
            if self._dead:
                return  # the simulated kill already "ended" this process
            if self._fh is None:
                raise WorkflowJournalError(f"journal {self.path} is closed")
            record: Dict[str, Any] = {"k": kind}
            if payload:
                record.update(payload)
            try:
                self._fh.write(encode_record(record))
            except JournalError as exc:
                raise WorkflowJournalError(str(exc)) from exc
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            index = self._count
            self._count += 1
            if self.on_record is not None:
                try:
                    self.on_record(kind, index)
                except BaseException:
                    self._dead = True
                    raise

    def close(self) -> None:
        """Close the journal; further appends raise (dead journals no-op)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    @property
    def record_count(self) -> int:
        """Records appended through this handle."""
        return self._count

    def __enter__(self) -> "WorkflowJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# reading / history
# ---------------------------------------------------------------------------

@dataclass
class AttemptRecord:
    """One bracketed execution attempt reconstructed from the journal."""

    task: str
    number: int  # global attempt number, monotonic across resume boundaries
    segment: int
    start_time: float
    end_time: Optional[float] = None
    outcome: Optional[str] = None  # succeeded | failed | timed_out
    error: Optional[str] = None
    heartbeats: List[float] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        """Whether an ``attempt_end`` made it to disk."""
        return self.outcome is not None

    @property
    def last_signal(self) -> float:
        """The attempt's most recent proof of life."""
        signals = [self.start_time, *self.heartbeats]
        if self.end_time is not None:
            signals.append(self.end_time)
        return max(signals)


@dataclass
class WorkflowHistory:
    """Everything a resume / status query needs, parsed from the journal.

    ``terminal`` maps task name to its ``task_result`` payload (the
    replayable cache); ``attempts`` holds every bracketed attempt in
    journal order; ``crash_counts`` counts, per task, the attempts that
    were open when a dead segment ended — i.e. how many times this task
    crashed the process (the quarantine signal).
    """

    path: Path
    workflow_name: Optional[str] = None
    run_id: Optional[str] = None
    task_specs: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    segments: int = 0
    pid: Optional[int] = None  # pid of the last segment's process
    started_at: Optional[float] = None  # wf_start timestamp
    terminal: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    attempts: Dict[str, List[AttemptRecord]] = field(default_factory=dict)
    ended: bool = False  # wf_end seen in the *last* segment
    end_payload: Optional[Dict[str, Any]] = None
    bad_records: int = 0
    issues: List[str] = field(default_factory=list)
    n_records: int = 0

    @property
    def started(self) -> bool:
        """Whether a ``wf_start`` record ever made it to disk."""
        return self.workflow_name is not None

    @property
    def interrupted(self) -> bool:
        """Started but the last segment never reached ``wf_end``."""
        return self.started and not self.ended

    @property
    def resumed(self) -> bool:
        """Whether the run crossed at least one resume boundary."""
        return self.segments > 1

    def crash_counts(self) -> Dict[str, int]:
        """task -> number of process deaths recorded inside its attempts.

        An attempt that is open (no ``attempt_end``) in any segment other
        than a *live* last one means the process died mid-attempt.  The
        caller resuming a run knows every prior segment is dead, so every
        open attempt counts.
        """
        counts: Dict[str, int] = {}
        for task, records in self.attempts.items():
            for attempt in records:
                if not attempt.completed and task not in self.terminal:
                    counts[task] = counts.get(task, 0) + 1
        return counts

    def open_attempts(self) -> Dict[str, AttemptRecord]:
        """task -> its currently-open attempt in the last segment, if any."""
        out: Dict[str, AttemptRecord] = {}
        for task, records in self.attempts.items():
            if task in self.terminal:
                continue
            for attempt in records:
                if not attempt.completed and attempt.segment == self.segments - 1:
                    out[task] = attempt
        return out

    def next_attempt_number(self, task: str) -> int:
        """The global attempt number the next attempt of *task* should use."""
        records = self.attempts.get(task, [])
        return (records[-1].number + 1) if records else 1

    def task_statuses(
        self,
        now: Optional[float] = None,
        heartbeat_timeout_s: float = 30.0,
        pid_alive: Optional[Callable[[int], bool]] = None,
    ) -> Dict[str, str]:
        """Per-task status for ``yprov wf status``.

        Terminal tasks report their journaled state.  A task with an open
        attempt in the last segment is ``running`` (process alive, recent
        heartbeat), ``hung`` (process alive, heartbeat stale past
        *heartbeat_timeout_s*) or ``dead`` (process gone).  Everything
        else is ``pending``.  *now* and *pid_alive* are injectable so
        tests — and the simulator — can judge liveness deterministically.
        """
        pid_alive = pid_alive if pid_alive is not None else _pid_alive
        statuses: Dict[str, str] = {}
        open_attempts = self.open_attempts()
        alive = self.pid is not None and pid_alive(self.pid) and not self.ended
        for task in self.task_specs or {
            t: {} for t in set(self.attempts) | set(self.terminal)
        }:
            if task in self.terminal:
                statuses[task] = str(self.terminal[task].get("state", "unknown"))
            elif task in open_attempts:
                if not alive:
                    statuses[task] = "dead"
                else:
                    attempt = open_attempts[task]
                    age = (now if now is not None else attempt.last_signal) - \
                        attempt.last_signal
                    statuses[task] = "running" if age <= heartbeat_timeout_s \
                        else "hung"
            else:
                statuses[task] = "pending"
        return statuses

    def run_status(self) -> str:
        """Whole-run status: ``complete``, ``interrupted`` or ``empty``."""
        if not self.started:
            return "empty"
        return "complete" if self.ended else "interrupted"


def _pid_alive(pid: int) -> bool:
    """Whether *pid* names a live process (best effort, POSIX semantics)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but not ours
    return True


def scan_workflow_journal(path: PathLike) -> WorkflowHistory:
    """Parse a workflow journal into a :class:`WorkflowHistory`.

    *path* may be the journal file or the state directory containing it.
    Corrupt or torn records are skipped and reported — the intact prefix
    always loads (crash-at-any-boundary recovery).
    """
    path = Path(path)
    if path.is_dir():
        path = workflow_journal_path(path)
    if not path.is_file():
        raise WorkflowJournalError(f"workflow journal not found: {path}")

    history = WorkflowHistory(path=path, attempts={})
    open_by_task: Dict[str, AttemptRecord] = {}
    with path.open("rb") as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                record = decode_record(line)
            except JournalError as exc:
                history.bad_records += 1
                history.issues.append(f"line {lineno}: {exc}")
                continue
            history.n_records += 1
            kind = record.get("k")
            if kind == "wf_start":
                history.workflow_name = record.get("workflow")
                history.run_id = record.get("run_id")
                history.task_specs = record.get("tasks", {}) or {}
                history.pid = record.get("pid")
                history.started_at = record.get("t")
                history.segments = 1
                history.ended = False
                open_by_task.clear()
            elif kind == "wf_resume":
                history.segments += 1
                history.pid = record.get("pid", history.pid)
                history.ended = False
                open_by_task.clear()
            elif kind == "attempt_start":
                attempt = AttemptRecord(
                    task=str(record.get("task")),
                    number=int(record.get("attempt", 0)),
                    segment=max(history.segments - 1, 0),
                    start_time=float(record.get("t", 0.0)),
                )
                history.attempts.setdefault(attempt.task, []).append(attempt)
                open_by_task[attempt.task] = attempt
            elif kind == "heartbeat":
                attempt = open_by_task.get(str(record.get("task")))
                if attempt is not None:
                    attempt.heartbeats.append(float(record.get("t", 0.0)))
            elif kind == "attempt_end":
                attempt = open_by_task.pop(str(record.get("task")), None)
                if attempt is not None:
                    attempt.end_time = float(record.get("t", 0.0))
                    attempt.outcome = record.get("outcome")
                    attempt.error = record.get("error")
            elif kind == "task_result":
                history.terminal[str(record.get("task"))] = record
            elif kind == "wf_end":
                history.ended = True
                history.end_payload = record
    return history


def load_history(state_dir: PathLike) -> WorkflowHistory:
    """Load the journal of a workflow state directory (alias with intent)."""
    return scan_workflow_journal(state_dir)
