"""Task supervision: deadlines, heartbeats, cooperative cancellation.

The DAG executor calls :func:`supervise_attempt` for every attempt of a
task that has a ``timeout_s`` (or whose run wants heartbeats).  The task
function runs in a watched worker thread while the supervisor loop watches
the run's *injected* clock:

* when the deadline passes, the attempt's :class:`CancelToken` is set and
  the attempt is reported ``timed_out`` — a cooperative task unwinds via
  :class:`TaskContext`, a non-cooperative one is abandoned (daemon thread)
  so a hung task can never wedge the whole DAG;
* on a cadence (``heartbeat_interval_s``) the supervisor emits heartbeat
  records so ``yprov wf status`` can distinguish *running* from *hung*;
* the deadline is a contract on the injected clock: an attempt whose
  elapsed time exceeds ``timeout_s`` is ``timed_out`` even if its result
  arrived first, which keeps outcomes deterministic under simulated time.

Task functions may opt into supervision by accepting a second positional
argument::

    def train(deps, ctx):
        for step in range(steps):
            ctx.check_cancelled()     # raises TaskCancelledError after timeout
            ctx.heartbeat()           # journaled proof of life
            ...

Plain single-argument tasks keep working unchanged.
"""

from __future__ import annotations

import inspect
import threading
import time as _time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import TaskCancelledError

ClockFn = Callable[[], float]
SleepFn = Callable[[float], None]

#: Real-time wait between supervisor checks of the (possibly simulated)
#: clock.  Small enough that simulated-time tests converge in milliseconds.
_POLL_WAIT_S = 0.002

#: Largest slice :meth:`TaskContext.sleep` sleeps between cancel checks.
_SLEEP_SLICE_S = 0.05


class CancelToken:
    """Thread-safe cooperative cancellation flag."""

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


class TaskContext:
    """The supervised task's view of its own execution.

    Passed as the second positional argument to task functions that accept
    one.  Everything here is safe to call from the task's worker thread.
    """

    def __init__(
        self,
        task_name: str,
        attempt: int,
        token: CancelToken,
        clock: ClockFn,
        sleep: SleepFn,
        deadline: Optional[float] = None,
        on_heartbeat: Optional[Callable[[], None]] = None,
    ) -> None:
        self.task_name = task_name
        self.attempt = attempt
        self._token = token
        self._clock = clock
        self._sleep = sleep
        self.deadline = deadline
        self._on_heartbeat = on_heartbeat

    @property
    def cancelled(self) -> bool:
        """Whether the supervisor asked this attempt to stop."""
        return self._token.cancelled

    def check_cancelled(self) -> None:
        """Raise :class:`TaskCancelledError` if cancellation was requested."""
        if self._token.cancelled:
            raise TaskCancelledError(
                f"task {self.task_name!r} attempt {self.attempt} was cancelled"
            )

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` without a timeout)."""
        if self.deadline is None:
            return None
        return self.deadline - self._clock()

    def heartbeat(self) -> None:
        """Record a journaled proof of life for this attempt."""
        if self._on_heartbeat is not None:
            self._on_heartbeat()

    def sleep(self, seconds: float) -> None:
        """Sleep in cancel-checked slices; raises on cancellation.

        Uses the run's injected sleep function, so simulated-time tests
        advance their fake clock while staying responsive to the
        supervisor's cancel signal.
        """
        remaining = float(seconds)
        while remaining > 0:
            self.check_cancelled()
            slice_s = min(remaining, _SLEEP_SLICE_S)
            self._sleep(slice_s)
            remaining -= slice_s
        self.check_cancelled()


def wants_context(fn: Callable[..., Any]) -> bool:
    """Whether a task function accepts the ``(deps, ctx)`` calling form."""
    try:
        params = [
            p for p in inspect.signature(fn).parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
    except (TypeError, ValueError):  # builtins / odd callables: assume legacy
        return False
    if any(
        p.kind == p.VAR_POSITIONAL
        for p in inspect.signature(fn).parameters.values()
    ):
        return True
    return len(params) >= 2


@dataclass
class AttemptOutcome:
    """What one supervised attempt produced."""

    outcome: str  # "succeeded" | "failed" | "timed_out"
    outputs: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.outcome == "succeeded"

    @property
    def timed_out(self) -> bool:
        return self.outcome == "timed_out"


def _call_task(
    fn: Callable[..., Any],
    deps: Dict[str, Dict[str, Any]],
    ctx: Optional[TaskContext],
) -> AttemptOutcome:
    """Run the task callable once and classify the result."""
    try:
        if ctx is not None and wants_context(fn):
            outputs = fn(deps, ctx)
        else:
            outputs = fn(deps)
        outputs = outputs or {}
        if not isinstance(outputs, dict):
            raise TypeError(
                f"task must return a dict of outputs, got "
                f"{type(outputs).__name__}"
            )
        return AttemptOutcome("succeeded", outputs=outputs)
    except TaskCancelledError as exc:
        return AttemptOutcome("timed_out", error=f"{type(exc).__name__}: {exc}")
    except Exception as exc:  # noqa: BLE001 — task errors are data
        return AttemptOutcome("failed", error=f"{type(exc).__name__}: {exc}")


def supervise_attempt(
    fn: Callable[..., Any],
    deps: Dict[str, Dict[str, Any]],
    *,
    task_name: str,
    attempt: int,
    clock: ClockFn,
    sleep: SleepFn,
    timeout_s: Optional[float] = None,
    heartbeat_interval_s: Optional[float] = None,
    on_heartbeat: Optional[Callable[[], None]] = None,
    poll_wait_s: float = _POLL_WAIT_S,
) -> AttemptOutcome:
    """Run one attempt under supervision.

    Without a timeout or heartbeat cadence the callable runs inline (the
    legacy fast path).  Otherwise it runs in a watched worker thread while
    this function polls the injected clock, emitting heartbeats and
    enforcing the deadline.  A timed-out non-cooperative task is abandoned
    (its daemon thread may briefly linger; its result, if any, is
    discarded).
    """
    start = clock()
    deadline = start + timeout_s if timeout_s is not None else None
    token = CancelToken()
    ctx = TaskContext(
        task_name, attempt, token, clock, sleep,
        deadline=deadline, on_heartbeat=on_heartbeat,
    )

    if deadline is None and heartbeat_interval_s is None:
        return _call_task(fn, deps, ctx)

    box: Dict[str, AttemptOutcome] = {}
    done = threading.Event()

    def worker() -> None:
        box["outcome"] = _call_task(fn, deps, ctx)
        done.set()

    thread = threading.Thread(
        target=worker, name=f"wf-task-{task_name}-{attempt}", daemon=True
    )
    thread.start()

    next_beat = (
        start + heartbeat_interval_s if heartbeat_interval_s is not None
        else None
    )
    while not done.is_set():
        now = clock()
        if deadline is not None and now >= deadline:
            token.cancel()
            # give a cooperative task one poll to unwind; then abandon it
            done.wait(poll_wait_s)
            break
        if next_beat is not None and now >= next_beat and on_heartbeat is not None:
            on_heartbeat()
            next_beat = now + heartbeat_interval_s
        done.wait(poll_wait_s)

    timed_out = deadline is not None and clock() >= deadline
    if done.is_set() and not timed_out:
        return box["outcome"]
    if done.is_set() and timed_out:
        # the deadline contract wins even over a completed result — this
        # keeps outcomes deterministic when a simulated clock jumps
        outcome = box["outcome"]
        error = outcome.error or (
            f"task exceeded its {timeout_s}s deadline"
        )
        return AttemptOutcome("timed_out", error=error)
    return AttemptOutcome(
        "timed_out",
        error=f"task exceeded its {timeout_s}s deadline and was abandoned",
    )


# re-exported for tests that want a real-clock default
wall_clock: ClockFn = _time.time
wall_sleep: SleepFn = _time.sleep
