"""Cluster lint rules (``PL11x``, family ``cluster``): manifest audits.

A sharded yProv deployment leaves an on-disk footprint the linter can
audit without a live router: the ``cluster.json`` manifest
(:func:`repro.yprov.cluster.local.write_manifest`) names every shard and
its document directory.  Replication is the cluster's durability story —
a document below its target copy count is one shard loss away from being
gone — so under-replication is exactly the kind of silent rot a lint
pass should surface before chaos does.

The family runs offline over directories (like the ``prov`` family) and
never needs the cluster to be up; a dead shard's directory still counts
its copies.  PL113 (enough copies) and PL114 (copies agree on content)
audit the replica invariants the self-healing machinery maintains
online — a clean pair after an anti-entropy sweep is the offline proof
that the sweep converged.  Both see through either storage backend: a
shard's copies may be flat ``.provjson`` files or a WAL + segment store
(:mod:`repro.yprov.segments`), hashed identically.  PL115 audits the
segment stores themselves: sealed WALs left uncompacted and segment
footer indexes that disagree with the records they index.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ClusterError, LintError
from repro.lint.engine import (
    DEFAULT_REGISTRY,
    Finding,
    LintReport,
    Rule,
    RuleRegistry,
    Severity,
)
from repro.yprov.cluster.local import read_manifest
from repro.yprov.segments import STORE_DIR, scan_store

#: Stored-document suffix (mirrors :mod:`repro.yprov.service`; read-only).
_DOC_SUFFIX = ".provjson"

_R = DEFAULT_REGISTRY


@dataclass
class ClusterManifestContext:
    """Manifest plus each shard's on-disk document inventory.

    An unreadable manifest leaves ``error`` set; the rule reports it and
    does nothing else — linting a broken deployment must describe the
    breakage, not crash on it.
    """

    manifest_path: Path
    replication: int = 0
    #: ``(shard id, root path or None)`` in manifest order.
    shards: List[Tuple[str, Optional[Path]]] = field(default_factory=list)
    error: Optional[str] = None

    def __post_init__(self) -> None:
        self.manifest_path = Path(self.manifest_path)
        try:
            payload: Dict[str, Any] = read_manifest(self.manifest_path)
        except ClusterError as exc:
            self.error = str(exc)
            return
        self.replication = int(payload.get("replication", 0) or 0)
        for shard in payload.get("shards", []):
            shard_id = str(shard.get("id", "?"))
            root = shard.get("root")
            root_path: Optional[Path] = None
            if root:
                root_path = Path(root)
                if not root_path.is_absolute():
                    # relative roots resolve against the manifest, so a
                    # manifest + shard dirs can be checked in as a fixture
                    root_path = self.manifest_path.parent / root_path
            self.shards.append((shard_id, root_path))

    def holders(self) -> Dict[str, Set[str]]:
        """``{doc id: shards holding a copy}`` from the shard directories."""
        held: Dict[str, Set[str]] = {}
        for doc_id, by_shard in self.copy_hashes().items():
            held[doc_id] = set(by_shard)
        return held

    def copy_hashes(self) -> Dict[str, Dict[str, str]]:
        """``{doc id: {shard id: sha256 of the stored text bytes}}``.

        A shard's copies come from its flat ``.provjson`` files *and*,
        when it carries a ``store/`` directory, its WAL + segment store —
        both hash the document text bytes, so copies are comparable
        across storage backends.  Unreadable copies are skipped here — a
        vanished file is PL113's under-replication story, not a
        divergence.
        """
        hashes: Dict[str, Dict[str, str]] = {}
        for shard_id, root in self.shards:
            if root is None or not root.is_dir():
                continue
            for doc_path in sorted(root.glob(f"*{_DOC_SUFFIX}")):
                try:
                    digest = hashlib.sha256(
                        doc_path.read_bytes()
                    ).hexdigest()
                except OSError:
                    continue
                hashes.setdefault(doc_path.stem, {})[shard_id] = digest
            store_dir = root / STORE_DIR
            if store_dir.is_dir():
                scan = scan_store(store_dir)
                for doc_id, digest in sorted(scan.inventory().items()):
                    hashes.setdefault(doc_id, {})[shard_id] = digest
                if scan.segment is not None:
                    scan.segment.close()
        return hashes


@_R.rule(
    "PL113", "under-replicated-document", "error", "cluster",
    "A document holds fewer on-disk copies than the cluster's replication "
    "target: one shard loss from data loss.",
)
def check_under_replicated(
    rule: Rule, ctx: ClusterManifestContext
) -> Iterable[Finding]:
    """PL113: every document must hold ``replication + 1`` copies."""
    if ctx.error is not None:
        yield rule.finding(
            f"cluster manifest is unreadable: {ctx.error}",
            path=ctx.manifest_path.name,
        )
        return
    needed = ctx.replication + 1
    auditable = 0
    for shard_id, root in ctx.shards:
        if root is None:
            yield rule.finding(
                f"shard {shard_id!r} has no root directory in the manifest; "
                "its copies cannot be audited",
                path=ctx.manifest_path.name,
                element=shard_id,
                severity=Severity.WARNING,
            )
        elif not root.is_dir():
            yield rule.finding(
                f"shard {shard_id!r} root {root} does not exist; every copy "
                "it held is missing from this audit",
                path=ctx.manifest_path.name,
                element=shard_id,
                severity=Severity.WARNING,
            )
        else:
            auditable += 1
    if auditable == 0:
        return
    for doc_id, holding in sorted(ctx.holders().items()):
        if len(holding) < needed:
            yield rule.finding(
                f"document {doc_id!r} holds {len(holding)} of {needed} "
                f"copies (on {sorted(holding)}); repair before the next "
                "shard failure makes it permanent",
                path=ctx.manifest_path.name,
                element=doc_id,
            )


@_R.rule(
    "PL114", "diverged-replica", "error", "cluster",
    "Replica copies of a document disagree on content: reads may answer "
    "differently depending on which shard serves them.",
)
def check_diverged_replica(
    rule: Rule, ctx: ClusterManifestContext
) -> Iterable[Finding]:
    """PL114: every replica of a document must hold identical bytes.

    Divergence means a write landed on some copies but not others (a
    lost repair, an out-of-band restore, bit rot that still parses) —
    the cluster will serve different answers for the same document until
    an anti-entropy sweep converges the copies on the majority winner.
    An unreadable manifest is PL113's finding; this rule stays silent on
    it rather than double-reporting.
    """
    if ctx.error is not None:
        return
    for doc_id, by_shard in sorted(ctx.copy_hashes().items()):
        if len(set(by_shard.values())) < 2:
            continue
        groups: Dict[str, List[str]] = {}
        for shard_id, digest in sorted(by_shard.items()):
            groups.setdefault(digest, []).append(shard_id)
        detail = "; ".join(
            f"{'+'.join(shards)}={digest[:12]}"
            for digest, shards in sorted(
                groups.items(), key=lambda kv: (-len(kv[1]), kv[1])
            )
        )
        yield rule.finding(
            f"document {doc_id!r} has diverged replica content "
            f"({detail}); an anti-entropy sweep converges the copies on "
            "the majority winner",
            path=ctx.manifest_path.name,
            element=doc_id,
        )


@_R.rule(
    "PL115", "stale-segment-store", "error", "cluster",
    "A shard's segment store is unhealthy: sealed WALs sit uncompacted, "
    "or a segment's footer index disagrees with its records.",
)
def check_segment_store(
    rule: Rule, ctx: ClusterManifestContext
) -> Iterable[Finding]:
    """PL115: shard segment stores must be compacted and self-consistent.

    Two distinct rots, one rule.  *Uncompacted sealed WALs* (warning):
    every sealed WAL is replayed record-by-record on open, so a shard
    that seals but never compacts slowly turns restart into the full-WAL
    replay compaction exists to eliminate.  *Index disagreement*
    (error): the segment footer is the read path — reads and value
    lookups trust its offsets and hashes without replaying — so a footer
    that disagrees with the records it indexes means reads can return
    wrong or missing documents while the file still "opens fine".
    Corrupt or superseded leftover files are reported too: a crash
    leaves them legitimately, but the next store open should have
    cleaned them up.
    """
    if ctx.error is not None:
        return
    for shard_id, root in ctx.shards:
        if root is None:
            continue
        store_dir = root / STORE_DIR
        if not store_dir.is_dir():
            continue
        scan = scan_store(store_dir)
        try:
            if scan.segment is not None:
                for issue in scan.segment.verify():
                    yield rule.finding(
                        f"shard {shard_id!r} segment "
                        f"{scan.segment.path.name}: footer index disagrees "
                        f"with records: {issue}",
                        path=ctx.manifest_path.name,
                        element=shard_id,
                    )
            for path in scan.corrupt_segments:
                yield rule.finding(
                    f"shard {shard_id!r} carries corrupt segment "
                    f"{path.name}; the store quarantines it on next open, "
                    "but its documents are served from WALs until then",
                    path=ctx.manifest_path.name,
                    element=shard_id,
                )
            for path in scan.superseded_wals + scan.superseded_segments:
                yield rule.finding(
                    f"shard {shard_id!r} carries superseded store file "
                    f"{path.name} (interrupted compaction cleanup); the "
                    "next store open removes it",
                    path=ctx.manifest_path.name,
                    element=shard_id,
                    severity=Severity.WARNING,
                )
            # the newest WAL is the active one — only the sealed rest
            # (every live WAL before it) is compaction-eligible
            sealed = scan.live_wals[:-1] if scan.live_wals else []
            if sealed:
                yield rule.finding(
                    f"shard {shard_id!r} has {len(sealed)} sealed WAL(s) "
                    f"eligible for compaction ({sealed[0].name} …); every "
                    "restart replays them record-by-record until "
                    "'yprov compact' folds them into a segment",
                    path=ctx.manifest_path.name,
                    element=shard_id,
                    severity=Severity.WARNING,
                )
        finally:
            if scan.segment is not None:
                scan.segment.close()


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------

def lint_cluster_manifest(
    manifest_path: Any,
    registry: RuleRegistry = DEFAULT_REGISTRY,
    select: Optional[List[str]] = None,
    ignore: Optional[List[str]] = None,
) -> LintReport:
    """Run the cluster rule family over one ``cluster.json`` manifest."""
    manifest_path = Path(manifest_path)
    if not manifest_path.is_file():
        raise LintError(f"cluster manifest does not exist: {manifest_path}")
    ctx = ClusterManifestContext(manifest_path=manifest_path)
    rules = registry.select("cluster", select=select, ignore=ignore)
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(rule, ctx))
    return LintReport(
        findings=findings,
        checked_rules=[r.rule_id for r in rules],
        target=str(manifest_path),
    )
