"""``repro.lint`` — rule-based static analysis for provenance and the codebase.

Two rule families share one engine (registry, severities, suppression,
baselines, reporters):

* ``PL1xx`` (:mod:`repro.lint.provrules`) lints *provenance*: PROV-JSON
  graphs, the offloaded metric stores they point at, and run-directory
  lifecycle state (journals, spools);
* ``SL2xx`` (:mod:`repro.lint.selfrules`) lints *this codebase* against
  its own conventions (atomic persistence, simulator determinism,
  exception ownership) via a stdlib-``ast`` pass;
* ``PL11x`` family ``cluster`` (:mod:`repro.lint.clusterrules`) lints a
  sharded deployment's ``cluster.json`` manifest for under-replicated
  documents;
* ``PL11x`` family ``fleet`` (:mod:`repro.lint.fleetrules`) lints a job
  fleet's state root for stuck leases, orphaned job state directories
  and stale dead-letter entries.

CLI entry point: ``yprov lint <run_dir>`` / ``yprov lint --self`` /
``yprov lint --cluster cluster.json`` / ``yprov lint --fleet DIR``.
"""

from repro.lint.engine import (
    DEFAULT_REGISTRY,
    Baseline,
    Finding,
    LintReport,
    Rule,
    RuleRegistry,
    Severity,
    apply_baseline,
)
from repro.lint.clusterrules import ClusterManifestContext, lint_cluster_manifest
from repro.lint.fleetrules import FleetRootContext, lint_fleet_root
from repro.lint.provrules import RunDirContext, lint_run_dir
from repro.lint.report import FORMATS, render, render_json, render_sarif, render_text
from repro.lint.selfrules import ModuleContext, default_source_root, lint_source

__all__ = [
    "DEFAULT_REGISTRY",
    "Baseline",
    "ClusterManifestContext",
    "FORMATS",
    "Finding",
    "FleetRootContext",
    "LintReport",
    "ModuleContext",
    "Rule",
    "RuleRegistry",
    "RunDirContext",
    "Severity",
    "apply_baseline",
    "default_source_root",
    "lint_cluster_manifest",
    "lint_fleet_root",
    "lint_run_dir",
    "lint_source",
    "render",
    "render_json",
    "render_sarif",
    "render_text",
]
