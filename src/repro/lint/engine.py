"""Rule engine shared by both analyzer families of :mod:`repro.lint`.

The engine is deliberately small: a *rule* is a named, severity-tagged
check function registered in a :class:`RuleRegistry`; running a family of
rules over a target yields :class:`Finding` records collected into a
:class:`LintReport`.  Everything else — what a rule looks at (a provenance
run directory, a Python module) — lives with the rule families
(:mod:`repro.lint.provrules`, :mod:`repro.lint.selfrules`).

Rule-ID namespaces:

* ``PL1xx`` — provenance lint: PROV-JSON graphs, offloaded metric stores,
  run-directory state (family ``"prov"``); the ``PL113+`` tail audits
  deployment footprints (families ``"cluster"`` and ``"fleet"``);
* ``SL2xx`` — self-lint: AST checks of this codebase's own invariants
  (family ``"self"``).

Findings can be silenced two ways, both counted in the report:

* **inline suppression** (self-lint only): a ``# lint: disable=SL201``
  comment on the flagged line, optionally with a justification after the
  rule list;
* **baselines** (both families): a JSON file of finding fingerprints
  (:class:`Baseline`) that grandfathers known findings so CI only fails
  on *new* ones.
"""

from __future__ import annotations

import enum
import functools
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.atomicio import atomic_write_json
from repro.errors import LintError

PathLike = Union[str, Path]


@functools.total_ordering
class Severity(enum.Enum):
    """How bad a finding is; orders ``info < warning < error``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return ("info", "warning", "error").index(self.value)

    def __lt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank < other.rank

    @classmethod
    def of(cls, value: Union[str, "Severity"]) -> "Severity":
        """Coerce a name like ``"error"`` (or an instance) to a Severity."""
        if isinstance(value, Severity):
            return value
        try:
            return cls(value)
        except ValueError:
            raise LintError(
                f"unknown severity {value!r}; choose from "
                f"{[s.value for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``path`` is the file (self-lint) or run-directory-relative resource
    (provenance lint) the finding anchors to; ``element`` narrows it to a
    PROV qualified name, a metric series, a chunk, or a source construct.
    ``line`` is 1-based and only meaningful for source findings.
    """

    rule_id: str
    severity: Severity
    message: str
    path: str = ""
    line: Optional[int] = None
    element: Optional[str] = None

    def location(self) -> str:
        """Human-readable ``path:line [element]`` anchor for this finding."""
        loc = self.path or "<target>"
        if self.line is not None:
            loc += f":{self.line}"
        if self.element:
            loc += f" [{self.element}]"
        return loc

    def fingerprint(self) -> str:
        """Stable identity used by baselines.

        Line numbers are deliberately excluded so unrelated edits that
        shift a finding up or down the file do not invalidate a baseline.
        """
        key = "\x1f".join(
            (self.rule_id, self.path, self.element or "", self.message)
        )
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


#: A rule check: takes a family-specific context, yields findings.
CheckFn = Callable[..., Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """A registered check with its identity and default severity."""

    rule_id: str
    name: str
    severity: Severity
    family: str
    description: str
    check: CheckFn

    def finding(
        self,
        message: str,
        path: str = "",
        line: Optional[int] = None,
        element: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> Finding:
        """Convenience constructor stamping this rule's id/severity."""
        return Finding(
            rule_id=self.rule_id,
            severity=severity if severity is not None else self.severity,
            message=message,
            path=path,
            line=line,
            element=element,
        )


_FAMILIES = ("prov", "self", "cluster", "fleet")


class RuleRegistry:
    """Ordered collection of rules, addressable by id and family."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def rule(
        self,
        rule_id: str,
        name: str,
        severity: Union[str, Severity],
        family: str,
        description: str,
    ) -> Callable[[CheckFn], CheckFn]:
        """Decorator registering *check* under *rule_id*."""
        if family not in _FAMILIES:
            raise LintError(f"unknown rule family {family!r} for {rule_id}")
        if rule_id in self._rules:
            raise LintError(f"duplicate rule id: {rule_id}")
        sev = Severity.of(severity)

        def register(check: CheckFn) -> CheckFn:
            self._rules[rule_id] = Rule(
                rule_id=rule_id,
                name=name,
                severity=sev,
                family=family,
                description=description,
                check=check,
            )
            return check

        return register

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise LintError(f"unknown rule id: {rule_id!r}") from None

    def ids(self) -> List[str]:
        return sorted(self._rules)

    def family(self, family: str) -> List[Rule]:
        """Rules of one family, in id order."""
        return [self._rules[rid] for rid in self.ids()
                if self._rules[rid].family == family]

    def select(
        self,
        family: str,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ) -> List[Rule]:
        """Family rules filtered by explicit selection / ignore lists."""
        for rid in list(select or ()) + list(ignore or ()):
            self.get(rid)  # raise on unknown ids rather than silently no-op
        rules = self.family(family)
        if select:
            rules = [r for r in rules if r.rule_id in set(select)]
        if ignore:
            rules = [r for r in rules if r.rule_id not in set(ignore)]
        return rules

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules[rid] for rid in self.ids())

    def __len__(self) -> int:
        return len(self._rules)


#: The registry both built-in rule families register into.
DEFAULT_REGISTRY = RuleRegistry()


@dataclass
class LintReport:
    """Outcome of one lint pass: surviving findings plus accounting."""

    findings: List[Finding] = field(default_factory=list)
    checked_rules: List[str] = field(default_factory=list)
    target: str = ""
    suppressed: int = 0
    baselined: int = 0

    def counts(self) -> Dict[str, int]:
        out = {s.value: 0 for s in Severity}
        for f in self.findings:
            out[f.severity.value] += 1
        return out

    @property
    def max_severity(self) -> Optional[Severity]:
        return max((f.severity for f in self.findings), default=None)

    def exit_code(self, fail_on: Union[str, Severity] = Severity.ERROR) -> int:
        """0 when no finding reaches *fail_on*; 1 otherwise."""
        threshold = Severity.of(fail_on)
        worst = self.max_severity
        return 1 if worst is not None and worst >= threshold else 0

    def sorted_findings(self) -> List[Finding]:
        """Deterministic order: severity desc, then rule id, then location."""
        return sorted(
            self.findings,
            key=lambda f: (-f.severity.rank, f.rule_id, f.path,
                           f.line or 0, f.element or "", f.message),
        )

    def summary(self) -> str:
        """One-line tally of findings by severity plus silenced counts."""
        c = self.counts()
        return (
            f"{len(self.findings)} finding(s): {c['error']} error(s), "
            f"{c['warning']} warning(s), {c['info']} info "
            f"({self.suppressed} suppressed, {self.baselined} baselined)"
        )


class Baseline:
    """A set of grandfathered finding fingerprints.

    The file format keeps a human-readable digest next to each fingerprint
    so reviewers can see *what* was baselined without re-running the lint::

        {"version": 1,
         "fingerprints": {"ab12...": {"rule_id": "PL101", "path": "...",
                                      "message": "..."}}}
    """

    VERSION = 1

    def __init__(self, fingerprints: Optional[Dict[str, Dict[str, str]]] = None) -> None:
        self.fingerprints: Dict[str, Dict[str, str]] = dict(fingerprints or {})

    @classmethod
    def load(cls, path: PathLike) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise LintError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("version") != cls.VERSION:
            raise LintError(f"unsupported baseline format in {path}")
        fps = doc.get("fingerprints", {})
        if not isinstance(fps, dict):
            raise LintError(f"malformed baseline fingerprints in {path}")
        return cls(fps)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """Build a baseline grandfathering every given finding."""
        base = cls()
        for f in findings:
            base.fingerprints[f.fingerprint()] = {
                "rule_id": f.rule_id,
                "path": f.path,
                "message": f.message,
            }
        return base

    def save(self, path: PathLike) -> Path:
        """Persist atomically (the engine follows the repo's own SL201 rule)."""
        doc = {
            "version": self.VERSION,
            "fingerprints": {fp: self.fingerprints[fp]
                             for fp in sorted(self.fingerprints)},
        }
        return atomic_write_json(Path(path), doc, indent=1)

    def filter(self, findings: Iterable[Finding]) -> Tuple[List[Finding], int]:
        """Split findings into (new, n_baselined)."""
        fresh: List[Finding] = []
        known = 0
        for f in findings:
            if f.fingerprint() in self.fingerprints:
                known += 1
            else:
                fresh.append(f)
        return fresh, known

    def __len__(self) -> int:
        return len(self.fingerprints)

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.fingerprints


def apply_baseline(report: LintReport, baseline: Optional[Baseline]) -> LintReport:
    """Drop baselined findings from *report* (in place) and return it."""
    if baseline is not None:
        report.findings, known = baseline.filter(report.findings)
        report.baselined += known
    return report
