"""Renderers for :class:`~repro.lint.engine.LintReport`.

Three formats:

* **text** — one human-readable line per finding plus a summary, for
  terminals;
* **json** — a stable machine-readable document, for scripting;
* **sarif** — SARIF 2.1.0, the interchange format code-scanning UIs
  (GitHub, VS Code) ingest, carrying rule metadata and stable
  fingerprints so re-runs update rather than duplicate alerts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union

from repro import __version__ as _LIB_VERSION
from repro.errors import LintError
from repro.lint.engine import Finding, LintReport, RuleRegistry, Severity

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

FORMATS = ("text", "json", "sarif")


def render_text(report: LintReport) -> str:
    """One human-readable line per finding, severity-sorted, plus a summary."""
    lines: List[str] = []
    for f in report.sorted_findings():
        lines.append(f"{f.severity.value:<7} {f.rule_id}  {f.location()}: {f.message}")
    lines.append(report.summary())
    return "\n".join(lines) + "\n"


def _finding_dict(finding: Finding) -> Dict[str, Any]:
    return {
        "rule_id": finding.rule_id,
        "severity": finding.severity.value,
        "message": finding.message,
        "path": finding.path,
        "line": finding.line,
        "element": finding.element,
        "fingerprint": finding.fingerprint(),
    }


def render_json(report: LintReport, indent: Optional[int] = 1) -> str:
    """Stable machine-readable JSON document for scripting."""
    doc = {
        "tool": {"name": "repro.lint", "version": _LIB_VERSION},
        "target": report.target,
        "checked_rules": list(report.checked_rules),
        "counts": report.counts(),
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "findings": [_finding_dict(f) for f in report.sorted_findings()],
    }
    return json.dumps(doc, indent=indent) + "\n"


def render_sarif(report: LintReport, registry: Optional[RuleRegistry] = None) -> str:
    """SARIF 2.1.0 with rule metadata for every checked rule."""
    rules_meta: List[Dict[str, Any]] = []
    if registry is not None:
        for rule_id in report.checked_rules:
            if rule_id not in registry:
                continue
            rule = registry.get(rule_id)
            rules_meta.append(
                {
                    "id": rule.rule_id,
                    "name": rule.name,
                    "shortDescription": {"text": rule.description},
                    "defaultConfiguration": {
                        "level": _SARIF_LEVELS[rule.severity]
                    },
                }
            )
    results: List[Dict[str, Any]] = []
    for f in report.sorted_findings():
        location: Dict[str, Any] = {
            "physicalLocation": {
                "artifactLocation": {"uri": f.path or report.target},
            }
        }
        if f.line is not None:
            location["physicalLocation"]["region"] = {"startLine": f.line}
        if f.element:
            location["logicalLocations"] = [{"name": f.element}]
        results.append(
            {
                "ruleId": f.rule_id,
                "level": _SARIF_LEVELS[f.severity],
                "message": {"text": f.message},
                "locations": [location],
                "partialFingerprints": {"reproLint/v1": f.fingerprint()},
            }
        )
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "version": _LIB_VERSION,
                        "informationUri": "https://github.com/HPCI-Lab/yProvML",
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=1) + "\n"


def render(
    report: LintReport,
    fmt: str = "text",
    registry: Optional[RuleRegistry] = None,
) -> str:
    """Render *report* in one of :data:`FORMATS`."""
    if fmt == "text":
        return render_text(report)
    if fmt == "json":
        return render_json(report)
    if fmt == "sarif":
        return render_sarif(report, registry=registry)
    raise LintError(f"unknown report format {fmt!r}; choose from {FORMATS}")
