"""Codebase self-lint rules (``SL2xx``): the library's own invariants, by AST.

The crash-safety story of this library rests on conventions the type system
cannot enforce: every persistent write goes through :mod:`repro.atomicio`,
the simulator stays bit-deterministic, exceptions stay inside the subsystem
that owns them.  These rules pin those conventions down with a stdlib
:mod:`ast` pass so drift shows up in CI instead of in a post-mortem.

Findings can be silenced per line with a justification comment::

    self._fh = self.path.open("ab")  # lint: disable=SL201 -- append-only WAL

The rule list accepts multiple comma-separated ids; anything after the ids
is free-form justification (and strongly encouraged).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import LintError
from repro.lint.engine import DEFAULT_REGISTRY, Finding, LintReport, Rule, RuleRegistry

#: ``# lint: disable=SL201, SL203 -- why`` (ids first, justification after).
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=((?:[A-Z]{2}\d{3})(?:\s*,\s*[A-Z]{2}\d{3})*)")

#: The one module allowed to perform raw persistence (it implements the
#: write-temp/fsync/rename discipline everything else must go through).
_ATOMICIO_MODULE = "atomicio.py"

#: Modes that make an ``open`` call a persistence site.
_WRITE_MODE_CHARS = set("wax+")

#: Internal exception name -> module prefixes (relative to the package root,
#: POSIX separators) allowed to raise it.  Raising one of these anywhere
#: else leaks a subsystem's failure vocabulary across an API boundary.
_EXCEPTION_OWNERS: Dict[str, Tuple[str, ...]] = {
    # PROV substrate
    "ProvError": ("prov/",),
    "InvalidQualifiedNameError": ("prov/",),
    "UnknownNamespaceError": ("prov/",),
    "SerializationError": ("prov/",),
    "ValidationError": ("prov/",),
    "DuplicateRecordError": ("prov/",),
    # tracking core
    "TrackingError": ("core/",),
    "NoActiveRunError": ("core/",),
    "RunAlreadyActiveError": ("core/",),
    "UnknownContextError": ("core/",),
    "ArtifactError": ("core/",),
    "JournalError": ("core/journal.py",),
    "RecoveryError": ("core/recover.py",),
    # metric storage
    "StorageError": ("storage/",),
    "CodecError": ("storage/",),
    "StoreFormatError": ("storage/",),
    "ChecksumError": ("storage/",),
    # RO-Crate packaging (the workflow layer builds crates too)
    "CrateError": ("crate/", "workflow/wfcrate.py"),
    # embedded graph database
    "GraphDBError": ("yprov/graphdb.py",),
    "NodeNotFoundError": ("yprov/graphdb.py",),
    "ConstraintViolationError": ("yprov/graphdb.py",),
    # provenance service + transport
    "ServiceError": ("yprov/",),
    "DocumentNotFoundError": ("yprov/",),
    "HandleError": ("yprov/handle.py",),
    "TransportError": ("yprov/client.py",),
    "CircuitOpenError": ("yprov/client.py",),
    "SpoolError": ("yprov/spool.py", "yprov/client.py"),
    "SegmentError": ("yprov/segments.py",),
    "IngestError": ("yprov/ingest.py",),
    # shard cluster (router tier)
    "ClusterError": ("yprov/cluster/",),
    "QuorumError": ("yprov/cluster/",),
    "PartialResultError": ("yprov/cluster/",),
    # PROVQL query engine
    "QueryError": ("query/",),
    "QuerySyntaxError": ("query/",),
    "PlanError": ("query/",),
    # job fleet (the client re-raises fleet errors from coded REST replies)
    "FleetError": ("fleet/", "yprov/client.py"),
    "JobNotFoundError": ("fleet/", "yprov/client.py"),
    "QueueFullError": ("fleet/", "yprov/client.py"),
    "LeaseExpiredError": ("fleet/", "yprov/client.py"),
    "JobStateError": ("fleet/", "yprov/client.py"),
    # workflow DAGs
    "WorkflowError": ("workflow/",),
    "CycleError": ("workflow/",),
    "WorkflowJournalError": ("workflow/",),
    "TaskCancelledError": ("workflow/",),
    # simulator
    "SimulationError": ("simulator/",),
    "ClusterConfigError": ("simulator/",),
    "CommError": ("simulator/",),
    "WalltimeExceededError": ("simulator/",),
    # analysis
    "AnalysisError": ("analysis/",),
    "InsufficientHistoryError": ("analysis/",),
    # this subsystem (the CLI front-end raises lint usage errors on its behalf)
    "LintError": ("lint/", "yprov/cli.py"),
}

#: numpy legacy global-state samplers (all draw from the unseeded global RNG).
_NP_GLOBAL_SAMPLERS = {
    "rand", "randn", "randint", "random", "random_sample", "normal",
    "uniform", "choice", "shuffle", "permutation", "standard_normal",
}


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Attribute/Name chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_mode(call: ast.Call, *, is_method: bool) -> Optional[str]:
    """The string-literal mode argument of an ``open`` call, if any.

    ``open(path, "w")`` passes the mode at index 1; ``path.open("w")`` at
    index 0.  Non-literal modes return ``None`` (we cannot judge them).
    """
    index = 0 if is_method else 1
    mode_node: Optional[ast.AST] = None
    if len(call.args) > index:
        mode_node = call.args[index]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_node = kw.value
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None


def _is_write_mode(mode: Optional[str]) -> bool:
    return mode is not None and bool(set(mode) & _WRITE_MODE_CHARS)


@dataclass
class ModuleContext:
    """One parsed source module plus its suppression map."""

    rel_path: str  # POSIX path relative to the package root
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, rel_path: str) -> "ModuleContext":
        """Read and parse one module; unreadable source is a LintError."""
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=rel_path)
        except (OSError, SyntaxError) as exc:
            raise LintError(f"cannot parse {rel_path}: {exc}") from exc
        ctx = cls(rel_path=rel_path, tree=tree,
                  suppressions=_collect_suppressions(source))
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                ctx.parents[child] = parent
        return ctx

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    def is_suppressed(self, rule_id: str, line: Optional[int]) -> bool:
        return line is not None and rule_id in self.suppressions.get(line, set())


def _collect_suppressions(source: str) -> Dict[int, Set[str]]:
    out: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match:
                ids = {part.strip() for part in match.group(1).split(",")}
                out.setdefault(tok.start[0], set()).update(ids)
    except tokenize.TokenizeError:
        pass  # unparseable files are reported by ModuleContext.parse
    return out


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------

_R = DEFAULT_REGISTRY


@_R.rule(
    "SL201", "persistence-outside-atomicio", "error", "self",
    "Raw write persistence must go through repro.atomicio (atomic temp+rename).",
)
def check_persistence(rule: Rule, ctx: ModuleContext) -> Iterable[Finding]:
    """SL201: raw write persistence is only allowed inside repro.atomicio."""
    if ctx.rel_path == _ATOMICIO_MODULE:
        return  # the one module implementing the discipline
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            if _is_write_mode(_call_mode(node, is_method=False)):
                yield rule.finding(
                    "builtin open() in write mode; use repro.atomicio",
                    path=ctx.rel_path, line=node.lineno,
                )
        elif isinstance(func, ast.Attribute):
            if func.attr == "open" and _is_write_mode(_call_mode(node, is_method=True)):
                yield rule.finding(
                    ".open() in write mode; use repro.atomicio",
                    path=ctx.rel_path, line=node.lineno,
                )
            elif func.attr in ("write_text", "write_bytes"):
                yield rule.finding(
                    f".{func.attr}() is a non-atomic write; use repro.atomicio",
                    path=ctx.rel_path, line=node.lineno,
                )
            else:
                dotted = _dotted_name(func)
                if dotted in ("os.replace", "os.rename", "shutil.move"):
                    yield rule.finding(
                        f"{dotted}() outside repro.atomicio bypasses the "
                        "temp-file/fsync discipline",
                        path=ctx.rel_path, line=node.lineno,
                    )


@_R.rule(
    "SL202", "nondeterminism-in-simulator", "error", "self",
    "The simulator must be seed-deterministic: no wall clocks, no unseeded RNGs.",
)
def check_simulator_determinism(rule: Rule, ctx: ModuleContext) -> Iterable[Finding]:
    """SL202: simulator modules must not read wall clocks or unseeded RNGs."""
    if not ctx.rel_path.startswith("simulator/"):
        return
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_name(node.func) or ""
        leaf = dotted.rsplit(".", 1)[-1]
        message: Optional[str] = None
        if dotted in ("time.time", "time.time_ns", "time.perf_counter",
                      "time.monotonic"):
            message = f"{dotted}() reads the wall clock; use SimClock"
        elif leaf in ("now", "utcnow", "today") and "datetime" in dotted:
            message = f"{dotted}() reads the wall clock; use SimClock"
        elif leaf in ("default_rng", "Random", "RandomState") and not (
            node.args or node.keywords
        ):
            message = f"{dotted}() without a seed is nondeterministic"
        elif dotted.startswith(("np.random.", "numpy.random.")) and (
            leaf in _NP_GLOBAL_SAMPLERS or leaf == "seed"
        ):
            message = (
                f"{dotted}() uses numpy's global RNG state; pass an explicit "
                "np.random.default_rng(seed)"
            )
        elif dotted.startswith("random.") and dotted.count(".") == 1 and leaf != "Random":
            message = (
                f"{dotted}() uses the global random module state; use a "
                "seeded random.Random instance"
            )
        if message is not None:
            yield rule.finding(message, path=ctx.rel_path, line=node.lineno)


@_R.rule(
    "SL203", "bare-except", "warning", "self",
    "Bare `except:` swallows KeyboardInterrupt/SystemExit and masks bugs.",
)
def check_bare_except(rule: Rule, ctx: ModuleContext) -> Iterable[Finding]:
    """SL203: no bare `except:` clauses."""
    for node in ctx.walk():
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield rule.finding(
                "bare `except:`; catch a specific exception type",
                path=ctx.rel_path, line=node.lineno,
            )


@_R.rule(
    "SL204", "foreign-exception-raise", "error", "self",
    "A subsystem's exception types may only be raised by that subsystem.",
)
def check_exception_ownership(rule: Rule, ctx: ModuleContext) -> Iterable[Finding]:
    """SL204: exceptions may only be raised by their owning subsystem."""
    for node in ctx.walk():
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = exc.id if isinstance(exc, ast.Name) else None
        if name is None or name not in _EXCEPTION_OWNERS:
            continue
        owners = _EXCEPTION_OWNERS[name]
        if not any(
            ctx.rel_path == owner or (owner.endswith("/") and ctx.rel_path.startswith(owner))
            for owner in owners
        ):
            yield rule.finding(
                f"{name} belongs to {owners[0]!r}; raising it here leaks a "
                "foreign subsystem's failure vocabulary",
                path=ctx.rel_path, line=node.lineno, element=name,
            )


#: Parent node types through which an opened handle safely escapes the
#: expression (someone holds a reference and can close it).
_SAFE_HANDLE_PARENTS = (
    ast.withitem, ast.Assign, ast.AnnAssign, ast.AugAssign,
    ast.NamedExpr, ast.Return, ast.Yield, ast.YieldFrom,
)


@_R.rule(
    "SL205", "leaked-file-handle", "warning", "self",
    "A file handle opened without `with` and consumed inline is never closed.",
)
def check_leaked_handles(rule: Rule, ctx: ModuleContext) -> Iterable[Finding]:
    """SL205: opened file handles must be held (with/assign/return), not leaked."""
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_open = (isinstance(func, ast.Name) and func.id == "open") or (
            isinstance(func, ast.Attribute) and func.attr == "open"
        )
        if not is_open:
            continue
        parent = ctx.parent(node)
        if isinstance(parent, _SAFE_HANDLE_PARENTS):
            continue
        yield rule.finding(
            "open() result consumed inline; the handle is never closed — "
            "use a `with` block",
            path=ctx.rel_path, line=node.lineno,
        )


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------

def default_source_root() -> Path:
    """The installed :mod:`repro` package directory (the self-lint target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def iter_source_files(root: Path) -> Iterator[Tuple[Path, str]]:
    """Yield ``(absolute path, package-relative POSIX path)`` for the tree."""
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path, path.relative_to(root).as_posix()


def lint_source(
    source_root: Optional[Any] = None,
    registry: RuleRegistry = DEFAULT_REGISTRY,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run the self-lint family over a source tree (default: this package)."""
    root = Path(source_root) if source_root is not None else default_source_root()
    if not root.is_dir():
        raise LintError(f"source root does not exist: {root}")
    rules = registry.select("self", select=select, ignore=ignore)
    findings: List[Finding] = []
    suppressed = 0
    for path, rel_path in iter_source_files(root):
        ctx = ModuleContext.parse(path, rel_path)
        for rule in rules:
            for finding in rule.check(rule, ctx):
                if ctx.is_suppressed(finding.rule_id, finding.line):
                    suppressed += 1
                else:
                    findings.append(finding)
    return LintReport(
        findings=findings,
        checked_rules=[r.rule_id for r in rules],
        target=str(root),
        suppressed=suppressed,
    )
