"""Fleet lint rules (``PL11x``, family ``fleet``): job-fleet root audits.

A fleet deployment leaves an on-disk footprint the linter can audit
without a live scheduler: the crc-checked ``queue.wal`` (every durable
job transition) and one workflow state directory per job under
``jobs/``.  Three kinds of operational rot hide there:

* **expired-unreclaimed leases** (PL116) — a job is journaled as leased
  but its lease expired long ago and no one reclaimed it: the fleet has
  stopped polling (dead scheduler, no workers), so the job is stuck in
  limbo that neither retries nor dead-letters it;
* **orphaned job state dirs** (PL117) — a ``jobs/<id>`` workflow
  directory with no corresponding queue record: a purge that crashed
  between the WAL append and the directory removal, or a WAL that was
  reset underneath live state — either way disk the fleet will never
  reclaim;
* **stale dead-letter entries** (PL118) — a quarantined job nobody has
  requeued or purged past the triage threshold: the DLQ is an inbox,
  not a graveyard, and unbounded quarantine hides real poison-job bugs.

The family runs offline over a fleet root (like the ``cluster`` family
runs over a manifest) and never needs the scheduler to be up: the WAL
fold is the same :func:`~repro.fleet.queue.replay_queue` a restarted
scheduler uses, so the linter sees exactly the state a restart would.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, List, Optional

from repro.errors import LintError
from repro.fleet.manager import JOBS_DIR_NAME
from repro.fleet.queue import FLEET_QUEUE_NAME, JobState, replay_queue
from repro.lint.engine import (
    DEFAULT_REGISTRY,
    Finding,
    LintReport,
    Rule,
    RuleRegistry,
    Severity,
)

__all__ = ["FleetRootContext", "lint_fleet_root"]

_R = DEFAULT_REGISTRY

#: Default triage deadline for dead-lettered jobs (one hour).
DEFAULT_DLQ_STALE_AFTER_S = 3600.0

#: Grace period after lease expiry before PL116 calls the fleet stalled —
#: a healthy scheduler reclaims on the next worker poll, well within this.
DEFAULT_LEASE_GRACE_S = 60.0


@dataclass
class FleetRootContext:
    """One fleet root's folded WAL state plus its ``jobs/`` inventory.

    A missing or unreadable WAL leaves ``error`` set; the first rule
    reports it and the rest stay silent — auditing a broken fleet must
    describe the breakage, not crash on it.  ``now`` is injectable so
    checked-in fixtures with fixed timestamps lint deterministically.
    """

    root: Path
    now: Optional[float] = None
    dlq_stale_after_s: float = DEFAULT_DLQ_STALE_AFTER_S
    lease_grace_s: float = DEFAULT_LEASE_GRACE_S
    error: Optional[str] = None
    bad_records: int = 0
    jobs: dict = field(default_factory=dict)
    #: job-id-named directories found under ``jobs/``
    state_dirs: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.now is None:
            self.now = _time.time()
        wal = self.root / FLEET_QUEUE_NAME
        if not wal.is_file():
            self.error = f"no {FLEET_QUEUE_NAME} under {self.root}"
        else:
            try:
                state, self.bad_records = replay_queue(wal)
            except OSError as exc:
                self.error = f"unreadable {FLEET_QUEUE_NAME}: {exc}"
            else:
                self.jobs = state.jobs
        state_root = self.root / JOBS_DIR_NAME
        if state_root.is_dir():
            self.state_dirs = sorted(
                p.name for p in state_root.iterdir() if p.is_dir())


@_R.rule(
    "PL116", "expired-unreclaimed-lease", "warning", "fleet",
    "A leased job's lease expired past the grace period and was never "
    "reclaimed: nothing is polling this fleet, so the job is stuck.",
)
def check_expired_unreclaimed(
    rule: Rule, ctx: FleetRootContext
) -> Iterable[Finding]:
    """PL116: expired leases must be reclaimed within the grace period.

    Reclaim happens on every worker lease poll, so an expired lease that
    outlives the grace period means the whole control loop is down —
    the job will neither finish, retry, nor dead-letter until something
    polls again.  Torn WAL tails are reported here too: they are the
    scheduler-killed-mid-append signature, harmless once (the next
    startup compacts them away) but worth an operator's glance.
    """
    if ctx.error is not None:
        yield rule.finding(
            f"fleet root is unreadable: {ctx.error}",
            path=str(ctx.root),
            severity=Severity.ERROR,
        )
        return
    if ctx.bad_records:
        yield rule.finding(
            f"{FLEET_QUEUE_NAME} carries {ctx.bad_records} torn record(s) "
            "(scheduler killed mid-append); the next scheduler startup "
            "compacts them away",
            path=FLEET_QUEUE_NAME,
        )
    for job_id, job in sorted(ctx.jobs.items()):
        if job.state is not JobState.LEASED:
            continue
        overdue = ctx.now - job.lease_expires
        if overdue > ctx.lease_grace_s:
            yield rule.finding(
                f"job {job_id!r} lease (worker {job.worker!r}, attempt "
                f"{job.attempts}) expired {overdue:.0f}s ago and was never "
                "reclaimed; no scheduler or worker is polling this fleet",
                path=FLEET_QUEUE_NAME,
                element=job_id,
            )


@_R.rule(
    "PL117", "orphaned-job-state-dir", "warning", "fleet",
    "A jobs/<id> workflow state directory has no corresponding queue "
    "record: disk the fleet will never reclaim.",
)
def check_orphaned_state_dirs(
    rule: Rule, ctx: FleetRootContext
) -> Iterable[Finding]:
    """PL117: every ``jobs/<id>`` directory must match a queue record.

    The manager removes a job's state dir when the job is purged; a
    directory that outlives its queue record means the purge crashed
    between the WAL append and the removal, or the WAL was reset under
    live state.  Either way the workflow journal inside will never be
    resumed or cleaned up.
    """
    if ctx.error is not None:
        return
    for name in ctx.state_dirs:
        if name not in ctx.jobs:
            yield rule.finding(
                f"state directory {JOBS_DIR_NAME}/{name} has no queue "
                "record; its workflow journal will never be resumed — "
                "remove it or restore the matching WAL",
                path=f"{JOBS_DIR_NAME}/{name}",
                element=name,
            )


@_R.rule(
    "PL118", "stale-dead-letter", "error", "fleet",
    "A dead-lettered job has sat in quarantine past the triage deadline: "
    "requeue it after fixing the cause, or purge it.",
)
def check_stale_dead_letters(
    rule: Rule, ctx: FleetRootContext
) -> Iterable[Finding]:
    """PL118: the DLQ is an inbox, not a graveyard.

    Every quarantined job encodes a real failure (a poison spec, a
    crash-looping task); leaving it past the threshold means nobody is
    triaging those failures.  ``yprov jobs retry`` requeues a fixed job,
    ``yprov jobs purge`` retires an abandoned one.
    """
    if ctx.error is not None:
        return
    for job_id, job in sorted(ctx.jobs.items()):
        if job.state is not JobState.DEAD_LETTERED:
            continue
        quarantined_at = job.dead_at if job.dead_at is not None else 0.0
        age = ctx.now - quarantined_at
        if age > ctx.dlq_stale_after_s:
            reason = f" ({job.dead_reason})" if job.dead_reason else ""
            yield rule.finding(
                f"job {job_id!r} has been dead-lettered for {age:.0f}s"
                f"{reason}; requeue it with 'yprov jobs retry' or drop it "
                "with 'yprov jobs purge'",
                path=FLEET_QUEUE_NAME,
                element=job_id,
            )


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------

def lint_fleet_root(
    root: Any,
    registry: RuleRegistry = DEFAULT_REGISTRY,
    select: Optional[List[str]] = None,
    ignore: Optional[List[str]] = None,
    now: Optional[float] = None,
    dlq_stale_after_s: float = DEFAULT_DLQ_STALE_AFTER_S,
    lease_grace_s: float = DEFAULT_LEASE_GRACE_S,
) -> LintReport:
    """Run the fleet rule family over one fleet state directory."""
    root = Path(root)
    if not root.is_dir():
        raise LintError(f"fleet root does not exist: {root}")
    ctx = FleetRootContext(
        root=root,
        now=now,
        dlq_stale_after_s=dlq_stale_after_s,
        lease_grace_s=lease_grace_s,
    )
    rules = registry.select("fleet", select=select, ignore=ignore)
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(rule, ctx))
    return LintReport(
        findings=findings,
        checked_rules=[r.rule_id for r in rules],
        target=str(root),
    )
