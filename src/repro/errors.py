"""Typed exception hierarchy for the :mod:`repro` package.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ProvError(ReproError):
    """Base class for errors in the W3C PROV substrate."""


class InvalidQualifiedNameError(ProvError):
    """A qualified name or namespace declaration is malformed."""


class UnknownNamespaceError(ProvError):
    """A prefix was used without a corresponding namespace declaration."""


class SerializationError(ProvError):
    """A PROV document could not be serialized or deserialized."""


class ValidationError(ProvError):
    """A PROV document violates a PROV-CONSTRAINTS check."""


class DuplicateRecordError(ProvError):
    """Two records with the same identifier but conflicting content."""


class TrackingError(ReproError):
    """Base class for errors in the core tracking library (yProv4ML layer)."""


class NoActiveRunError(TrackingError):
    """A logging call was made outside of an active run."""


class RunAlreadyActiveError(TrackingError):
    """``start_run`` was called while another run is active."""


class UnknownContextError(TrackingError):
    """A metric/artifact referenced a context that was never registered."""


class ArtifactError(TrackingError):
    """An artifact path is missing or could not be registered."""


class StorageError(ReproError):
    """Base class for metric-storage backend failures."""


class CodecError(StorageError):
    """A compression codec failed to encode or decode a payload."""


class StoreFormatError(StorageError):
    """A persisted store file/directory is corrupt or has a bad version."""


class CrateError(ReproError):
    """RO-Crate packaging or validation failure."""


class GraphDBError(ReproError):
    """Base class for the embedded property-graph database."""


class NodeNotFoundError(GraphDBError):
    """A node id was not present in the graph store."""


class ConstraintViolationError(GraphDBError):
    """A uniqueness or schema constraint was violated."""


class ServiceError(ReproError):
    """Provenance service (yProv analogue) failure."""


class DocumentNotFoundError(ServiceError):
    """The requested provenance document does not exist."""


class HandleError(ServiceError):
    """Handle-system resolution failure."""


class TransportError(ServiceError):
    """Client-side transport failure talking to the provenance service.

    ``status`` carries the HTTP status when the failure was an HTTP error
    response (``None`` for network-level failures); ``retry_after_s``
    carries a server-requested backoff (parsed from ``Retry-After``) that
    the retry machinery honors as a lower bound on the next delay.
    """

    def __init__(self, message: str, status=None, retry_after_s=None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


class CircuitOpenError(ServiceError):
    """The client's circuit breaker is open; the call was refused locally.

    Deliberately *not* a :class:`TransportError`: retry loops retry
    transport failures, but an open breaker means "stop calling", so it
    must escape them immediately.
    """

    def __init__(self, message: str, retry_in_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_in_s = retry_in_s


class SpoolError(ServiceError):
    """Store-and-forward spool failure (full spool, corrupt entry, ...)."""


class SegmentError(ServiceError):
    """Segment-store failure (corrupt segment, bad footer, compaction)."""


class IngestError(ServiceError):
    """Batch ingest failure (corrupt batch frame, malformed batch record)."""


class ClusterError(ServiceError):
    """Replicated shard cluster failure (router, membership, rebalancing)."""


class QuorumError(ClusterError):
    """A write could not reach its quorum of replica acknowledgements.

    The document is **not** acked: callers must treat it exactly like a
    transport failure (retry, or park it in the spool).  ``acked`` carries
    how many replicas did acknowledge, ``needed`` the quorum that was
    required.
    """

    def __init__(self, message: str, acked: int = 0, needed: int = 0) -> None:
        super().__init__(message)
        self.acked = acked
        self.needed = needed


class PartialResultError(ClusterError):
    """A scatter-gather query lost coverage of part of the key space.

    Raised instead of returning silently incomplete rows: every replica of
    at least one shard range failed, so the merged answer would be missing
    documents.  ``failed_shards`` names the unreachable shard ids.
    """

    def __init__(self, message: str, failed_shards=()) -> None:
        super().__init__(message)
        self.failed_shards = tuple(failed_shards)


class ShardDepartedError(ClusterError):
    """A shard left the cluster while a request still referenced it.

    Raised by the router's request path when a ring walk taken before a
    membership change reaches a shard that has since been removed.  The
    router treats it exactly like an unreachable shard: fail over to the
    next copy.
    """


class WorkflowError(ReproError):
    """Workflow DAG construction or execution failure."""


class CycleError(WorkflowError):
    """The task graph contains a cycle."""


class WorkflowJournalError(WorkflowError):
    """The workflow write-ahead journal could not be written or parsed."""


class TaskCancelledError(WorkflowError):
    """Cooperative cancellation: the supervisor asked this attempt to stop.

    Raised *inside* a task function by :meth:`TaskContext.check_cancelled`
    / :meth:`TaskContext.sleep` once the attempt's deadline has passed (or
    the run is shutting down), so a well-behaved long task unwinds instead
    of running to completion after its result can no longer be used.
    """


class FleetError(ReproError):
    """Base class for the job fleet (queue, scheduler, workers)."""


class JobNotFoundError(FleetError):
    """The referenced job id is not present in the fleet queue."""


class QueueFullError(FleetError):
    """Admission control refused a submission (queue or tenant cap hit).

    Maps to HTTP 429 on the REST surface; ``retry_after_s`` carries the
    suggested backoff the server advertises via ``Retry-After``.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class LeaseExpiredError(FleetError):
    """A worker acted on a lease it no longer holds.

    Raised on ``renew``/``complete``/``fail`` when the lease expired and
    was reclaimed (possibly re-leased to another worker).  The holder must
    abandon the attempt: its result can no longer be accepted, which is
    the fencing that prevents a suspected-then-revived worker from
    double-reporting a job.
    """


class JobStateError(FleetError):
    """An operation is invalid for the job's current lifecycle state."""


class SimulationError(ReproError):
    """Base class for distributed-training-simulator failures."""


class ClusterConfigError(SimulationError):
    """Invalid cluster topology or device inventory."""


class CommError(SimulationError):
    """Simulated communicator misuse (rank mismatch, shape mismatch, ...)."""


class WalltimeExceededError(SimulationError):
    """A simulated job hit its walltime limit.

    Raised only when a caller asks for strict behaviour; the training loop
    normally records the truncation in the run result instead.
    """


class AnalysisError(ReproError):
    """Analysis-layer failure (scaling estimation, forecasting, ...)."""


class InsufficientHistoryError(AnalysisError):
    """A knowledge-base query had too few matching runs to estimate from."""


class JournalError(TrackingError):
    """The write-ahead journal could not be written or parsed."""


class RecoveryError(TrackingError):
    """A dead run's journal could not be replayed into provenance."""


class ChecksumError(StoreFormatError):
    """A persisted chunk failed its integrity checksum (torn/corrupt write)."""


class LintError(ReproError):
    """Static-analysis engine failure (bad rule, bad baseline, bad target)."""


class QueryError(ReproError):
    """Base class for the PROVQL query engine (:mod:`repro.query`)."""


class QuerySyntaxError(QueryError):
    """A PROVQL query failed to tokenize or parse."""


class PlanError(QueryError):
    """A parsed PROVQL query could not be planned or executed."""
