"""repro — reproduction of "Provenance Tracking in Large-Scale ML Systems".

The package reimplements the yProv4ML library and its surrounding yProv
ecosystem (ICPP 2025).  The most common entry point is the MLflow-style
session API re-exported here::

    import repro as prov4ml

    prov4ml.start_run(experiment_name="demo", provenance_save_dir="prov")
    prov4ml.log_param("lr", 1e-3)
    prov4ml.log_metric("loss", 0.42, context=prov4ml.Context.TRAINING)
    prov4ml.end_run(create_graph=True)

Subpackages:

* :mod:`repro.prov` — W3C PROV data model + PROV-JSON/PROV-N.
* :mod:`repro.core` — experiment/run tracking (the paper's contribution).
* :mod:`repro.storage` — metric offloading backends (Table 1).
* :mod:`repro.crate` — RO-Crate packaging (Table 2).
* :mod:`repro.yprov` — provenance service, graph DB, handles, Explorer, CLI.
* :mod:`repro.workflow` — minimal WFMS + workflow-level provenance.
* :mod:`repro.simulator` — distributed-training simulator (use case, Fig. 3).
* :mod:`repro.analysis` — scaling estimation, forecasting, trade-offs.
"""

__version__ = "1.0.0"

from repro.core.context import Context
from repro.core.experiment import Experiment, RunExecution, RunStatus
from repro.core.session import (
    abort_run,
    active_run,
    capture_output,
    end_epoch,
    end_run,
    has_active_run,
    log_artifact,
    log_execution_command,
    log_input,
    log_metric,
    log_metric_array,
    log_metrics,
    log_model,
    log_output,
    log_param,
    log_params,
    log_system_metrics,
    register_collector,
    start_epoch,
    start_run,
)

__all__ = [
    "__version__",
    "Context",
    "Experiment",
    "RunExecution",
    "RunStatus",
    "start_run",
    "end_run",
    "abort_run",
    "active_run",
    "has_active_run",
    "log_param",
    "log_params",
    "log_metric",
    "log_metrics",
    "log_metric_array",
    "log_artifact",
    "log_input",
    "log_output",
    "log_model",
    "start_epoch",
    "end_epoch",
    "log_execution_command",
    "capture_output",
    "log_system_metrics",
    "register_collector",
]
