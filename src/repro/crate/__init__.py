"""RO-Crate packaging (Table 2).

The latest yProv4ML "allow[s] to create a wrapper around the artifact
directory using RO-Crates, which guarantees self-describing capability when
having to share a single experiment".  This package implements the RO-Crate
1.1 structure (a ``ro-crate-metadata.json`` JSON-LD descriptor over a
directory of files), crate validation, and the programmatic W3C PROV vs
RO-Crate capability probe behind the Table 2 benchmark.
"""

from repro.crate.rocrate import ROCrate, create_run_crate
from repro.crate.validate import validate_crate, CrateReport
from repro.crate.standards import feature_matrix, format_feature_table

__all__ = [
    "ROCrate",
    "create_run_crate",
    "validate_crate",
    "CrateReport",
    "feature_matrix",
    "format_feature_table",
]
