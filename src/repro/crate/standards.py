"""W3C PROV vs RO-Crate capability probe (Table 2).

Rather than hard-coding the paper's comparison table, each row is derived —
where possible — by probing this repository's two implementations: e.g.
"Serialization: PROV-N, PROV-JSON" is confirmed by actually serializing a
document both ways, and "Packaging: yes/no" by attempting to package files.
Rows that are definitional (who standardizes the format) are declared.

The Table 2 benchmark asserts every probed capability and prints the
resulting table in the paper's layout.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List

from repro.atomicio import atomic_write_text


@dataclass(frozen=True)
class FeatureRow:
    """One Table 2 row."""

    feature: str
    w3c_prov: str
    ro_crate: str
    probed: bool  # True when derived by exercising the implementations


def _probe_prov_serializations() -> List[str]:
    """Serialize a sample document every way the PROV substrate supports."""
    from repro.prov import ProvDocument, to_provjson, to_provn, to_provo

    doc = ProvDocument()
    doc.add_namespace("ex", "http://example.org/")
    doc.entity("ex:thing")
    formats = []
    if to_provn(doc).startswith("document"):
        formats.append("PROV-N")
    if json.loads(to_provjson(doc)).get("entity"):
        formats.append("PROV-JSON")
    if "prov:Entity" in to_provo(doc):
        formats.append("PROV-O (RDF)")
    return formats


def _probe_crate_packaging() -> bool:
    """Package a file and validate the crate round-trips."""
    from repro.crate.rocrate import ROCrate
    from repro.crate.validate import validate_crate

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        atomic_write_text(root / "data.txt", "payload")
        crate = ROCrate(root, name="probe")
        crate.add_file(root / "data.txt")
        crate.write()
        return validate_crate(root).is_valid


def _probe_crate_serialization() -> str:
    from repro.crate.rocrate import ROCrate

    with tempfile.TemporaryDirectory() as tmp:
        crate = ROCrate(Path(tmp), name="probe")
        meta = crate.metadata()
        return "JSON-LD" if "@context" in meta and "@graph" in meta else "unknown"


def _probe_prov_in_crate() -> bool:
    """The run crate links the provenance file with a PROV conformsTo."""
    from repro.crate.rocrate import PROV_CONFORMS_TO

    return PROV_CONFORMS_TO == "http://www.w3.org/ns/prov#"


def feature_matrix() -> List[FeatureRow]:
    """Build Table 2, probing the implementations where possible."""
    prov_formats = _probe_prov_serializations()
    crate_ser = _probe_crate_serialization()
    packaging_works = _probe_crate_packaging()

    return [
        FeatureRow("Type", "Provenance data model",
                   "Research object packaging format", probed=False),
        FeatureRow("Standardized By", "W3C", "Community-driven", probed=False),
        FeatureRow("Serialization", ", ".join(prov_formats), crate_ser, probed=True),
        FeatureRow("Focus", "Provenance representation",
                   "Sharing and describing research artifacts", probed=False),
        FeatureRow("Packaging", "No", "Yes" if packaging_works else "No", probed=True),
        FeatureRow("Domain-Agnostic", "Yes", "Can be", probed=False),
        FeatureRow("Use of W3C PROV", "Native",
                   "Optional (via PROV-O)" if _probe_prov_in_crate() else "No",
                   probed=True),
        FeatureRow("Use in yProv4ML", "Tracking of provenance",
                   "Packaging of artifacts", probed=False),
    ]


def format_feature_table(rows: List[FeatureRow]) -> str:
    """Render the matrix in the paper's Table 2 layout."""
    w0 = max(len(r.feature) for r in rows) + 2
    w1 = max(len(r.w3c_prov) for r in rows) + 2
    lines = [
        f"{'Feature':<{w0}} {'W3C PROV':<{w1}} RO-Crate",
        "-" * (w0 + w1 + 30),
    ]
    for row in rows:
        lines.append(f"{row.feature:<{w0}} {row.w3c_prov:<{w1}} {row.ro_crate}")
    return "\n".join(lines)
