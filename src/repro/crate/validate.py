"""RO-Crate validation.

Checks the structural requirements of RO-Crate 1.1 that matter for
round-tripping shared experiments:

* the metadata descriptor exists, is JSON-LD with the right ``@context``;
* the ``@graph`` contains the descriptor and the root data entity;
* every ``hasPart`` reference resolves to a described entity;
* every described file exists on disk with matching size and SHA-256.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.core.artifacts import sha256_file
from repro.crate.rocrate import METADATA_FILENAME, RO_CRATE_CONTEXT
from repro.errors import CrateError


@dataclass
class CrateReport:
    """Validation outcome."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    n_files: int = 0

    @property
    def is_valid(self) -> bool:
        return not self.errors

    def raise_if_invalid(self) -> None:
        if self.errors:
            raise CrateError("; ".join(self.errors))


def validate_crate(root_dir: Union[str, Path], check_hashes: bool = True) -> CrateReport:
    """Validate the crate at *root_dir*; see module docstring for checks."""
    root_dir = Path(root_dir)
    report = CrateReport()
    meta_path = root_dir / METADATA_FILENAME

    if not meta_path.is_file():
        report.errors.append(f"missing {METADATA_FILENAME}")
        return report
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        report.errors.append(f"metadata is not valid JSON: {exc}")
        return report

    if meta.get("@context") != RO_CRATE_CONTEXT:
        report.errors.append(f"unexpected @context: {meta.get('@context')!r}")
    graph = meta.get("@graph")
    if not isinstance(graph, list) or not graph:
        report.errors.append("@graph missing or empty")
        return report

    by_id: Dict[str, Dict[str, Any]] = {}
    for entity in graph:
        if not isinstance(entity, dict) or "@id" not in entity:
            report.errors.append(f"graph entity without @id: {entity!r}")
            continue
        if entity["@id"] in by_id:
            report.errors.append(f"duplicate entity id: {entity['@id']!r}")
        by_id[entity["@id"]] = entity

    descriptor = by_id.get(METADATA_FILENAME)
    if descriptor is None:
        report.errors.append("metadata descriptor entity missing")
    else:
        about = descriptor.get("about", {})
        if about.get("@id") != "./":
            report.errors.append("descriptor 'about' must reference the root './'")

    root = by_id.get("./")
    if root is None:
        report.errors.append("root data entity './' missing")
        return report
    if "Dataset" not in (root.get("@type") if isinstance(root.get("@type"), list) else [root.get("@type")]):
        report.errors.append("root data entity must be a Dataset")

    parts = root.get("hasPart", [])
    for ref in parts:
        part_id = ref.get("@id") if isinstance(ref, dict) else None
        if part_id is None:
            report.errors.append(f"malformed hasPart reference: {ref!r}")
            continue
        entity = by_id.get(part_id)
        if entity is None:
            report.errors.append(f"hasPart references undescribed entity: {part_id!r}")
            continue
        path = root_dir / part_id
        if not path.is_file():
            report.errors.append(f"crate file missing on disk: {part_id}")
            continue
        report.n_files += 1
        size = entity.get("contentSize")
        if size is not None and path.stat().st_size != size:
            report.errors.append(
                f"size mismatch for {part_id}: metadata {size}, disk {path.stat().st_size}"
            )
        if check_hashes:
            declared = entity.get("sha256")
            if declared and sha256_file(path) != declared:
                report.errors.append(f"sha256 mismatch for {part_id}")

    # files present but undeclared are only a warning (crate may be partial)
    declared_ids = {ref.get("@id") for ref in parts if isinstance(ref, dict)}
    for path in sorted(root_dir.rglob("*")):
        if path.is_file() and path.name != METADATA_FILENAME:
            rel = str(path.relative_to(root_dir))
            if rel not in declared_ids:
                report.warnings.append(f"file not declared in crate: {rel}")

    return report
