"""RO-Crate writer.

An RO-Crate is a directory with a ``ro-crate-metadata.json`` JSON-LD file
describing the directory ("root data entity") and every packaged file
("data entities"), per the RO-Crate 1.1 specification.  The crate produced
for a run packages the artifact directory plus the PROV-JSON provenance
file, linking the two: the provenance file is typed ``CreativeWork`` with
``conformsTo`` pointing at W3C PROV — the "Use of W3C PROV: optional" row
of Table 2.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.artifacts import sha256_file
from repro.errors import CrateError

PathLike = Union[str, Path]

METADATA_FILENAME = "ro-crate-metadata.json"
RO_CRATE_CONTEXT = "https://w3id.org/ro/crate/1.1/context"
PROV_CONFORMS_TO = "http://www.w3.org/ns/prov#"

_MIME_BY_SUFFIX = {
    ".json": "application/json",
    ".txt": "text/plain",
    ".csv": "text/csv",
    ".bin": "application/octet-stream",
    ".nc": "application/x-netcdf",
    ".dot": "text/vnd.graphviz",
}


def _mime(path: Path) -> str:
    return _MIME_BY_SUFFIX.get(path.suffix.lower(), "application/octet-stream")


@dataclass
class ROCrate:
    """In-memory crate model; :meth:`write` materializes the metadata file."""

    root_dir: Path
    name: str = "experiment crate"
    description: str = ""
    license: str = "https://creativecommons.org/licenses/by/4.0/"
    author: Optional[str] = None
    entities: List[Dict[str, Any]] = field(default_factory=list)
    _file_ids: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.root_dir = Path(self.root_dir)
        if not self.root_dir.is_dir():
            raise CrateError(f"crate root is not a directory: {self.root_dir}")

    def add_file(
        self,
        path: PathLike,
        description: str = "",
        conforms_to: Optional[str] = None,
        entity_type: str = "File",
    ) -> Dict[str, Any]:
        """Register a file (must live inside the crate root)."""
        path = Path(path)
        try:
            rel = path.resolve().relative_to(self.root_dir.resolve())
        except ValueError:
            raise CrateError(
                f"file {path} is outside the crate root {self.root_dir}"
            ) from None
        if not path.is_file():
            raise CrateError(f"crate file not found: {path}")
        entity: Dict[str, Any] = {
            "@id": str(rel),
            "@type": entity_type,
            "name": rel.name,
            "contentSize": path.stat().st_size,
            "encodingFormat": _mime(path),
            "sha256": sha256_file(path),
        }
        if description:
            entity["description"] = description
        if conforms_to:
            entity["conformsTo"] = {"@id": conforms_to}
        self.entities.append(entity)
        self._file_ids.append(str(rel))
        return entity

    def add_directory_tree(self, subdir: Optional[PathLike] = None) -> int:
        """Register every file under *subdir* (default: whole root); returns count."""
        base = Path(subdir) if subdir is not None else self.root_dir
        count = 0
        for path in sorted(base.rglob("*")):
            if path.is_file() and path.name != METADATA_FILENAME:
                self.add_file(path)
                count += 1
        return count

    def metadata(self) -> Dict[str, Any]:
        """The JSON-LD document (deterministic ordering)."""
        root: Dict[str, Any] = {
            "@id": "./",
            "@type": "Dataset",
            "name": self.name,
            "description": self.description,
            "license": {"@id": self.license},
            "hasPart": [{"@id": fid} for fid in self._file_ids],
        }
        if self.author:
            root["author"] = {"@id": f"#{self.author}"}
        descriptor = {
            "@id": METADATA_FILENAME,
            "@type": "CreativeWork",
            "conformsTo": {"@id": "https://w3id.org/ro/crate/1.1"},
            "about": {"@id": "./"},
        }
        graph: List[Dict[str, Any]] = [descriptor, root]
        if self.author:
            graph.append({"@id": f"#{self.author}", "@type": "Person", "name": self.author})
        graph.extend(self.entities)
        return {"@context": RO_CRATE_CONTEXT, "@graph": graph}

    def write(self) -> Path:
        """Write ``ro-crate-metadata.json`` into the root; returns its path.

        The write is atomic: a crash mid-write cannot leave a torn
        descriptor that would invalidate the whole crate.
        """
        from repro.atomicio import atomic_write_text

        out = self.root_dir / METADATA_FILENAME
        atomic_write_text(out, json.dumps(self.metadata(), indent=2))
        return out


def create_run_crate(run: Any, prov_path: Path) -> Path:
    """Package a finished run's save directory as an RO-Crate.

    Wraps the artifact directory and the PROV-JSON file; the provenance
    file entity declares conformance to W3C PROV.
    """
    crate = ROCrate(
        root_dir=run.save_dir,
        name=f"run {run.run_id}",
        description=f"provenance crate for experiment {run.experiment_name}",
        author=run.username,
    )
    prov_path = Path(prov_path)
    crate.add_file(
        prov_path,
        description="W3C PROV-JSON provenance of the run",
        conforms_to=PROV_CONFORMS_TO,
    )
    for artifact in run.artifacts:
        if artifact.path.resolve().is_relative_to(run.save_dir.resolve()):
            crate.add_file(artifact.path, description=f"artifact {artifact.name}")
    from repro.core.journal import JOURNAL_NAME

    # metric store and dev-tracking side files; the write-ahead journal is
    # transient (compacted away on a clean save) and never part of the crate
    for extra in sorted(run.save_dir.rglob("*")):
        if not extra.is_file() or extra.name in (METADATA_FILENAME, JOURNAL_NAME):
            continue
        rel = str(extra.resolve().relative_to(run.save_dir.resolve()))
        if rel not in crate._file_ids:
            crate.add_file(extra)
    return crate.write()
