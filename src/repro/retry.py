"""Seeded exponential backoff with jitter, shared by every retry path.

Immediate re-execution after a failure is the worst possible retry policy
on a busy shared service: all failed clients hammer the resource again in
lock-step.  The classical fix is exponential backoff with jitter.  Because
this library promises bit-reproducible runs, the jitter is *seeded*: the
same schedule is produced on every execution, so retried workflows remain
deterministic and the schedule itself can be asserted in tests.
"""

from __future__ import annotations

import random
import time as _time
import zlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Type

from repro.errors import ReproError


def seed_from_name(name: str) -> int:
    """Stable small seed derived from a task/document name (crc32)."""
    return zlib.crc32(name.encode("utf-8"))


@dataclass(frozen=True)
class ExponentialBackoff:
    """Delay schedule ``base · factor^i``, capped, with seeded jitter.

    ``jitter`` is the fractional spread: each delay is multiplied by a
    deterministic draw from ``[1, 1 + jitter]`` (so jitter never makes a
    retry *earlier* than the un-jittered schedule).
    """

    base_s: float = 0.1
    factor: float = 2.0
    max_s: float = 60.0
    jitter: float = 0.5
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.base_s < 0:
            raise ReproError(f"base_s must be non-negative, got {self.base_s}")
        if self.factor < 1.0:
            raise ReproError(f"factor must be >= 1, got {self.factor}")
        if self.jitter < 0:
            raise ReproError(f"jitter must be non-negative, got {self.jitter}")

    def delays(self, attempts: int) -> List[float]:
        """The first *attempts* delays of the schedule (deterministic)."""
        rng = random.Random(self.seed)
        out: List[float] = []
        for i in range(attempts):
            delay = min(self.base_s * self.factor**i, self.max_s)
            if self.jitter:
                delay *= 1.0 + self.jitter * rng.random()
            out.append(delay)
        return out

    def delay_for(self, attempt: int) -> float:
        """The delay after failed attempt *attempt* (1-indexed).

        Convenience for schedulers that price one retry at a time (the
        fleet queue prices each requeue as it journals it) — equivalent
        to ``delays(attempt)[-1]`` and just as deterministic.
        """
        if attempt < 1:
            raise ReproError(f"attempt must be >= 1, got {attempt}")
        return self.delays(attempt)[-1]

    def jitter_factors(self, attempts: int) -> List[float]:
        """Deterministic multipliers in ``[1, 1 + jitter]`` for server floors.

        When a server answers ``Retry-After: n`` it hands every rejected
        client the *same* floor, so honoring it verbatim reconvenes the
        whole herd on the recovering server n seconds later.  These factors
        spread the floor multiplicatively — each client (distinct seed)
        retries at ``n * factor`` — while never retrying *earlier* than the
        server asked.  Drawn from a stream independent of :meth:`delays`
        so adding a floor cannot shift the base schedule.
        """
        rng = random.Random(
            None if self.seed is None else self.seed ^ 0x5BD1E995
        )
        return [
            1.0 + (self.jitter * rng.random() if self.jitter else 0.0)
            for _ in range(attempts)
        ]


def retry_call(
    fn: Callable[[], object],
    retries: int = 3,
    backoff: Optional[ExponentialBackoff] = None,
    exceptions: Tuple[Type[BaseException], ...] = (OSError,),
    sleep: Optional[Callable[[float], None]] = None,
):
    """Call *fn*, retrying up to *retries* times on *exceptions*.

    Sleeps the backoff schedule between attempts (``time.sleep`` by
    default; injectable for tests and simulated time).  If a caught
    exception carries a ``retry_after_s`` attribute (e.g. a
    :class:`~repro.errors.TransportError` built from an HTTP 429 with a
    ``Retry-After`` header), that value is honored as a *lower bound* on
    the next delay — the server's request wins over the local schedule —
    multiplied by a seeded jitter factor (:meth:`ExponentialBackoff.
    jitter_factors`) so a fleet of rejected clients does not thundering-
    herd the recovering server at exactly the requested instant.
    The final failure is re-raised unchanged.
    """
    if retries < 0:
        raise ReproError(f"retries must be >= 0, got {retries}")
    backoff = backoff or ExponentialBackoff()
    sleep = sleep if sleep is not None else _time.sleep
    schedule = backoff.delays(retries)
    floor_factors = backoff.jitter_factors(retries)
    for attempt in range(retries + 1):
        try:
            return fn()
        except exceptions as exc:
            if attempt >= retries:
                raise
            delay = schedule[attempt]
            retry_after = getattr(exc, "retry_after_s", None)
            if retry_after is not None:
                delay = max(delay, float(retry_after) * floor_factors[attempt])
            if delay > 0:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
