"""Seeded TCP fault-injection proxy for the provenance service path.

Sits between a :class:`~repro.yprov.client.ProvenanceClient` and the REST
front-end and injects, per connection, the failure modes a job on a large
machine actually sees on the way to a shared service:

========== ==========================================================
fault      behaviour
========== ==========================================================
latency    hold the connection for ``latency_s`` before proxying
reset      close the client socket with ``SO_LINGER 0`` (TCP RST)
http_503   answer ``503 Service Unavailable`` + ``Retry-After``
           without contacting the upstream at all
truncate   proxy the request, then relay only half of the upstream's
           response bytes and reset — a torn response
blackhole  accept, swallow the request, never answer (the client's
           timeout fires); the socket is closed after ``blackhole_s``
accept_hang  accept the connection but never read a byte of it — a
           half-open connection.  Unlike ``blackhole`` the request is
           not even consumed, so the peer's *send* path may also stall
           on a large body.  This is the signature of a dying (not
           dead) shard: TCP connects fine, the process is wedged.  A
           failure detector that probes with plain TCP connects calls
           this shard healthy; one that demands an HTTP ``/health``
           answer within a deadline correctly marks it suspect.
========== ==========================================================

The schedule is **seeded**: connection *i* draws its fault from
``random.Random(seed)`` in arrival order, so a test re-running with the
same seed and a sequential client sees the identical fault sequence.
Fault counts are tallied in :attr:`ChaosProxy.fault_counts` so a suite
can assert that every mode actually fired.

Used by ``tests/integration/test_chaos_transport.py`` to prove the
client + spool never lose an acknowledged-or-spooled document under any
injected schedule.  Standard library only.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError

FAULT_KINDS = ("none", "latency", "reset", "http_503", "truncate",
               "blackhole", "accept_hang")

_RESPONSE_503 = (
    b"HTTP/1.1 503 Service Unavailable\r\n"
    b"Content-Type: application/json\r\n"
    b"Retry-After: %s\r\n"
    b"Content-Length: %d\r\n"
    b"Connection: close\r\n"
    b"\r\n%s"
)


@dataclass(frozen=True)
class ChaosConfig:
    """Per-connection fault probabilities (the rest of the mass is clean).

    Rates must sum to at most 1; ``latency_s`` also applies a small
    deterministic service delay to *clean* connections when
    ``base_latency_s`` is set, modelling a slow-but-healthy network.
    """

    latency_rate: float = 0.0
    reset_rate: float = 0.0
    http_503_rate: float = 0.0
    truncate_rate: float = 0.0
    blackhole_rate: float = 0.0
    accept_hang_rate: float = 0.0
    latency_s: float = 0.2
    blackhole_s: float = 30.0
    accept_hang_s: float = 30.0
    retry_after_s: float = 0.05
    base_latency_s: float = 0.0

    def __post_init__(self) -> None:
        total = (self.latency_rate + self.reset_rate + self.http_503_rate
                 + self.truncate_rate + self.blackhole_rate
                 + self.accept_hang_rate)
        if total > 1.0 + 1e-9:
            raise ReproError(f"fault rates sum to {total:.3f} > 1")
        for name in ("latency_rate", "reset_rate", "http_503_rate",
                     "truncate_rate", "blackhole_rate", "accept_hang_rate"):
            if getattr(self, name) < 0:
                raise ReproError(f"{name} must be >= 0")

    def draw(self, rng: random.Random) -> str:
        """One seeded fault decision."""
        x = rng.random()
        for name, rate in (
            ("latency", self.latency_rate),
            ("reset", self.reset_rate),
            ("http_503", self.http_503_rate),
            ("truncate", self.truncate_rate),
            ("blackhole", self.blackhole_rate),
            ("accept_hang", self.accept_hang_rate),
        ):
            if x < rate:
                return name
            x -= rate
        return "none"


def blackhole_config(blackhole_s: float = 30.0) -> ChaosConfig:
    """A schedule where *every* connection is swallowed (total outage)."""
    return ChaosConfig(blackhole_rate=1.0, blackhole_s=blackhole_s)


def accept_hang_config(accept_hang_s: float = 30.0) -> ChaosConfig:
    """A schedule where *every* connection is accepted, then left half-open."""
    return ChaosConfig(accept_hang_rate=1.0, accept_hang_s=accept_hang_s)


@dataclass
class _Stats:
    fault_counts: Dict[str, int] = field(
        default_factory=lambda: {kind: 0 for kind in FAULT_KINDS}
    )
    connections: int = 0


class ChaosProxy:
    """A live TCP proxy injecting a seeded fault schedule; context manager.

    ::

        with ChaosProxy("127.0.0.1", server.port, config, seed=7) as proxy:
            client = ProvenanceClient(proxy.url, timeout_s=0.5, ...)
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        config: Optional[ChaosConfig] = None,
        seed: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        api_prefix: str = "/api/v0",
    ) -> None:
        self.upstream = (upstream_host, int(upstream_port))
        self.config = config or ChaosConfig()
        self.api_prefix = api_prefix
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._stats = _Stats()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        # closing a socket does not wake a thread blocked in accept() on
        # Linux, so the accept loop polls with a short timeout instead
        self._listener.settimeout(0.1)
        self._accept_thread: Optional[threading.Thread] = None
        self._workers: List[threading.Thread] = []
        self._closing = threading.Event()
        self.schedule: List[str] = []  # fault drawn per connection, in order

    # -- lifecycle -------------------------------------------------------
    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    @property
    def url(self) -> str:
        host = self._listener.getsockname()[0]
        return f"http://{host}:{self.port}{self.api_prefix}"

    @property
    def fault_counts(self) -> Dict[str, int]:
        return dict(self._stats.fault_counts)

    @property
    def connections(self) -> int:
        return self._stats.connections

    def set_config(self, config: ChaosConfig) -> None:
        """Swap the fault schedule for subsequent connections (thread-safe).

        Lets a test change a live proxy's behaviour mid-run — e.g. flip a
        healthy shard's proxy to :func:`blackhole_config` to simulate that
        shard dying while a scatter-gather query is in flight.
        """
        with self._rng_lock:
            self.config = config

    def start(self) -> "ChaosProxy":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close the listener, and join worker threads."""
        if self._closing.is_set():
            return
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        for worker in self._workers:
            worker.join(timeout=1)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- connection handling ---------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                client_sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            with self._rng_lock:
                fault = self.config.draw(self._rng)
                self.schedule.append(fault)
                self._stats.connections += 1
                self._stats.fault_counts[fault] += 1
            worker = threading.Thread(
                target=self._handle, args=(client_sock, fault),
                name=f"chaos-proxy-{fault}", daemon=True,
            )
            worker.start()
            self._workers.append(worker)

    def _handle(self, client_sock: socket.socket, fault: str) -> None:
        try:
            if fault == "reset":
                _reset(client_sock)
            elif fault == "http_503":
                self._serve_503(client_sock)
            elif fault == "blackhole":
                self._blackhole(client_sock)
            elif fault == "accept_hang":
                # half-open: accepted, never read, never answered
                self._closing.wait(self.config.accept_hang_s)
            else:
                delay = (self.config.latency_s if fault == "latency"
                         else self.config.base_latency_s)
                if delay > 0:
                    self._closing.wait(delay)
                self._proxy(client_sock, truncate=(fault == "truncate"))
        except OSError:
            pass
        finally:
            try:
                client_sock.close()
            except OSError:
                pass

    def _serve_503(self, client_sock: socket.socket) -> None:
        client_sock.settimeout(2.0)
        _drain_request(client_sock)
        body = b'{"error": "injected overload"}'
        retry_after = f"{self.config.retry_after_s:g}".encode("ascii")
        client_sock.sendall(_RESPONSE_503 % (retry_after, len(body), body))

    def _blackhole(self, client_sock: socket.socket) -> None:
        client_sock.settimeout(2.0)
        _drain_request(client_sock)
        # hold the connection silently; the client's timeout is the exit
        self._closing.wait(self.config.blackhole_s)

    def _proxy(self, client_sock: socket.socket, truncate: bool) -> None:
        """Forward one HTTP exchange; optionally tear the response."""
        upstream = socket.create_connection(self.upstream, timeout=10.0)
        try:
            client_sock.settimeout(10.0)
            upstream.settimeout(10.0)
            request = _drain_request(client_sock)
            if not request:
                return
            upstream.sendall(request)
            response = _read_until_close(upstream)
            if truncate and len(response) > 1:
                client_sock.sendall(response[: len(response) // 2])
                _reset(client_sock)
            else:
                client_sock.sendall(response)
        finally:
            try:
                upstream.close()
            except OSError:
                pass


# ----------------------------------------------------------------------
# socket helpers
# ----------------------------------------------------------------------
def _reset(sock: socket.socket) -> None:
    """Close with SO_LINGER 0 so the peer sees a TCP RST, not FIN."""
    try:
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    except OSError:
        pass
    sock.close()


def _drain_request(sock: socket.socket) -> bytes:
    """Read one full HTTP request (headers + Content-Length body)."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            return data
        data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            try:
                length = int(value.strip())
            except ValueError:
                length = 0
    while len(body) < length:
        chunk = sock.recv(65536)
        if not chunk:
            break
        body += chunk
    return head + b"\r\n\r\n" + body


def _read_until_close(sock: socket.socket) -> bytes:
    """Read the upstream's entire response (it sends Connection: close)."""
    out = b""
    while True:
        try:
            chunk = sock.recv(65536)
        except socket.timeout:
            break
        if not chunk:
            break
        out += chunk
    return out
