"""Provenance management service (the yProv web service analogue).

Stores PROV documents and answers graph queries about them.  The verb
surface mirrors the yProv RESTful API — ``PUT/GET/DELETE /documents/<id>``
and subgraph endpoints — as plain Python methods so the evaluation runs
in-process.

Storage strategy: the canonical PROV-JSON text of every document is kept
verbatim (lossless retrieval), while the document's element/relation
structure is loaded into the embedded :class:`~repro.yprov.graphdb.GraphDB`
for lineage and subgraph queries.  An optional root directory makes the
service persistent across instantiations.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from repro.atomicio import atomic_write_text
from repro.errors import DocumentNotFoundError, ServiceError
from repro.prov.document import ProvDocument
from repro.prov.model import ProvActivity
from repro.prov.provjson import to_provjson
from repro.query import Query as ProvqlQuery
from repro.query.backends import ServiceBackend, attr_prop
from repro.query.cache import GLOBAL_DOC_ID, QueryCache
from repro.query.executor import QueryResult, execute
from repro.query.parser import parse as parse_provql
from repro.retry import ExponentialBackoff, retry_call, seed_from_name
from repro.yprov.graphdb import GraphDB, Node

_DOC_ID_RE = re.compile(r"^[A-Za-z0-9_.\-]+$")

#: ``(ProvElement, property)`` value indexes the service maintains so the
#: PROVQL planner can serve equality predicates on these fields without a
#: scan (``doc_id`` also accelerates per-document scans via intersection).
_DEFAULT_INDEXES = ("key", "doc_id", "qualified_name", "label", "prov_type")


class ProvenanceService:
    """Document store + graph query engine.

    Persistent document writes are atomic (temp file + rename) and retried
    with seeded exponential backoff, so a flaky shared filesystem cannot
    leave a torn ``.provjson`` behind or drop a document on one transient
    ``OSError``.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        write_retries: int = 3,
        sleep: Optional[Any] = None,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.write_retries = int(write_retries)
        self._sleep = sleep  # injectable for tests; None = time.sleep
        self._texts: Dict[str, str] = {}
        self.db = GraphDB()
        for prop in _DEFAULT_INDEXES:
            self.db.create_index("ProvElement", prop)
        # node id lookup: (doc_id, element qualified name) -> graph node id
        self._node_ids: Dict[str, Dict[str, int]] = {}
        # sha256 of each document's text; part of every query-cache key,
        # so a replaced document can never serve a stale cached result
        self._hashes: Dict[str, str] = {}
        self.query_cache = QueryCache(maxsize=128)
        # the REST front-end serves concurrent requests; serialize mutations
        # and graph reads (the embedded GraphDB is not thread-safe)
        self._lock = threading.RLock()
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            for path in sorted(self.root.glob("*.provjson")):
                self._ingest(path.stem, path.read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    # document CRUD (REST verb surface)
    # ------------------------------------------------------------------
    def put_document(self, doc_id: str, document: Union[ProvDocument, str]) -> str:
        """Store (or replace) a document under *doc_id*; returns the id.

        Idempotent on identical content: re-``PUT``-ing the bytes already
        stored under *doc_id* is acknowledged without re-ingesting or
        rewriting.  This is what makes the client's at-least-once delivery
        (retry + spool replay, :mod:`repro.yprov.spool`) effectively
        exactly-once — a duplicate ack is free and leaves one copy.
        """
        if not _DOC_ID_RE.match(doc_id):
            raise ServiceError(f"invalid document id: {doc_id!r}")
        text = document if isinstance(document, str) else to_provjson(document)
        # parse up-front so corrupt documents are rejected atomically
        ProvDocument.from_json(text)
        with self._lock:
            if self._texts.get(doc_id) == text:
                return doc_id  # dedup: identical re-delivery is an ack
            if doc_id in self._texts:
                self.delete_document(doc_id)
            self._ingest(doc_id, text)
            self.query_cache.invalidate(doc_id)
            if self.root is not None:
                self._write_document_file(doc_id, text)
        return doc_id

    def _write_document_file(self, doc_id: str, text: str) -> None:
        """Durably persist one document (atomic write, retried on OSError)."""
        target = self.root / f"{doc_id}.provjson"
        backoff = ExponentialBackoff(
            base_s=0.05, max_s=2.0, jitter=0.5, seed=seed_from_name(doc_id)
        )
        retry_call(
            lambda: atomic_write_text(target, text),
            retries=self.write_retries,
            backoff=backoff,
            exceptions=(OSError,),
            sleep=self._sleep,
        )

    def get_document(self, doc_id: str) -> ProvDocument:
        """Retrieve the document (lossless round trip of what was stored)."""
        text = self._texts.get(doc_id)
        if text is None:
            raise DocumentNotFoundError(f"no such document: {doc_id!r}")
        return ProvDocument.from_json(text)

    def get_document_text(self, doc_id: str) -> str:
        text = self._texts.get(doc_id)
        if text is None:
            raise DocumentNotFoundError(f"no such document: {doc_id!r}")
        return text

    def delete_document(self, doc_id: str) -> None:
        """Remove a stored document and its graph nodes (and disk copy)."""
        with self._lock:
            if doc_id not in self._texts:
                raise DocumentNotFoundError(f"no such document: {doc_id!r}")
            for node_id in list(self._node_ids.get(doc_id, {}).values()):
                self.db.delete_node(node_id)
            self._node_ids.pop(doc_id, None)
            del self._texts[doc_id]
            self._hashes.pop(doc_id, None)
            self.query_cache.invalidate(doc_id)
            if self.root is not None:
                target = self.root / f"{doc_id}.provjson"
                if target.exists():
                    target.unlink()

    def list_documents(self) -> List[str]:
        return sorted(self._texts)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._texts

    def __len__(self) -> int:
        return len(self._texts)

    # ------------------------------------------------------------------
    # graph ingestion
    # ------------------------------------------------------------------
    def _ingest(self, doc_id: str, text: str) -> None:
        document = ProvDocument.from_json(text).flattened()
        self._texts[doc_id] = text
        self._hashes[doc_id] = hashlib.sha256(text.encode("utf-8")).hexdigest()
        node_ids: Dict[str, int] = {}
        self._node_ids[doc_id] = node_ids

        for kind, table in (
            ("entity", document.entities),
            ("activity", document.activities),
            ("agent", document.agents),
        ):
            for qn, element in table.items():
                attributes = {k: str(v) for k, v in element.attributes.items()}
                props: Dict[str, Any] = {
                    "doc_id": doc_id,
                    "key": f"{doc_id}:{qn.provjson()}",
                    "qualified_name": qn.provjson(),
                    "label": element.label or qn.localpart,
                    "prov_type": str(element.prov_type) if element.prov_type else None,
                    "attributes": json.dumps(attributes, sort_keys=True),
                }
                # attributes also stored flat (``a:<name>``) so value
                # indexes can serve PROVQL ``attr.<name>`` lookups
                for name, value in attributes.items():
                    props[attr_prop(name)] = value
                if isinstance(element, ProvActivity):
                    if element.start_time is not None:
                        props["start_time"] = element.start_time.timestamp()
                    if element.end_time is not None:
                        props["end_time"] = element.end_time.timestamp()
                node = self.db.create_node({"ProvElement", kind.capitalize()}, props)
                node_ids[qn.provjson()] = node.id

        for rel in document.relations:
            target = rel.target
            if target is None:
                continue
            src = node_ids.get(rel.source.provjson())
            dst = node_ids.get(target.provjson())
            if src is None or dst is None:
                continue  # dangling references are kept in the text, not the graph
            self.db.create_edge(src, dst, rel.kind, {"doc_id": doc_id})

    # ------------------------------------------------------------------
    # queries (the yProv subgraph endpoints)
    # ------------------------------------------------------------------
    def _element_node(self, doc_id: str, element: str) -> Node:
        node_id = self._node_ids.get(doc_id, {}).get(element)
        if node_id is None:
            raise ServiceError(f"element {element!r} not found in document {doc_id!r}")
        return self.db.get_node(node_id)

    def get_subgraph(
        self,
        doc_id: str,
        element: str,
        direction: str = "both",
        max_depth: Optional[int] = None,
    ) -> List[str]:
        """Qualified names reachable from *element* in the stored graph."""
        with self._lock:
            if doc_id not in self._texts:
                raise DocumentNotFoundError(f"no such document: {doc_id!r}")
            node = self._element_node(doc_id, element)
            ids = self.db.traverse(node.id, direction=direction,
                                   max_depth=max_depth)
            return [self.db.get_node(i).properties["qualified_name"] for i in ids]

    def find_elements(
        self,
        label: Optional[str] = None,
        prov_type: Optional[str] = None,
        doc_id: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Search stored elements across documents by label / prov:type."""
        props: Dict[str, Any] = {}
        if doc_id is not None:
            props["doc_id"] = doc_id
        if prov_type is not None:
            props["prov_type"] = prov_type
        if label is not None:
            props["label"] = label
        with self._lock:
            nodes = self.db.match_nodes(label="ProvElement",
                                        properties=props or None)
        return [
            {
                "doc_id": n.properties["doc_id"],
                "qualified_name": n.properties["qualified_name"],
                "label": n.properties["label"],
                "prov_type": n.properties["prov_type"],
                "kind": next(iter(n.labels - {"ProvElement"})).lower(),
            }
            for n in nodes
        ]

    # ------------------------------------------------------------------
    # PROVQL (repro.query)
    # ------------------------------------------------------------------
    def create_attribute_index(self, name: str) -> None:
        """Build a value index over element attribute *name* (idempotent).

        Afterwards the PROVQL planner serves ``attr.<name> = '...'``
        predicates with an index lookup instead of a scan.
        """
        with self._lock:
            self.db.create_index("ProvElement", attr_prop(name))

    def _content_hash(self, doc_id: Optional[str]) -> str:
        if doc_id is not None:
            return self._hashes[doc_id]
        # service-wide queries: hash over the per-document hashes, so any
        # put/delete anywhere changes every global cache key
        combined = hashlib.sha256()
        for key in sorted(self._hashes):
            combined.update(f"{key}={self._hashes[key]}\n".encode("utf-8"))
        return combined.hexdigest()

    def query(
        self,
        doc_id: Optional[str],
        query: Union[str, ProvqlQuery],
        force_scan: bool = False,
    ) -> QueryResult:
        """Run a PROVQL query against one document (or all, ``None``).

        Results are served from an LRU cache keyed by
        ``(doc id, content hash, canonical query text)`` and invalidated
        on :meth:`put_document`/:meth:`delete_document`; cache hits return
        an independent copy with ``stats["cache_hit"] = True``.
        ``force_scan=True`` bypasses both the planner's index selection
        and the cache (benchmark/diagnostic path).
        """
        parsed = parse_provql(query) if isinstance(query, str) else query
        canonical = parsed.render()
        with self._lock:
            if doc_id is not None and doc_id not in self._texts:
                raise DocumentNotFoundError(f"no such document: {doc_id!r}")
            cache_key = (
                doc_id if doc_id is not None else GLOBAL_DOC_ID,
                self._content_hash(doc_id),
                canonical,
            )
            if not force_scan:
                cached = self.query_cache.get(cache_key)
                if cached is not None:
                    hit = cached.copy()
                    hit.stats["cache_hit"] = True
                    return hit
            result = execute(
                parsed, ServiceBackend(self, doc_id), force_scan=force_scan
            )
            if not force_scan:
                self.query_cache.put(cache_key, result.copy())
            return result

    def stats(self, doc_id: Optional[str] = None) -> Dict[str, int]:
        """Node/edge counts, optionally restricted to one document."""
        with self._lock:
            if doc_id is None:
                return {"documents": len(self._texts),
                        "nodes": self.db.node_count, "edges": self.db.edge_count}
            if doc_id not in self._texts:
                raise DocumentNotFoundError(f"no such document: {doc_id!r}")
            node_ids = set(self._node_ids[doc_id].values())
            edges = sum(
                1 for e in self.db.match_edges() if e.src in node_ids
            )
            return {"documents": 1, "nodes": len(node_ids), "edges": edges}
