"""Provenance management service (the yProv web service analogue).

Stores PROV documents and answers graph queries about them.  The verb
surface mirrors the yProv RESTful API — ``PUT/GET/DELETE /documents/<id>``
and subgraph endpoints — as plain Python methods so the evaluation runs
in-process.

Storage strategy: the canonical PROV-JSON text of every document is kept
verbatim (lossless retrieval), while the document's element/relation
structure is loaded into the embedded :class:`~repro.yprov.graphdb.GraphDB`
for lineage and subgraph queries.  An optional root directory makes the
service persistent across instantiations.

Bit-rot defence: every persisted document gets a checksum sidecar
(``<id>.provjson.sum`` holding the text's sha256).  The sidecar is
verified when a restarted service re-ingests its root and by
:meth:`ProvenanceService.scrub` (the cluster's background scrubber); a
copy whose bytes no longer match is **quarantined** — moved into
``<root>/quarantine/`` and evicted from the in-memory store — instead of
ever being served.  In a cluster the router then sees a missing copy and
restores a verified one from a healthy replica (read repair or the
anti-entropy sweep); single-node deployments keep the quarantined bytes
for forensics.  The same sha256 hashes back the replica-comparison
surface: :meth:`ProvenanceService.digests` rolls them up into buckets so
an anti-entropy sweep over N documents costs O(buckets) on the wire, and
:meth:`ProvenanceService.document_digest` answers for one document.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from repro.atomicio import atomic_write_text
from repro.errors import (
    DocumentNotFoundError,
    ProvError,
    SegmentError,
    ServiceError,
)
from repro.prov.document import ProvDocument
from repro.prov.model import ProvActivity
from repro.prov.provjson import to_provjson
from repro.query import Query as ProvqlQuery
from repro.query.backends import ServiceBackend, attr_prop
from repro.query.cache import GLOBAL_DOC_ID, QueryCache
from repro.query.executor import QueryResult, execute
from repro.query.parser import parse as parse_provql
from repro.retry import ExponentialBackoff, retry_call, seed_from_name
from repro.yprov.graphdb import GraphDB, Node
from repro.yprov.segments import STORE_DIR, SegmentStore

_DOC_ID_RE = re.compile(r"^[A-Za-z0-9_.\-]+$")

#: ``(ProvElement, property)`` value indexes the service maintains so the
#: PROVQL planner can serve equality predicates on these fields without a
#: scan (``doc_id`` also accelerates per-document scans via intersection).
_DEFAULT_INDEXES = ("key", "doc_id", "qualified_name", "label", "prov_type")

#: Checksum sidecar suffix for persisted documents (sha256 of the text).
SUM_SUFFIX = ".provjson.sum"

#: Subdirectory corrupt copies are moved into, never deleted.
QUARANTINE_DIR = "quarantine"

#: Default bucket count for :meth:`ProvenanceService.digests` roll-ups.
DEFAULT_DIGEST_BUCKETS = 64


def bucket_of(doc_id: str, buckets: int) -> int:
    """The digest bucket a document belongs to (stable across processes).

    Every shard must assign identical buckets or replica digests could
    never be compared, so this is a pure function of the id: crc32 mod
    bucket count.
    """
    return zlib.crc32(doc_id.encode("utf-8")) % buckets


class ProvenanceService:
    """Document store + graph query engine.

    Persistent document writes are atomic (temp file + rename) and retried
    with seeded exponential backoff, so a flaky shared filesystem cannot
    leave a torn ``.provjson`` behind or drop a document on one transient
    ``OSError``.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        write_retries: int = 3,
        sleep: Optional[Any] = None,
        storage: str = "auto",
    ) -> None:
        if storage not in ("auto", "files", "segments"):
            raise ServiceError(
                f"storage must be 'auto', 'files' or 'segments', "
                f"got {storage!r}"
            )
        self.root = Path(root) if root is not None else None
        if storage == "auto":
            storage = (
                "segments"
                if self.root is not None and (self.root / STORE_DIR).is_dir()
                else "files"
            )
        if storage == "segments" and self.root is None:
            raise ServiceError("storage='segments' requires a root directory")
        self.storage = storage
        self.write_retries = int(write_retries)
        self._sleep = sleep  # injectable for tests; None = time.sleep
        self._store: Optional[SegmentStore] = None
        self._texts: Dict[str, str] = {}
        self.db = GraphDB()
        for prop in _DEFAULT_INDEXES:
            self.db.create_index("ProvElement", prop)
        # node id lookup: (doc_id, element qualified name) -> graph node id
        self._node_ids: Dict[str, Dict[str, int]] = {}
        # sha256 of each document's text; part of every query-cache key,
        # so a replaced document can never serve a stale cached result
        self._hashes: Dict[str, str] = {}
        self.query_cache = QueryCache(maxsize=128)
        # the REST front-end serves concurrent requests; serialize mutations
        # and graph reads (the embedded GraphDB is not thread-safe)
        self._lock = threading.RLock()
        self._quarantined_total = 0
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._quarantined_total = len(
                list((self.root / QUARANTINE_DIR).glob("*.provjson*"))
            )
            if self.storage == "segments":
                self._store = SegmentStore(self.root / STORE_DIR)
                self._reingest_store()
            else:
                for path in sorted(self.root.glob("*.provjson")):
                    self._ingest_from_disk(path)

    def _reingest_store(self) -> None:
        """Rebuild the graph from the segment store after a restart.

        The store already resolved any half-compacted state and verified
        record checksums record-by-record; a document that nonetheless
        fails to parse is evicted from the store's serving set (skip and
        report, like a torn journal record) rather than crashing the
        whole service.
        """
        assert self._store is not None
        for doc_id in self._store.live_ids():
            try:
                text = self._store.get(doc_id)
            except SegmentError:
                continue
            if text is None:
                continue
            try:
                self._ingest(doc_id, text, retain_text=False)
            except (ProvError, ValueError):
                continue

    def _ingest_from_disk(self, path: Path) -> None:
        """Re-ingest one persisted document, verifying its checksum.

        A copy whose bytes fail the sidecar check or no longer parse is
        quarantined, not served: after a restart the corrupt bytes look
        exactly like bit rot that happened while the process was down,
        and serving them would silently poison readers.  A document with
        no sidecar (written before checksums existed) is verified by
        parse alone and given one.
        """
        doc_id = path.stem
        raw = path.read_bytes()
        text = None
        sidecar = path.parent / f"{doc_id}{SUM_SUFFIX}"
        expected = None
        if sidecar.is_file():
            expected = sidecar.read_text(encoding="utf-8").strip() or None
        digest = hashlib.sha256(raw).hexdigest()
        if expected is not None and digest != expected:
            self._quarantine_files(doc_id)
            return
        try:
            text = raw.decode("utf-8")
            ProvDocument.from_json(text)
        except (UnicodeDecodeError, ValueError, ProvError):
            self._quarantine_files(doc_id)
            return
        self._ingest(doc_id, text)
        if expected is None:
            atomic_write_text(sidecar, digest + "\n")

    # ------------------------------------------------------------------
    # document CRUD (REST verb surface)
    # ------------------------------------------------------------------
    def put_document(self, doc_id: str, document: Union[ProvDocument, str]) -> str:
        """Store (or replace) a document under *doc_id*; returns the id.

        Idempotent on identical content: re-``PUT``-ing the bytes already
        stored under *doc_id* is acknowledged without re-ingesting or
        rewriting.  This is what makes the client's at-least-once delivery
        (retry + spool replay, :mod:`repro.yprov.spool`) effectively
        exactly-once — a duplicate ack is free and leaves one copy.
        """
        with self._lock:
            return self._put_one(doc_id, document, sync=True)

    def _put_one(
        self,
        doc_id: str,
        document: Union[ProvDocument, str],
        sync: bool,
    ) -> str:
        """One validated store-or-replace; callers hold the lock.

        ``sync=False`` defers the segment store's fsync so a batch pays
        one durability point for many documents
        (:meth:`put_documents_batch` syncs once at the end).
        """
        if not _DOC_ID_RE.match(doc_id):
            raise ServiceError(f"invalid document id: {doc_id!r}")
        text = document if isinstance(document, str) else to_provjson(document)
        # parse up-front so corrupt documents are rejected atomically
        parsed = ProvDocument.from_json(text)
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        if self._hashes.get(doc_id) == digest:
            return doc_id  # dedup: identical re-delivery is an ack
        if doc_id in self._hashes:
            # replacement: drop the old graph/cache state; the disk copy
            # is atomically overwritten (files) or superseded by a newer
            # sequence number (segments), so no early unlink is needed
            self._evict(doc_id)
        self._ingest(doc_id, text, retain_text=self._store is None,
                     parsed=parsed)
        self.query_cache.invalidate(doc_id)
        if self._store is not None:
            self._store.put(doc_id, text, sync=sync)
        elif self.root is not None:
            self._write_document_file(doc_id, text)
        return doc_id

    def put_documents_batch(
        self, records: List[Any]
    ) -> List[Dict[str, Any]]:
        """Apply many ``(doc_id, text)`` pairs; per-record status results.

        The batch endpoint's service half: every record is validated and
        applied independently — one invalid document rejects *that*
        record, never the batch — and the result list reports, in input
        order, ``{"id", "status"}`` with ``status`` of ``"stored"`` or
        ``"rejected"`` (plus ``"error"``).  On the segment store the
        whole batch shares a single fsync, which is where the ≥10×
        ingest throughput of the batch path comes from.
        """
        results: List[Dict[str, Any]] = []
        with self._lock:
            for record in records:
                try:
                    doc_id, text = record
                except (TypeError, ValueError):
                    results.append({
                        "id": None, "status": "rejected",
                        "error": "batch record must be a (doc_id, text) pair",
                    })
                    continue
                try:
                    self._put_one(doc_id, text, sync=False)
                except (ServiceError, ProvError, ValueError) as exc:
                    results.append({
                        "id": doc_id, "status": "rejected",
                        "error": str(exc),
                    })
                else:
                    results.append({"id": doc_id, "status": "stored"})
            if self._store is not None:
                self._store.sync()
        return results

    def _write_document_file(self, doc_id: str, text: str) -> None:
        """Durably persist one document (atomic write, retried on OSError).

        The checksum sidecar is written after the document: a crash
        between the two leaves a mismatch that quarantines the copy at
        the next restart — degrading to a repairable missing replica,
        never to silently serving unverified bytes.
        """
        target = self.root / f"{doc_id}.provjson"
        sidecar = self.root / f"{doc_id}{SUM_SUFFIX}"
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        backoff = ExponentialBackoff(
            base_s=0.05, max_s=2.0, jitter=0.5, seed=seed_from_name(doc_id)
        )

        def _write_both() -> None:
            atomic_write_text(target, text)
            atomic_write_text(sidecar, digest + "\n")

        retry_call(
            _write_both,
            retries=self.write_retries,
            backoff=backoff,
            exceptions=(OSError,),
            sleep=self._sleep,
        )

    def _quarantine_files(self, doc_id: str) -> None:
        """Move a corrupt on-disk copy (and sidecar) into ``quarantine/``.

        The bytes are preserved for forensics, never deleted; a numeric
        suffix keeps repeat quarantines of the same id from colliding.
        Callers then treat the document as missing on this node, so the
        cluster restores a verified copy from a healthy replica.
        """
        qdir = self.root / QUARANTINE_DIR
        qdir.mkdir(parents=True, exist_ok=True)
        for name in (f"{doc_id}.provjson", f"{doc_id}{SUM_SUFFIX}"):
            source = self.root / name
            if not source.is_file():
                continue
            target = qdir / name
            attempt = 0
            while target.exists():
                attempt += 1
                target = qdir / f"{name}.{attempt}"
            os.replace(source, target)  # lint: disable=SL201 -- quarantine renames already-persisted corrupt bytes; no new data is written
        self._quarantined_total += 1

    def get_document(self, doc_id: str) -> ProvDocument:
        """Retrieve the document (lossless round trip of what was stored)."""
        return ProvDocument.from_json(self.get_document_text(doc_id))

    def get_document_text(self, doc_id: str) -> str:
        """The stored PROV-JSON bytes of *doc_id*, whatever the backend."""
        # membership first: a doc evicted (scrubbed) from the serving set
        # must read as gone even if stale bytes still exist on disk
        if doc_id not in self._hashes:
            raise DocumentNotFoundError(f"no such document: {doc_id!r}")
        text = self._texts.get(doc_id)
        if text is None and self._store is not None:
            with self._lock:
                text = self._store.get(doc_id)
        if text is None:
            raise DocumentNotFoundError(f"no such document: {doc_id!r}")
        return text

    def _evict(self, doc_id: str) -> None:
        """Drop a document from the in-memory store (graph, text, cache).

        The on-disk copy is untouched — deletion removes it, quarantine
        has already moved it.
        """
        with self._lock:
            if doc_id not in self._hashes:
                return
            for node_id in list(self._node_ids.get(doc_id, {}).values()):
                self.db.delete_node(node_id)
            self._node_ids.pop(doc_id, None)
            self._texts.pop(doc_id, None)
            self._hashes.pop(doc_id, None)
            self.query_cache.invalidate(doc_id)

    def delete_document(self, doc_id: str) -> None:
        """Remove a stored document and its graph nodes (and disk copy)."""
        with self._lock:
            if doc_id not in self._hashes:
                raise DocumentNotFoundError(f"no such document: {doc_id!r}")
            self._evict(doc_id)
            if self._store is not None:
                self._store.delete(doc_id)
            elif self.root is not None:
                for name in (f"{doc_id}.provjson", f"{doc_id}{SUM_SUFFIX}"):
                    target = self.root / name
                    if target.exists():
                        target.unlink()

    def list_documents(self) -> List[str]:
        return sorted(self._hashes)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._hashes

    def __len__(self) -> int:
        return len(self._hashes)

    # ------------------------------------------------------------------
    # graph ingestion
    # ------------------------------------------------------------------
    def _ingest(
        self,
        doc_id: str,
        text: str,
        retain_text: bool = True,
        parsed: Optional[ProvDocument] = None,
    ) -> None:
        # *parsed* lets callers that already validated the text (the put
        # path) skip a second parse — at batch ingest rates the duplicate
        # ``from_json`` was the single largest per-document cost
        source = (parsed if parsed is not None
                  else ProvDocument.from_json(text))
        # flattening exists to fold named bundles into the top level; the
        # ingest below only reads, so bundle-free documents (the common
        # case on the hot path) skip the full-document copy
        document = source.flattened() if source.bundles else source
        if retain_text:
            self._texts[doc_id] = text
        self._hashes[doc_id] = hashlib.sha256(text.encode("utf-8")).hexdigest()
        node_ids: Dict[str, int] = {}
        self._node_ids[doc_id] = node_ids

        for kind, table in (
            ("entity", document.entities),
            ("activity", document.activities),
            ("agent", document.agents),
        ):
            for qn, element in table.items():
                attributes = {k: str(v) for k, v in element.attributes.items()}
                props: Dict[str, Any] = {
                    "doc_id": doc_id,
                    "key": f"{doc_id}:{qn.provjson()}",
                    "qualified_name": qn.provjson(),
                    "label": element.label or qn.localpart,
                    "prov_type": str(element.prov_type) if element.prov_type else None,
                    "attributes": json.dumps(attributes, sort_keys=True),
                }
                # attributes also stored flat (``a:<name>``) so value
                # indexes can serve PROVQL ``attr.<name>`` lookups
                for name, value in attributes.items():
                    props[attr_prop(name)] = value
                if isinstance(element, ProvActivity):
                    if element.start_time is not None:
                        props["start_time"] = element.start_time.timestamp()
                    if element.end_time is not None:
                        props["end_time"] = element.end_time.timestamp()
                node = self.db.create_node({"ProvElement", kind.capitalize()}, props)
                node_ids[qn.provjson()] = node.id

        for rel in document.relations:
            target = rel.target
            if target is None:
                continue
            src = node_ids.get(rel.source.provjson())
            dst = node_ids.get(target.provjson())
            if src is None or dst is None:
                continue  # dangling references are kept in the text, not the graph
            self.db.create_edge(src, dst, rel.kind, {"doc_id": doc_id})

    # ------------------------------------------------------------------
    # queries (the yProv subgraph endpoints)
    # ------------------------------------------------------------------
    def _element_node(self, doc_id: str, element: str) -> Node:
        node_id = self._node_ids.get(doc_id, {}).get(element)
        if node_id is None:
            raise ServiceError(f"element {element!r} not found in document {doc_id!r}")
        return self.db.get_node(node_id)

    def get_subgraph(
        self,
        doc_id: str,
        element: str,
        direction: str = "both",
        max_depth: Optional[int] = None,
    ) -> List[str]:
        """Qualified names reachable from *element* in the stored graph."""
        with self._lock:
            if doc_id not in self._hashes:
                raise DocumentNotFoundError(f"no such document: {doc_id!r}")
            node = self._element_node(doc_id, element)
            ids = self.db.traverse(node.id, direction=direction,
                                   max_depth=max_depth)
            return [self.db.get_node(i).properties["qualified_name"] for i in ids]

    def find_elements(
        self,
        label: Optional[str] = None,
        prov_type: Optional[str] = None,
        doc_id: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Search stored elements across documents by label / prov:type."""
        props: Dict[str, Any] = {}
        if doc_id is not None:
            props["doc_id"] = doc_id
        if prov_type is not None:
            props["prov_type"] = prov_type
        if label is not None:
            props["label"] = label
        with self._lock:
            nodes = self.db.match_nodes(label="ProvElement",
                                        properties=props or None)
        return [
            {
                "doc_id": n.properties["doc_id"],
                "qualified_name": n.properties["qualified_name"],
                "label": n.properties["label"],
                "prov_type": n.properties["prov_type"],
                "kind": next(iter(n.labels - {"ProvElement"})).lower(),
            }
            for n in nodes
        ]

    # ------------------------------------------------------------------
    # integrity: digests & scrubbing
    # ------------------------------------------------------------------
    def document_digest(self, doc_id: str) -> Dict[str, str]:
        """The sha256 of one stored document's canonical text.

        The cluster's read-repair and repair paths compare these across
        replicas — a digest exchange costs bytes, a text exchange costs
        the document.
        """
        with self._lock:
            digest = self._hashes.get(doc_id)
        if digest is None:
            raise DocumentNotFoundError(f"no such document: {doc_id!r}")
        return {"doc_id": doc_id, "sha256": digest}

    def digests(
        self,
        buckets: int = DEFAULT_DIGEST_BUCKETS,
        bucket: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Bucketed document-digest roll-up (the anti-entropy surface).

        With ``bucket=None`` returns one rolled-up sha256 per non-empty
        bucket (``{"buckets": N, "digests": {"<i>": hex}}``): a replica
        comparison over the whole shard costs O(buckets) on the wire.
        With a bucket index returns that bucket's full ``{doc id:
        sha256}`` map, fetched only for buckets whose roll-ups disagree.
        Bucket assignment is :func:`bucket_of` — identical on every
        shard, or digests could never be compared.
        """
        if buckets < 1:
            raise ServiceError(f"buckets must be >= 1, got {buckets}")
        if bucket is not None and not 0 <= bucket < buckets:
            raise ServiceError(
                f"bucket must be in [0, {buckets}), got {bucket}"
            )
        with self._lock:
            if bucket is not None:
                documents = {
                    doc_id: digest
                    for doc_id, digest in sorted(self._hashes.items())
                    if bucket_of(doc_id, buckets) == bucket
                }
                return {
                    "buckets": buckets, "bucket": bucket,
                    "documents": documents,
                }
            rollups: Dict[int, "hashlib._Hash"] = {}
            for doc_id, digest in sorted(self._hashes.items()):
                index = bucket_of(doc_id, buckets)
                if index not in rollups:
                    rollups[index] = hashlib.sha256()
                rollups[index].update(f"{doc_id}={digest}\n".encode("utf-8"))
            return {
                "buckets": buckets,
                "digests": {
                    str(i): h.hexdigest() for i, h in sorted(rollups.items())
                },
            }

    @property
    def quarantined_total(self) -> int:
        """Copies quarantined over this root's lifetime (health counter)."""
        return self._quarantined_total

    def close(self) -> None:
        """Release the segment store (files backend holds nothing open)."""
        if self._store is not None:
            self._store.close()

    def compact(self) -> Dict[str, Any]:
        """Merge the segment store's WALs into one immutable segment.

        On the files backend there is nothing to compact (every document
        already lives in its own atomic file): returns a skipped report
        rather than raising, so tooling can call it against any node.
        """
        if self._store is None:
            return {"skipped": True, "reason": f"storage={self.storage!r}"}
        with self._lock:
            return self._store.compact()

    def scrub(self) -> Dict[str, Any]:
        """One bit-rot scrub pass over every persisted document.

        Re-reads each document's bytes from disk and verifies them
        against the checksum sidecar (and the in-memory hash).  A copy
        that fails is quarantined and evicted — readers get a clean
        not-found, never the corrupt bytes — and a copy whose file
        vanished out-of-band is evicted too; in a cluster the router's
        repair machinery then restores a verified copy from a healthy
        replica.  A missing sidecar on a healthy file is backfilled.
        In-memory services have nothing on disk to rot: no-op report.
        """
        report: Dict[str, Any] = {
            "checked": 0, "quarantined": [], "missing": [],
            "sidecars_added": 0,
        }
        if self.root is None:
            return report
        if self._store is not None:
            # segment-store scrub: re-verify every live record's crc and
            # the segment's footer index; a document whose record no
            # longer decodes is evicted (reported as quarantined — the
            # bytes stay on disk but are never served), so the cluster
            # restores a verified replica
            with self._lock:
                store_report = self._store.verify()
                report["checked"] = store_report["checked"]
                report["issues"] = store_report["issues"]
                for doc_id in store_report["bad"]:
                    self._evict(doc_id)
                    # tombstone the damaged record: like moving a corrupt
                    # flat file to quarantine, it must never serve again
                    # (the bad bytes stay in the segment for forensics
                    # until the next compaction drops them)
                    self._store.delete(doc_id, sync=False)
                    self._quarantined_total += 1
                    report["quarantined"].append(doc_id)
                if store_report["bad"]:
                    self._store.sync()
            return report
        with self._lock:
            for doc_id in sorted(self._hashes):
                report["checked"] += 1
                path = self.root / f"{doc_id}.provjson"
                sidecar = self.root / f"{doc_id}{SUM_SUFFIX}"
                if not path.is_file():
                    self._evict(doc_id)
                    report["missing"].append(doc_id)
                    continue
                raw = path.read_bytes()
                digest = hashlib.sha256(raw).hexdigest()
                expected = None
                if sidecar.is_file():
                    expected = (
                        sidecar.read_text(encoding="utf-8").strip() or None
                    )
                in_memory = self._hashes.get(doc_id)
                if digest != (expected or in_memory):
                    self._quarantine_files(doc_id)
                    self._evict(doc_id)
                    report["quarantined"].append(doc_id)
                    continue
                if expected is None:
                    atomic_write_text(sidecar, digest + "\n")
                    report["sidecars_added"] += 1
        return report

    # ------------------------------------------------------------------
    # PROVQL (repro.query)
    # ------------------------------------------------------------------
    def create_attribute_index(self, name: str) -> None:
        """Build a value index over element attribute *name* (idempotent).

        Afterwards the PROVQL planner serves ``attr.<name> = '...'``
        predicates with an index lookup instead of a scan.
        """
        with self._lock:
            self.db.create_index("ProvElement", attr_prop(name))

    def _content_hash(self, doc_id: Optional[str]) -> str:
        if doc_id is not None:
            return self._hashes[doc_id]
        # service-wide queries: hash over the per-document hashes, so any
        # put/delete anywhere changes every global cache key
        combined = hashlib.sha256()
        for key in sorted(self._hashes):
            combined.update(f"{key}={self._hashes[key]}\n".encode("utf-8"))
        return combined.hexdigest()

    def query(
        self,
        doc_id: Optional[str],
        query: Union[str, ProvqlQuery],
        force_scan: bool = False,
    ) -> QueryResult:
        """Run a PROVQL query against one document (or all, ``None``).

        Results are served from an LRU cache keyed by
        ``(doc id, content hash, canonical query text)`` and invalidated
        on :meth:`put_document`/:meth:`delete_document`; cache hits return
        an independent copy with ``stats["cache_hit"] = True``.
        ``force_scan=True`` bypasses both the planner's index selection
        and the cache (benchmark/diagnostic path).
        """
        parsed = parse_provql(query) if isinstance(query, str) else query
        canonical = parsed.render()
        with self._lock:
            if doc_id is not None and doc_id not in self._hashes:
                raise DocumentNotFoundError(f"no such document: {doc_id!r}")
            cache_key = (
                doc_id if doc_id is not None else GLOBAL_DOC_ID,
                self._content_hash(doc_id),
                canonical,
            )
            if not force_scan:
                cached = self.query_cache.get(cache_key)
                if cached is not None:
                    hit = cached.copy()
                    hit.stats["cache_hit"] = True
                    return hit
            result = execute(
                parsed, ServiceBackend(self, doc_id), force_scan=force_scan
            )
            if not force_scan:
                self.query_cache.put(cache_key, result.copy())
            return result

    def stats(self, doc_id: Optional[str] = None) -> Dict[str, int]:
        """Node/edge counts, optionally restricted to one document."""
        with self._lock:
            if doc_id is None:
                return {"documents": len(self._hashes),
                        "nodes": self.db.node_count, "edges": self.db.edge_count}
            if doc_id not in self._hashes:
                raise DocumentNotFoundError(f"no such document: {doc_id!r}")
            node_ids = set(self._node_ids[doc_id].values())
            edges = sum(
                1 for e in self.db.match_edges() if e.src in node_ids
            )
            return {"documents": 1, "nodes": len(node_ids), "edges": edges}
