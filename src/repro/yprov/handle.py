"""Provenance handle system.

yProv pairs provenance files with persistent identifiers ("the provenance
handle system").  A handle is ``hdl:<prefix>/<suffix>`` and resolves to a
document stored in a :class:`~repro.yprov.service.ProvenanceService`.
Handles survive process restarts via a JSON registry file when the system
is constructed with a path.
"""

from __future__ import annotations

import json
import re
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.atomicio import atomic_write_text
from repro.errors import DocumentNotFoundError, HandleError
from repro.prov.document import ProvDocument
from repro.yprov.service import ProvenanceService

_HANDLE_RE = re.compile(r"^hdl:(?P<prefix>[A-Za-z0-9.]+)/(?P<suffix>[A-Za-z0-9_.\-]+)$")


@dataclass(frozen=True)
class HandleRecord:
    """One registered handle."""

    handle: str
    doc_id: str
    description: str = ""


class HandleSystem:
    """Registry of persistent identifiers over a provenance service."""

    def __init__(
        self,
        service: ProvenanceService,
        prefix: str = "20.500.repro",
        registry_path: Optional[Union[str, Path]] = None,
    ) -> None:
        if not re.match(r"^[A-Za-z0-9.]+$", prefix):
            raise HandleError(f"invalid handle prefix: {prefix!r}")
        self.service = service
        self.prefix = prefix
        self.registry_path = Path(registry_path) if registry_path else None
        self._records: Dict[str, HandleRecord] = {}
        if self.registry_path is not None and self.registry_path.exists():
            raw = json.loads(self.registry_path.read_text(encoding="utf-8"))
            for spec in raw:
                record = HandleRecord(**spec)
                self._records[record.handle] = record

    def _persist(self) -> None:
        if self.registry_path is None:
            return
        self.registry_path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic: a crash mid-persist must not wipe the handle registry.
        atomic_write_text(
            self.registry_path,
            json.dumps(
                [record.__dict__ for record in sorted(
                    self._records.values(), key=lambda r: r.handle
                )],
                indent=1,
            ),
        )

    def mint(
        self,
        doc_id: str,
        suffix: Optional[str] = None,
        description: str = "",
    ) -> HandleRecord:
        """Mint a handle for a stored document (must exist in the service)."""
        if doc_id not in self.service:
            raise HandleError(f"cannot mint handle: document {doc_id!r} not stored")
        suffix = suffix or uuid.uuid4().hex[:12]
        handle = f"hdl:{self.prefix}/{suffix}"
        if not _HANDLE_RE.match(handle):
            raise HandleError(f"invalid handle suffix: {suffix!r}")
        if handle in self._records:
            raise HandleError(f"handle already minted: {handle}")
        record = HandleRecord(handle=handle, doc_id=doc_id, description=description)
        self._records[handle] = record
        self._persist()
        return record

    def resolve(self, handle: str) -> ProvDocument:
        """Resolve a handle to its provenance document.

        A handle whose document was deleted from the service is a *handle*
        failure from the caller's point of view, so the underlying
        :class:`~repro.errors.DocumentNotFoundError` is wrapped in a
        :class:`~repro.errors.HandleError` naming the handle.
        """
        record = self._records.get(handle)
        if record is None:
            raise HandleError(f"unknown handle: {handle!r}")
        try:
            return self.service.get_document(record.doc_id)
        except DocumentNotFoundError as exc:
            raise HandleError(
                f"handle {handle!r} points at document {record.doc_id!r}, "
                f"which is no longer stored in the service"
            ) from exc

    def lookup(self, handle: str) -> HandleRecord:
        record = self._records.get(handle)
        if record is None:
            raise HandleError(f"unknown handle: {handle!r}")
        return record

    def revoke(self, handle: str) -> None:
        if handle not in self._records:
            raise HandleError(f"unknown handle: {handle!r}")
        del self._records[handle]
        self._persist()

    def list_handles(self) -> List[HandleRecord]:
        return sorted(self._records.values(), key=lambda r: r.handle)

    def handles_for(self, doc_id: str) -> List[HandleRecord]:
        return [r for r in self.list_handles() if r.doc_id == doc_id]
