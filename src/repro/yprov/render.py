"""Static visual rendering of provenance graphs (the Explorer's view).

The web yProvExplorer draws provenance files as interactive graphs; offline
we render a *static* view: a spring-layout positioned SVG with the standard
PROV iconography (ellipses for entities, rectangles for activities,
houses/pentagons for agents) and labeled relation edges, optionally wrapped
in a self-contained HTML page with a legend and document statistics.  No
JavaScript or external assets — the file works from ``file://``.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import networkx as nx

from repro.atomicio import atomic_write_text
from repro.prov.document import ProvDocument
from repro.prov.graph import degree_stats, to_networkx

#: fill colors per element kind (PROV diagram conventions)
_COLORS = {
    "entity": "#fffadd",
    "activity": "#cfe2ff",
    "agent": "#ffd9a8",
    "unknown": "#eeeeee",
}
_STROKE = "#555555"


def _layout(graph: nx.MultiDiGraph, width: int, height: int,
            seed: int) -> Dict[str, Tuple[float, float]]:
    """Deterministic spring layout scaled into the viewport."""
    if graph.number_of_nodes() == 0:
        return {}
    pos = nx.spring_layout(nx.Graph(graph), seed=seed, k=1.6)
    xs = [p[0] for p in pos.values()]
    ys = [p[1] for p in pos.values()]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)
    margin = 90
    return {
        node: (
            margin + (x - min_x) / span_x * (width - 2 * margin),
            margin + (y - min_y) / span_y * (height - 2 * margin),
        )
        for node, (x, y) in pos.items()
    }


def _node_svg(node: str, kind: str, label: str, x: float, y: float) -> str:
    color = _COLORS.get(kind, _COLORS["unknown"])
    text = html.escape(label if len(label) <= 28 else label[:25] + "...")
    shape: str
    if kind == "activity":
        shape = (f'<rect x="{x - 60:.1f}" y="{y - 16:.1f}" width="120" '
                 f'height="32" rx="4" fill="{color}" stroke="{_STROKE}"/>')
    elif kind == "agent":
        points = f"{x - 50:.1f},{y + 14:.1f} {x - 50:.1f},{y - 8:.1f} " \
                 f"{x:.1f},{y - 20:.1f} {x + 50:.1f},{y - 8:.1f} " \
                 f"{x + 50:.1f},{y + 14:.1f}"
        shape = f'<polygon points="{points}" fill="{color}" stroke="{_STROKE}"/>'
    else:
        shape = (f'<ellipse cx="{x:.1f}" cy="{y:.1f}" rx="62" ry="18" '
                 f'fill="{color}" stroke="{_STROKE}"/>')
    return (
        f'<g>{shape}<text x="{x:.1f}" y="{y + 4:.1f}" text-anchor="middle" '
        f'font-size="10" font-family="sans-serif">{text}</text>'
        f'<title>{html.escape(node)}</title></g>'
    )


def render_svg(
    document: ProvDocument,
    width: int = 1200,
    height: int = 900,
    seed: int = 0,
) -> str:
    """Render *document* as a standalone SVG string."""
    graph = to_networkx(document)
    pos = _layout(graph, width, height, seed)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        '<defs><marker id="arrow" markerWidth="8" markerHeight="8" '
        'refX="8" refY="4" orient="auto"><path d="M0,0 L8,4 L0,8 z" '
        f'fill="{_STROKE}"/></marker></defs>',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    for u, v, data in graph.edges(data=True):
        x1, y1 = pos[u]
        x2, y2 = pos[v]
        midx, midy = (x1 + x2) / 2, (y1 + y2) / 2
        relation = html.escape(data.get("relation", ""))
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{_STROKE}" stroke-width="1" marker-end="url(#arrow)"/>'
        )
        parts.append(
            f'<text x="{midx:.1f}" y="{midy - 3:.1f}" text-anchor="middle" '
            f'font-size="8" font-family="sans-serif" fill="#888">{relation}</text>'
        )
    for node, data in graph.nodes(data=True):
        x, y = pos[node]
        parts.append(_node_svg(node, data.get("kind", "unknown"),
                               data.get("label") or node, x, y))
    parts.append("</svg>")
    return "\n".join(parts)


def export_html(
    document: ProvDocument,
    path: Union[str, Path],
    title: str = "provenance document",
    seed: int = 0,
) -> Path:
    """Write a self-contained HTML page: stats table + legend + SVG graph."""
    stats = degree_stats(document)
    svg = render_svg(document, seed=seed)
    rows = "".join(
        f"<tr><td>{html.escape(str(k))}</td><td>{html.escape(str(v))}</td></tr>"
        for k, v in stats.items()
        if not isinstance(v, dict)
    )
    legend = "".join(
        f'<span style="background:{color};border:1px solid {_STROKE};'
        f'padding:2px 10px;margin-right:8px">{kind}</span>'
        for kind, color in _COLORS.items()
        if kind != "unknown"
    )
    page = f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{html.escape(title)}</title></head>
<body style="font-family:sans-serif">
<h1>{html.escape(title)}</h1>
<p>{legend}</p>
<table border="1" cellpadding="4" style="border-collapse:collapse">{rows}</table>
{svg}
</body></html>
"""
    out = Path(path)
    atomic_write_text(out, page)
    return out
