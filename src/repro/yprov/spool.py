"""Durable store-and-forward queue for provenance documents.

When the provenance service is unreachable — network partition, service
restart, circuit breaker open — documents handed to
:meth:`~repro.yprov.client.ProvenanceClient.publish` must not be dropped
and must not stall the training job.  The :class:`Spool` journals them to
a local directory instead: one crc-checked JSON file per document, written
atomically (:mod:`repro.atomicio`), named by a monotonically increasing
sequence number so the queue is FIFO across process restarts.

On recovery, :meth:`Spool.drain` replays the queue oldest-first against a
healthy service.  Replay is idempotent: the server deduplicates on
document id (an identical re-``PUT`` is an ack, not a second copy), and an
acknowledged entry is deleted before the next one is attempted, so a crash
mid-drain re-sends at most the one in-flight document.  Together this
gives at-least-once delivery that is effectively exactly-once.

The spool is bounded.  ``eviction="reject"`` (default) refuses new
documents once full — the caller finds out immediately; ``"drop-oldest"``
makes room by discarding the oldest entry — appropriate when the newest
provenance matters most.  Entries that fail their crc on read (torn by a
crash or corrupted on disk) are quarantined to ``<root>/corrupt/``, never
silently replayed.
"""

from __future__ import annotations

import json
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.atomicio import atomic_write_json
from repro.errors import CircuitOpenError, SpoolError, TransportError

_ENTRY_SUFFIX = ".spool.json"
_EVICTION_POLICIES = ("reject", "drop-oldest")


@dataclass(frozen=True)
class SpoolEntry:
    """One queued document (metadata only; the text lives in the file)."""

    seq: int
    doc_id: str
    path: Path


@dataclass
class DrainReport:
    """Outcome of one :meth:`Spool.drain` pass."""

    delivered: List[str]
    rejected: List[str]
    remaining: int

    @property
    def complete(self) -> bool:
        return self.remaining == 0

    def summary(self) -> str:
        return (
            f"delivered={len(self.delivered)} rejected={len(self.rejected)} "
            f"remaining={self.remaining}"
        )


class Spool:
    """Bounded, durable FIFO queue of (doc_id, PROV-JSON text) pairs."""

    def __init__(
        self,
        root: Union[str, Path],
        max_entries: int = 1024,
        eviction: str = "reject",
        fsync: bool = True,
    ) -> None:
        if max_entries < 1:
            raise SpoolError(f"max_entries must be >= 1, got {max_entries}")
        if eviction not in _EVICTION_POLICIES:
            raise SpoolError(
                f"unknown eviction policy {eviction!r}; "
                f"choose from {_EVICTION_POLICIES}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = int(max_entries)
        self.eviction = eviction
        self.fsync = fsync
        self._lock = threading.Lock()
        self.evicted_total = 0
        self.corrupt_total = 0

    # ------------------------------------------------------------------
    # enqueue / inspect
    # ------------------------------------------------------------------
    def enqueue(self, doc_id: str, text: str) -> SpoolEntry:
        """Durably append one document; returns its queue entry.

        Raises :class:`~repro.errors.SpoolError` when the spool is full
        and the policy is ``"reject"``.
        """
        if not doc_id:
            raise SpoolError("doc_id must be non-empty")
        with self._lock:
            entries = self._scan()
            if len(entries) >= self.max_entries:
                if self.eviction == "reject":
                    raise SpoolError(
                        f"spool full ({len(entries)}/{self.max_entries} "
                        f"entries) at {self.root}"
                    )
                # drop-oldest: make room for the newcomer
                oldest = entries[0]
                oldest.path.unlink(missing_ok=True)
                self.evicted_total += 1
                entries = entries[1:]
            seq = entries[-1].seq + 1 if entries else 0
            path = self.root / f"{seq:012d}{_ENTRY_SUFFIX}"
            payload = {
                "seq": seq,
                "doc_id": doc_id,
                "text": text,
                "crc32": zlib.crc32(text.encode("utf-8")),
            }
            atomic_write_json(path, payload, fsync=self.fsync)
            return SpoolEntry(seq=seq, doc_id=doc_id, path=path)

    def entries(self) -> List[SpoolEntry]:
        """Queued entries oldest-first (corrupt files are quarantined)."""
        with self._lock:
            return self._scan()

    def __len__(self) -> int:
        return len(self.entries())

    def doc_ids(self) -> List[str]:
        """Document ids currently queued, oldest-first (may repeat)."""
        return [e.doc_id for e in self.entries()]

    def load(self, entry: SpoolEntry) -> str:
        """The PROV-JSON text of *entry*, crc-verified."""
        payload = self._read_payload(entry.path)
        if payload is None:
            raise SpoolError(f"spool entry corrupt: {entry.path}")
        return payload["text"]

    def purge(self) -> int:
        """Delete every queued entry; returns how many were removed."""
        with self._lock:
            entries = self._scan()
            for entry in entries:
                entry.path.unlink(missing_ok=True)
            return len(entries)

    def stats(self) -> Dict[str, int]:
        """Queue depth, capacity, and lifetime eviction/corruption counts."""
        return {
            "queued": len(self),
            "max_entries": self.max_entries,
            "evicted_total": self.evicted_total,
            "corrupt_total": self.corrupt_total,
        }

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------
    def drain(self, client, stop_on_transport_error: bool = True) -> DrainReport:
        """Replay queued documents oldest-first through *client*.

        *client* needs a ``put_document(doc_id, text)`` method (a
        :class:`~repro.yprov.client.ProvenanceClient` or a bare
        :class:`~repro.yprov.service.ProvenanceService`).  Each entry is
        deleted only after the service acknowledges it, so a crash between
        ack and delete re-sends one document — harmless, because the
        server dedups on doc id.  A transport failure — including the
        client's own circuit breaker refusing the call — stops the pass
        (the service is still unhealthy); the remaining entries stay
        queued.  A non-transport rejection (e.g. the service rules the
        document invalid) quarantines that entry to ``<root>/rejected/``
        and the pass continues — one poison document must not wedge the
        queue.
        """
        delivered: List[str] = []
        rejected: List[str] = []
        for entry in self.entries():
            payload = self._read_payload(entry.path)
            if payload is None:
                continue  # already quarantined by _read_payload
            try:
                client.put_document(entry.doc_id, payload["text"])
            except (TransportError, CircuitOpenError):
                # the service (or the path to it) is unhealthy, not the
                # document: keep it queued for the next pass
                if stop_on_transport_error:
                    break
                continue
            except Exception:
                self._quarantine(entry.path, "rejected")
                rejected.append(entry.doc_id)
                continue
            entry.path.unlink(missing_ok=True)
            delivered.append(entry.doc_id)
        return DrainReport(
            delivered=delivered, rejected=rejected, remaining=len(self)
        )

    def drain_batched(
        self,
        client,
        batch_size: int = 64,
        stop_on_transport_error: bool = True,
    ) -> DrainReport:
        """Replay queued documents in framed batches through *client*.

        *client* needs a ``put_documents_batch(records)`` method (a
        :class:`~repro.yprov.client.ProvenanceClient` against a server
        that advertises the ``batch`` capability).  Entries are shipped
        oldest-first, ``batch_size`` at a time, and each entry is deleted
        only after the server reports it ``stored`` — the same
        ack-then-delete, dedup-on-replay guarantee as :meth:`drain`, at a
        fraction of the round-trips.  Per-record outcomes map exactly to
        the per-document path: ``rejected`` quarantines the entry,
        ``unavailable`` (a shard quorum lost mid-batch) leaves it queued
        and stops the pass.
        """
        if batch_size < 1:
            raise SpoolError(f"batch_size must be >= 1, got {batch_size}")
        delivered: List[str] = []
        rejected: List[str] = []
        entries = self.entries()
        stop = False
        for start in range(0, len(entries), batch_size):
            if stop:
                break
            batch: List[SpoolEntry] = []
            records: List[tuple] = []
            for entry in entries[start:start + batch_size]:
                payload = self._read_payload(entry.path)
                if payload is None:
                    continue  # already quarantined by _read_payload
                batch.append(entry)
                records.append((entry.doc_id, payload["text"]))
            if not records:
                continue
            try:
                results = client.put_documents_batch(records)
            except (TransportError, CircuitOpenError):
                if stop_on_transport_error:
                    break
                continue
            except Exception:
                # whole-frame rejection: cannot be pinned on one record,
                # so keep the batch queued rather than quarantine blindly
                break
            # a torn response acks only the reported prefix; the tail
            # stays queued and the next pass re-sends it (dedup absorbs
            # any record that did land server-side)
            for entry, result in zip(batch, results):
                status = result.get("status")
                if status == "stored":
                    entry.path.unlink(missing_ok=True)
                    delivered.append(entry.doc_id)
                elif status == "rejected":
                    self._quarantine(entry.path, "rejected")
                    rejected.append(entry.doc_id)
                else:
                    # "unavailable": the document is fine but the cluster
                    # cannot durably hold it right now — keep it queued
                    stop = stop_on_transport_error
        return DrainReport(
            delivered=delivered, rejected=rejected, remaining=len(self)
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _scan(self) -> List[SpoolEntry]:
        out: List[SpoolEntry] = []
        for path in sorted(self.root.glob(f"*{_ENTRY_SUFFIX}")):
            payload = self._read_payload(path)
            if payload is None:
                continue
            out.append(
                SpoolEntry(seq=payload["seq"], doc_id=payload["doc_id"],
                           path=path)
            )
        return out

    def _read_payload(self, path: Path) -> Optional[dict]:
        """Parse + crc-check one entry file; quarantine and skip on damage."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            text = payload["text"]
            doc_id = payload["doc_id"]
            seq = payload["seq"]
            crc = payload["crc32"]
        except (OSError, ValueError, KeyError, TypeError):
            self._quarantine(path, "corrupt")
            return None
        if (
            not isinstance(doc_id, str)
            or not isinstance(text, str)
            or not isinstance(seq, int)
            or zlib.crc32(text.encode("utf-8")) != crc
        ):
            self._quarantine(path, "corrupt")
            return None
        return payload

    def _quarantine(self, path: Path, bucket: str) -> None:
        dest_dir = self.root / bucket
        try:
            dest_dir.mkdir(parents=True, exist_ok=True)
            path.rename(dest_dir / path.name)
        except OSError:
            path.unlink(missing_ok=True)
        if bucket == "corrupt":
            self.corrupt_total += 1
