"""HTTP front-end for the provenance service (the yProv web service).

The paper describes "the yProv web service front-end ... exposing a RESTful
API".  This module puts an actual HTTP surface (standard library only, no
web framework) over :class:`~repro.yprov.service.ProvenanceService`:

======  ===============================================  =================
Method  Path                                             Body / response
======  ===============================================  =================
GET     /api/v0/documents                                JSON list of ids
PUT     /api/v0/documents/<id>                           PROV-JSON body
GET     /api/v0/documents/<id>                           PROV-JSON
DELETE  /api/v0/documents/<id>                           204
GET     /api/v0/documents/<id>/stats                     JSON stats
GET     /api/v0/documents/<id>/subgraph?element=&
        direction=&max_depth=                            JSON list of qnames
POST    /api/v0/documents/<id>/query                     PROVQL text (or
                                                         ``{"query": ...}``)
                                                         → rows/plan/stats
POST    /api/v0/query                                    PROVQL across every
                                                         stored document
GET     /api/v0/elements?prov_type=&label=&doc_id=       JSON hit list
GET     /api/v0/health                                   JSON health report
GET     /api/v0/digest?buckets=&bucket=                  bucketed doc digests
GET     /api/v0/documents/<id>/digest                    one doc's sha256
POST    /api/v0/scrub                                    bit-rot scrub report
GET     /api/v0/cluster/repairs                          pending repair queue
POST    /api/v0/cluster/repairs:run                      drain repair queue
POST    /api/v0/cluster/sweep                            anti-entropy sweep
POST    /api/v0/jobs                                     submit a fleet job
GET     /api/v0/jobs?state=&tenant=                      list fleet jobs
GET     /api/v0/jobs/<id>                                one job's status
GET     /api/v0/jobs:stats                               fleet counters
POST    /api/v0/jobs:lease                               worker: lease a job
POST    /api/v0/jobs/<id>:renew                          worker: heartbeat
POST    /api/v0/jobs/<id>:complete                       worker: report done
POST    /api/v0/jobs/<id>:fail                           worker: report fail
POST    /api/v0/jobs/<id>:requeue                        DLQ → pending
DELETE  /api/v0/jobs/<id>                                purge settled job
======  ===============================================  =================

The digest/scrub endpoints exist on any node (they serve the cluster's
anti-entropy and scrubbing machinery but are honest single-node
introspection too); the ``/cluster/*`` endpoints answer only where the
served object actually has a repair queue — a router — and 404 on a
plain shard, so tooling can probe a URL and learn its role.  The
``/jobs`` endpoints answer only when a fleet manager
(:class:`~repro.fleet.manager.FleetManager`) was passed to
:func:`serve`; fleet errors come back as JSON with a machine-readable
``code`` (``job_not_found`` → 404, ``lease_expired``/``job_state`` →
409, ``queue_full`` → 429 + ``Retry-After``) so the client can raise
the same typed exceptions the in-process queue does.

Run it with :func:`serve` (returns a live ``ThreadingHTTPServer`` bound to
an ephemeral or given port) or embed :class:`ProvHandler` elsewhere.
Errors map to HTTP codes: unknown document → 404, invalid input → 400,
oversized body → 413.

**Backpressure.**  A shared service on a large machine must shed load
rather than queue unboundedly when thousands of ranks publish at once.
:class:`ServerLimits` bounds the server on three axes:

* *concurrency* — at most ``max_inflight`` requests execute at a time;
  excess requests are answered immediately with ``429 Too Many Requests``
  and a ``Retry-After`` header (clients honor it — see
  :mod:`repro.yprov.client`);
* *request size* — ``PUT`` bodies larger than ``max_body_bytes`` get
  ``413 Payload Too Large`` without the body ever being read;
* *time* — each request's socket gets a ``request_deadline_s`` timeout, so
  a stalled peer cannot pin a handler thread forever (the connection is
  dropped when the deadline fires).

``GET /health`` is exempt from the concurrency gate and reports the real
state — document count, in-flight requests, rejection counters and a
``degraded`` flag — so monitoring keeps working exactly when the service
is saturated.  The same endpoint identifies the node to the cluster
layer: ``role`` (``shard`` or ``router``), ``shard_id`` and
``replication_lag`` let the router's failure detector and ``yprov
status`` read one URL instead of two (see
:mod:`repro.yprov.cluster.membership`).

**Multi-tenancy.**  When :class:`TenantQuotas` is configured (the router
tier always does), each request's ``X-Tenant`` header is charged against
a per-tenant in-flight allowance *inside* the global gate, so one noisy
tenant saturating its own quota gets ``429`` while other tenants keep
flowing through the remaining global capacity.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import urllib.parse
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import (
    DocumentNotFoundError,
    FleetError,
    IngestError,
    JobNotFoundError,
    JobStateError,
    LeaseExpiredError,
    QueryError,
    QueueFullError,
    ReproError,
    ServiceError,
)
from repro.yprov.service import ProvenanceService

API_PREFIX = "/api/v0"

#: Request header naming the tenant charged for the request.
TENANT_HEADER = "X-Tenant"

#: Tenant bucket for requests that carry no ``X-Tenant`` header.
DEFAULT_TENANT = "default"

#: Aggregate bucket for rejection counters once ``max_tenants`` distinct
#: tenant names are already tracked — bounds memory (and the ``/health``
#: payload) against adversarial or high-cardinality tenant headers.
OVERFLOW_TENANT = "(other)"


@dataclass(frozen=True)
class ServerLimits:
    """Overload-protection knobs for :class:`ProvenanceServer`.

    ``retry_after_jitter`` spreads the ``Retry-After`` value each
    rejection advertises over ``[retry_after_s, retry_after_s * (1 +
    jitter)]`` (seeded, deterministic sequence) so the shed herd does not
    reconvene in lock-step; ``0`` (the default) keeps the header exact.
    """

    max_inflight: int = 16
    max_body_bytes: int = 32 * 1024 * 1024
    request_deadline_s: float = 30.0
    retry_after_s: float = 1.0
    retry_after_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ServiceError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_body_bytes < 1:
            raise ServiceError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        if self.retry_after_jitter < 0:
            raise ServiceError(
                f"retry_after_jitter must be >= 0, got "
                f"{self.retry_after_jitter}"
            )


class TenantQuotas:
    """Per-tenant admission control for a shared front-end.

    Each tenant may hold at most ``max_inflight_per_tenant`` requests at
    a time; excess requests are shed with ``429`` exactly like the global
    gate, but scoped to the offender.  At most ``max_tenants`` distinct
    tenants are tracked — idle tenants are evicted to make room, and when
    every tracked tenant is busy a brand-new tenant is refused rather
    than allowed to grow the table without bound.  Rejection counters are
    bounded the same way: past ``max_tenants`` distinct names they
    aggregate into the :data:`OVERFLOW_TENANT` bucket, so an attacker
    cycling through tenant names cannot grow memory or the ``/health``
    payload.
    """

    def __init__(
        self,
        max_inflight_per_tenant: int = 8,
        max_tenants: int = 1024,
    ) -> None:
        if max_inflight_per_tenant < 1:
            raise ServiceError(
                f"max_inflight_per_tenant must be >= 1, got "
                f"{max_inflight_per_tenant}"
            )
        if max_tenants < 1:
            raise ServiceError(f"max_tenants must be >= 1, got {max_tenants}")
        self.max_inflight_per_tenant = int(max_inflight_per_tenant)
        self.max_tenants = int(max_tenants)
        self._lock = threading.Lock()
        self._in_flight: Dict[str, int] = {}
        self._rejected: Dict[str, int] = {}

    def try_acquire(self, tenant: str) -> bool:
        """Charge one request to *tenant*; False = over quota (send 429)."""
        with self._lock:
            current = self._in_flight.get(tenant)
            if current is None:
                if len(self._in_flight) >= self.max_tenants:
                    for known, busy in list(self._in_flight.items()):
                        if busy == 0:
                            del self._in_flight[known]
                            break
                if len(self._in_flight) >= self.max_tenants:
                    self._charge_rejection(tenant)
                    return False
                current = 0
            if current >= self.max_inflight_per_tenant:
                self._charge_rejection(tenant)
                return False
            self._in_flight[tenant] = current + 1
            return True

    def _charge_rejection(self, tenant: str) -> None:
        """Count one rejection; callers hold the lock.

        The counter table is capped at ``max_tenants`` named entries:
        beyond that, rejections for never-before-seen tenants fold into
        the :data:`OVERFLOW_TENANT` bucket instead of growing the dict.
        """
        if (tenant not in self._rejected
                and len(self._rejected) >= self.max_tenants):
            tenant = OVERFLOW_TENANT
        self._rejected[tenant] = self._rejected.get(tenant, 0) + 1

    def release(self, tenant: str) -> None:
        with self._lock:
            count = self._in_flight.get(tenant, 0)
            if count > 0:
                self._in_flight[tenant] = count - 1

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant in-flight and rejection counters (health payload)."""
        with self._lock:
            tenants = set(self._in_flight) | set(self._rejected)
            return {
                tenant: {
                    "in_flight": self._in_flight.get(tenant, 0),
                    "rejected_total": self._rejected.get(tenant, 0),
                }
                for tenant in sorted(tenants)
            }


class _ServerState:
    """Shared saturation state: the in-flight gate and its counters."""

    def __init__(self, limits: ServerLimits) -> None:
        self.limits = limits
        self.slots = threading.Semaphore(limits.max_inflight)
        self.lock = threading.Lock()
        self.in_flight = 0
        self.rejected_total = 0
        self.served_total = 0
        # seeded so the advertised Retry-After sequence is reproducible
        self._jitter_rng = random.Random(limits.max_inflight)

    def retry_after(self) -> str:
        """The ``Retry-After`` value for one rejection, jittered if asked."""
        value = self.limits.retry_after_s
        if self.limits.retry_after_jitter:
            with self.lock:
                value *= 1.0 + (self.limits.retry_after_jitter
                                * self._jitter_rng.random())
        return f"{value:g}"

    def try_acquire(self) -> bool:
        if not self.slots.acquire(blocking=False):
            with self.lock:
                self.rejected_total += 1
            return False
        with self.lock:
            self.in_flight += 1
        return True

    def release(self) -> None:
        with self.lock:
            self.in_flight -= 1
            self.served_total += 1
        self.slots.release()

    def snapshot(self) -> Dict[str, int]:
        with self.lock:
            return {
                "in_flight": self.in_flight,
                "rejected_total": self.rejected_total,
                "served_total": self.served_total,
            }


def _make_handler(
    service: Any,
    state: _ServerState,
    node_role: str = "shard",
    shard_id: Optional[str] = None,
    health_extra: Optional[Callable[[], Dict[str, Any]]] = None,
    quotas: Optional[TenantQuotas] = None,
    fleet: Optional[Any] = None,
):
    """Build a request-handler class closed over *service* and *state*.

    *service* is anything exposing the :class:`ProvenanceService` verb
    surface — the single-node service or a
    :class:`~repro.yprov.cluster.router.ClusterRouter` (which is how the
    router tier serves the identical REST API).  *fleet* is anything
    exposing the :class:`~repro.fleet.manager.FleetManager` verb surface;
    without one the ``/jobs`` endpoints answer 404.
    """
    limits = state.limits

    class ProvHandler(BaseHTTPRequestHandler):
        # silence per-request logging; tests and examples don't want it
        def log_message(self, fmt: str, *args: Any) -> None:  # noqa: D102
            pass

        def send_response(self, code: int, message: Optional[str] = None,
                          ) -> None:
            # once a status line is on the wire, no second response may be
            # written to this connection (see _guarded's deadline path)
            self._response_begun = True
            super().send_response(code, message)

        # -- helpers -------------------------------------------------------
        def _send_json(self, payload: Any, status: int = 200,
                       extra_headers: Optional[Dict[str, str]] = None) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_error_json(self, status: int, message: str,
                             extra_headers: Optional[Dict[str, str]] = None,
                             ) -> None:
            self._send_json({"error": message}, status=status,
                            extra_headers=extra_headers)

        def _send_429(self, message: Optional[str] = None) -> None:
            self._send_error_json(
                429,
                message or (
                    f"server saturated ({limits.max_inflight} requests in "
                    f"flight); retry later"
                ),
                extra_headers={"Retry-After": state.retry_after()},
            )

        def _route(self) -> Tuple[str, Dict[str, str]]:
            parsed = urllib.parse.urlparse(self.path)
            query = {
                k: v[0] for k, v in urllib.parse.parse_qs(parsed.query).items()
            }
            return parsed.path, query

        def _doc_id(self, path: str) -> Optional[str]:
            prefix = f"{API_PREFIX}/documents/"
            if not path.startswith(prefix):
                return None
            rest = path[len(prefix):]
            return urllib.parse.unquote(rest.split("/", 1)[0]) or None

        def _job_id(self, path: str, suffix: str = "") -> Optional[str]:
            """The job id in ``/api/v0/jobs/<id><suffix>``, or ``None``."""
            prefix = f"{API_PREFIX}/jobs/"
            if not path.startswith(prefix):
                return None
            rest = path[len(prefix):]
            if suffix:
                if not rest.endswith(suffix):
                    return None
                rest = rest[: -len(suffix)]
            if "/" in rest or ":" in rest:
                return None
            return urllib.parse.unquote(rest) or None

        def _send_fleet_error(self, exc: ReproError) -> None:
            """Map a typed fleet error to status + machine-readable code.

            The ``code`` field is what lets the client re-raise the same
            exception type on its side of the wire.
            """
            if isinstance(exc, JobNotFoundError):
                self._send_json({"error": str(exc), "code": "job_not_found"},
                                status=404)
            elif isinstance(exc, QueueFullError):
                self._send_json(
                    {"error": str(exc), "code": "queue_full"}, status=429,
                    extra_headers={"Retry-After": f"{exc.retry_after_s:g}"})
            elif isinstance(exc, LeaseExpiredError):
                self._send_json({"error": str(exc), "code": "lease_expired"},
                                status=409)
            elif isinstance(exc, JobStateError):
                self._send_json({"error": str(exc), "code": "job_state"},
                                status=409)
            elif isinstance(exc, FleetError):
                self._send_json({"error": str(exc), "code": "fleet"},
                                status=400)
            else:
                self._send_error_json(400, str(exc))

        def _read_json_body(self) -> Optional[Dict[str, Any]]:
            """The request body as a JSON object ({} when empty)."""
            body = self._read_body()
            if body is None:
                return None
            if not body.strip():
                return {}
            try:
                payload = json.loads(body)
            except json.JSONDecodeError as exc:
                self._send_error_json(400, f"invalid JSON body: {exc}")
                return None
            if not isinstance(payload, dict):
                self._send_error_json(400, "JSON body must be an object")
                return None
            return payload

        def _guarded(self, handler) -> None:
            """Run one request body under the concurrency gate + deadline."""
            if not state.try_acquire():
                self._send_429()
                return
            tenant: Optional[str] = None
            if quotas is not None:
                tenant = self.headers.get(TENANT_HEADER) or DEFAULT_TENANT
                if not quotas.try_acquire(tenant):
                    state.release()
                    self._send_429(
                        f"tenant {tenant!r} over quota "
                        f"({quotas.max_inflight_per_tenant} requests in "
                        f"flight); retry later"
                    )
                    return
            try:
                # per-request deadline: a stalled peer can't pin this thread
                self.connection.settimeout(limits.request_deadline_s)
                self._response_begun = False
                handler()
            except socket.timeout:
                # deadline fired mid-request: best-effort 503 — but only if
                # no response has started, else the stream would carry two
                # interleaved responses; a plain drop is cleanly retryable
                self.close_connection = True
                if not self._response_begun:
                    try:
                        self._send_error_json(
                            503, "request deadline exceeded",
                            extra_headers={
                                "Retry-After": f"{limits.retry_after_s:g}"
                            },
                        )
                    except OSError:
                        pass
            finally:
                if tenant is not None:
                    quotas.release(tenant)
                state.release()

        def _health(self) -> None:
            snap = state.snapshot()
            degraded = snap["in_flight"] >= limits.max_inflight
            capabilities = [
                verb for verb, method in (
                    ("batch", "put_documents_batch"),
                    ("compact", "compact"),
                ) if hasattr(service, method)
            ]
            if fleet is not None:
                capabilities.append("jobs")
            payload: Dict[str, Any] = {
                "status": "degraded" if degraded else "ok",
                "role": node_role,
                "shard_id": shard_id,
                "replication_lag": 0,
                "documents": len(service),
                "max_inflight": limits.max_inflight,
                # what the served object can do — clients probe this to
                # pick the batch ingest path over per-document PUTs
                "capabilities": capabilities,
                **snap,
            }
            if quotas is not None:
                payload["tenants"] = quotas.snapshot()
            if fleet is not None:
                try:
                    payload["fleet"] = fleet.fleet_stats()
                except ReproError as exc:
                    payload["fleet_error"] = str(exc)
            quarantined = getattr(service, "quarantined_total", None)
            if quarantined is not None:
                payload["quarantined_total"] = quarantined
            if health_extra is not None:
                try:
                    payload.update(health_extra())
                except ReproError as exc:
                    payload["health_extra_error"] = str(exc)
            self._send_json(payload)

        # -- verbs -----------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            path, _ = self._route()
            if path == f"{API_PREFIX}/health":
                # never gated: monitoring must work while saturated
                self._health()
                return
            self._guarded(self._do_get)

        def _do_get(self) -> None:
            path, query = self._route()
            if (path == f"{API_PREFIX}/jobs"
                    or path == f"{API_PREFIX}/jobs:stats"
                    or path.startswith(f"{API_PREFIX}/jobs/")):
                self._do_jobs_get(path, query)
                return
            try:
                if path == f"{API_PREFIX}/documents":
                    self._send_json(service.list_documents())
                elif path == f"{API_PREFIX}/digest":
                    if not hasattr(service, "digests"):
                        self._send_error_json(
                            404, "this node serves no digest surface"
                        )
                        return
                    bucket = query.get("bucket")
                    kwargs: Dict[str, Any] = {}
                    if query.get("buckets"):
                        kwargs["buckets"] = int(query["buckets"])
                    if bucket is not None:
                        kwargs["bucket"] = int(bucket)
                    self._send_json(service.digests(**kwargs))
                elif path == f"{API_PREFIX}/cluster/repairs":
                    if not hasattr(service, "pending_repairs"):
                        self._send_error_json(
                            404, "this node has no repair queue (not a router)"
                        )
                        return
                    self._send_json({
                        "pending": [
                            list(pair) for pair in service.pending_repairs()
                        ],
                        "replication_lag": service.replication_lag,
                    })
                elif path == f"{API_PREFIX}/elements":
                    hits = service.find_elements(
                        label=query.get("label"),
                        prov_type=query.get("prov_type"),
                        doc_id=query.get("doc_id"),
                    )
                    self._send_json(hits)
                elif path.endswith("/stats"):
                    doc_id = self._doc_id(path)
                    self._send_json(service.stats(doc_id))
                elif path.endswith("/digest"):
                    doc_id = self._doc_id(path)
                    if doc_id is None or not hasattr(service, "document_digest"):
                        self._send_error_json(404, f"unknown path: {path}")
                        return
                    self._send_json(service.document_digest(doc_id))
                elif path.endswith("/subgraph"):
                    doc_id = self._doc_id(path)
                    element = query.get("element")
                    if not element:
                        raise ServiceError("missing 'element' query parameter")
                    depth = query.get("max_depth")
                    reachable = service.get_subgraph(
                        doc_id,
                        element,
                        direction=query.get("direction", "both"),
                        max_depth=int(depth) if depth else None,
                    )
                    self._send_json(reachable)
                else:
                    doc_id = self._doc_id(path)
                    if doc_id is None:
                        self._send_error_json(404, f"unknown path: {path}")
                        return
                    text = service.get_document_text(doc_id)
                    body = text.encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
            except DocumentNotFoundError as exc:
                self._send_error_json(404, str(exc))
            except (ServiceError, ValueError) as exc:
                self._send_error_json(400, str(exc))
            except ReproError as exc:
                self._send_error_json(400, str(exc))

        def _do_jobs_get(self, path: str, query: Dict[str, str]) -> None:
            """``GET /jobs``, ``GET /jobs/<id>``, ``GET /jobs:stats``."""
            if fleet is None:
                self._send_error_json(404, "this node serves no job fleet")
                return
            try:
                if path == f"{API_PREFIX}/jobs":
                    self._send_json(fleet.list_jobs(
                        state=query.get("state"),
                        tenant=query.get("tenant")))
                elif path == f"{API_PREFIX}/jobs:stats":
                    self._send_json(fleet.fleet_stats())
                else:
                    job_id = self._job_id(path)
                    if job_id is None:
                        self._send_error_json(404, f"unknown path: {path}")
                        return
                    self._send_json(fleet.get_job(job_id))
            except ReproError as exc:
                self._send_fleet_error(exc)

        def _do_jobs_post(self, path: str) -> None:
            """The fleet's POST verbs: submit, lease, renew/complete/fail,
            requeue.

            Submission is durable before the 201: the manager's queue
            fsyncs the ``submit`` record before returning, so an acked
            job survives a SIGKILL of this process.  Overflow maps to
            429 + ``Retry-After`` via :class:`~repro.errors.QueueFullError`.
            """
            if fleet is None:
                self._send_error_json(404, "this node serves no job fleet")
                return
            body = self._read_json_body()
            if body is None:
                return
            try:
                if path == f"{API_PREFIX}/jobs":
                    # the body may name the tenant explicitly (clients whose
                    # transport cannot set headers); the X-Tenant header is
                    # the fallback, matching the quota surface
                    tenant = str(
                        body.get("tenant")
                        or self.headers.get(TENANT_HEADER)
                        or DEFAULT_TENANT)
                    spec = body.get("spec") if "spec" in body else body
                    if not isinstance(spec, dict):
                        self._send_error_json(400, '"spec" must be an object')
                        return
                    max_attempts = body.get("max_attempts")
                    payload = fleet.submit_job(
                        spec, tenant=tenant,
                        max_attempts=(int(max_attempts)
                                      if max_attempts is not None else None))
                    self._send_json(payload, status=201)
                    return
                if path == f"{API_PREFIX}/jobs:lease":
                    worker = body.get("worker")
                    if not worker:
                        self._send_error_json(400, '"worker" is required')
                        return
                    lease = fleet.lease_job(str(worker))
                    self._send_json({"lease": lease})
                    return
                for suffix, verb in ((":renew", "renew_job"),
                                     (":complete", "complete_job"),
                                     (":fail", "fail_job"),
                                     (":requeue", "requeue_job")):
                    job_id = self._job_id(path, suffix=suffix)
                    if job_id is None:
                        continue
                    if verb == "requeue_job":
                        self._send_json(fleet.requeue_job(job_id))
                        return
                    worker = body.get("worker")
                    attempt = body.get("attempt")
                    if not worker or attempt is None:
                        self._send_error_json(
                            400, '"worker" and "attempt" are required')
                        return
                    if verb == "renew_job":
                        result = fleet.renew_job(job_id, str(worker),
                                                 int(attempt))
                    elif verb == "complete_job":
                        result = fleet.complete_job(
                            job_id, str(worker), int(attempt),
                            result=body.get("result"))
                    else:
                        result = fleet.fail_job(
                            job_id, str(worker), int(attempt),
                            str(body.get("error") or "unspecified failure"))
                    self._send_json(result)
                    return
                self._send_error_json(404, f"unknown path: {path}")
            except ReproError as exc:
                self._send_fleet_error(exc)

        def _read_body(self) -> Optional[str]:
            """Read the request body under the size limit.

            Returns the decoded text, or ``None`` when an error response
            (400/413) has already been sent.
            """
            raw = self._read_body_bytes()
            if raw is None:
                return None
            try:
                return raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                self._send_error_json(400, f"request body is not UTF-8: {exc}")
                return None

        def _read_body_bytes(self) -> Optional[bytes]:
            """Read the raw request body under the size limit.

            The batch endpoint consumes this directly: a batch frame is
            crc-checked record-by-record by the codec, so it must reach
            the decoder as raw bytes — decoding a damaged frame as UTF-8
            would turn a detectable corruption into a confusing 400.
            """
            raw_length = self.headers.get("Content-Length", "0")
            try:
                length = int(raw_length)
            except (TypeError, ValueError):
                self.close_connection = True  # body length unknown: can't reuse
                self._send_error_json(
                    400, f"invalid Content-Length: {raw_length!r}"
                )
                return None
            if length < 0:
                self.close_connection = True
                self._send_error_json(
                    400, f"invalid Content-Length: {raw_length!r}"
                )
                return None
            if length > limits.max_body_bytes:
                # refuse before reading; the unread body forces a close
                self.close_connection = True
                self._send_error_json(
                    413,
                    f"request body of {length} bytes exceeds limit of "
                    f"{limits.max_body_bytes}",
                )
                return None
            return self.rfile.read(length)

        def do_PUT(self) -> None:  # noqa: N802
            self._guarded(self._do_put)

        def _do_put(self) -> None:
            path, _ = self._route()
            doc_id = self._doc_id(path)
            if doc_id is None:
                self._send_error_json(404, f"unknown path: {path}")
                return
            body = self._read_body()
            if body is None:
                return
            try:
                service.put_document(doc_id, body)
            except ReproError as exc:
                self._send_error_json(400, str(exc))
                return
            self._send_json({"stored": doc_id}, status=201)

        def do_POST(self) -> None:  # noqa: N802
            self._guarded(self._do_post)

        def _do_post(self) -> None:
            path, _ = self._route()
            if path == f"{API_PREFIX}/documents:batch":
                self._do_batch()
                return
            if (path == f"{API_PREFIX}/jobs"
                    or path == f"{API_PREFIX}/jobs:lease"
                    or path.startswith(f"{API_PREFIX}/jobs/")):
                self._do_jobs_post(path)
                return
            if path in (f"{API_PREFIX}/scrub",
                        f"{API_PREFIX}/compact",
                        f"{API_PREFIX}/cluster/repairs:run",
                        f"{API_PREFIX}/cluster/sweep"):
                self._do_maintenance_post(path)
                return
            if path == f"{API_PREFIX}/query":
                doc_id = None  # service-wide query across every document
            else:
                doc_id = self._doc_id(path)
                if doc_id is None or not path.endswith("/query"):
                    self._send_error_json(404, f"unknown path: {path}")
                    return
            body = self._read_body()
            if body is None:
                return
            # accept raw PROVQL text or a JSON envelope {"query": "..."}
            query_text = body
            stripped = body.lstrip()
            if stripped.startswith("{"):
                try:
                    envelope = json.loads(stripped)
                except json.JSONDecodeError as exc:
                    self._send_error_json(400, f"invalid JSON body: {exc}")
                    return
                query_text = envelope.get("query") if isinstance(envelope, dict) else None
                if not isinstance(query_text, str):
                    self._send_error_json(
                        400, 'JSON body must carry a "query" string'
                    )
                    return
            try:
                result = service.query(doc_id, query_text)
            except DocumentNotFoundError as exc:
                self._send_error_json(404, str(exc))
                return
            except QueryError as exc:
                self._send_error_json(400, str(exc))
                return
            except ReproError as exc:
                self._send_error_json(400, str(exc))
                return
            self._send_json(result.to_dict())

        def _do_maintenance_post(self, path: str) -> None:
            """Body-less maintenance verbs: scrub, repair drain, sweep.

            Each maps onto a method of the served object when it has one
            (a shard scrubs itself; a router fans scrub out, drains its
            repair queue, runs an anti-entropy sweep) and 404s when the
            node has no such role.
            """
            verb = {
                f"{API_PREFIX}/scrub": "scrub",
                f"{API_PREFIX}/compact": "compact",
                f"{API_PREFIX}/cluster/repairs:run": "run_repairs",
                f"{API_PREFIX}/cluster/sweep": "sweep",
            }[path]
            method = getattr(service, verb, None)
            if method is None:
                self._send_error_json(
                    404, f"this node does not serve {verb!r}"
                )
                return
            try:
                result = method()
            except ReproError as exc:
                self._send_error_json(400, str(exc))
                return
            if verb == "run_repairs":
                result = {"repaired": result}
            self._send_json(result)

        def _do_batch(self) -> None:
            """``POST /documents:batch`` — binary batch frame ingest.

            The body is the :mod:`repro.yprov.ingest` wire format; the
            response carries one status per record (stored / rejected /
            unavailable) in input order, so a pipelined client re-spools
            exactly the records that did not land.  A frame that fails
            its record-level crc checks is rejected whole with 400 —
            nothing from a damaged frame is ever applied.
            """
            from repro.yprov.ingest import decode_batch

            if not hasattr(service, "put_documents_batch"):
                self._send_error_json(
                    404, "this node does not serve batch ingest"
                )
                return
            raw = self._read_body_bytes()
            if raw is None:
                return
            try:
                records = decode_batch(raw)
            except IngestError as exc:
                self._send_error_json(400, str(exc))
                return
            try:
                results = service.put_documents_batch(records)
            except ReproError as exc:
                self._send_error_json(400, str(exc))
                return
            stored = sum(1 for r in results if r.get("status") == "stored")
            self._send_json({
                "results": results,
                "stored": stored,
                "failed": len(results) - stored,
            })

        def do_DELETE(self) -> None:  # noqa: N802
            self._guarded(self._do_delete)

        def _do_delete(self) -> None:
            path, _ = self._route()
            if path.startswith(f"{API_PREFIX}/jobs/"):
                if fleet is None:
                    self._send_error_json(404, "this node serves no job fleet")
                    return
                job_id = self._job_id(path)
                if job_id is None:
                    self._send_error_json(404, f"unknown path: {path}")
                    return
                try:
                    fleet.purge_job(job_id)
                except ReproError as exc:
                    self._send_fleet_error(exc)
                    return
                self.send_response(204)
                self.send_header("Content-Length", "0")
                self.end_headers()
                return
            doc_id = self._doc_id(path)
            if doc_id is None:
                self._send_error_json(404, f"unknown path: {path}")
                return
            try:
                service.delete_document(doc_id)
            except DocumentNotFoundError as exc:
                self._send_error_json(404, str(exc))
                return
            self.send_response(204)
            self.send_header("Content-Length", "0")
            self.end_headers()

    return ProvHandler


class ProvenanceServer:
    """A running HTTP front-end; use as a context manager in tests.

    ``stop()`` is idempotent and safe on a server that was never started
    (``with ProvenanceServer(...) as srv`` always tears down cleanly even
    if the body raises before ``start()`` finished).
    """

    def __init__(self, service: ProvenanceService, host: str = "127.0.0.1",
                 port: int = 0,
                 limits: Optional[ServerLimits] = None,
                 node_role: str = "shard",
                 shard_id: Optional[str] = None,
                 health_extra: Optional[Callable[[], Dict[str, Any]]] = None,
                 quotas: Optional[TenantQuotas] = None,
                 fleet: Optional[Any] = None) -> None:
        self.service = service
        self.limits = limits or ServerLimits()
        self.node_role = node_role
        self.shard_id = shard_id
        self.quotas = quotas
        self.fleet = fleet
        self._state = _ServerState(self.limits)
        self._httpd = ThreadingHTTPServer(
            (host, port),
            _make_handler(service, self._state, node_role=node_role,
                          shard_id=shard_id, health_extra=health_extra,
                          quotas=quotas, fleet=fleet),
        )
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}{API_PREFIX}"

    @property
    def in_flight(self) -> int:
        return self._state.snapshot()["in_flight"]

    @property
    def rejected_total(self) -> int:
        return self._state.snapshot()["rejected_total"]

    def start(self) -> "ProvenanceServer":
        """Start serving on a background thread (no-op if already running)."""
        if self._closed:
            raise ServiceError("server already stopped; create a new one")
        if self._thread is None:
            self._thread = threading.Thread(target=self._httpd.serve_forever,
                                            name="yprov-rest", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down and release the port; idempotent, safe if never started."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            # shutdown() blocks on serve_forever's loop, so only call it
            # when the loop was actually started
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "ProvenanceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def serve(service: ProvenanceService, host: str = "127.0.0.1",
          port: int = 0, limits: Optional[ServerLimits] = None,
          node_role: str = "shard", shard_id: Optional[str] = None,
          health_extra: Optional[Callable[[], Dict[str, Any]]] = None,
          quotas: Optional[TenantQuotas] = None,
          fleet: Optional[Any] = None,
          ) -> ProvenanceServer:
    """Start the REST front-end on *port* (0 = ephemeral); returns the
    running server (caller stops it)."""
    return ProvenanceServer(service, host=host, port=port, limits=limits,
                            node_role=node_role, shard_id=shard_id,
                            health_extra=health_extra,
                            quotas=quotas, fleet=fleet).start()
