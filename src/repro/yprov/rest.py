"""HTTP front-end for the provenance service (the yProv web service).

The paper describes "the yProv web service front-end ... exposing a RESTful
API".  This module puts an actual HTTP surface (standard library only, no
web framework) over :class:`~repro.yprov.service.ProvenanceService`:

======  ===============================================  =================
Method  Path                                             Body / response
======  ===============================================  =================
GET     /api/v0/documents                                JSON list of ids
PUT     /api/v0/documents/<id>                           PROV-JSON body
GET     /api/v0/documents/<id>                           PROV-JSON
DELETE  /api/v0/documents/<id>                           204
GET     /api/v0/documents/<id>/stats                     JSON stats
GET     /api/v0/documents/<id>/subgraph?element=&
        direction=&max_depth=                            JSON list of qnames
GET     /api/v0/elements?prov_type=&label=&doc_id=       JSON hit list
GET     /api/v0/health                                   {"status": "ok"}
======  ===============================================  =================

Run it with :func:`serve` (returns a live ``ThreadingHTTPServer`` bound to
an ephemeral or given port) or embed :class:`ProvHandler` elsewhere.
Errors map to HTTP codes: unknown document → 404, invalid input → 400.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.errors import DocumentNotFoundError, ReproError, ServiceError
from repro.yprov.service import ProvenanceService

API_PREFIX = "/api/v0"


def _make_handler(service: ProvenanceService):
    """Build a request-handler class closed over *service*."""

    class ProvHandler(BaseHTTPRequestHandler):
        # silence per-request logging; tests and examples don't want it
        def log_message(self, fmt: str, *args: Any) -> None:  # noqa: D102
            pass

        # -- helpers -------------------------------------------------------
        def _send_json(self, payload: Any, status: int = 200) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_error_json(self, status: int, message: str) -> None:
            self._send_json({"error": message}, status=status)

        def _route(self) -> Tuple[str, Dict[str, str]]:
            parsed = urllib.parse.urlparse(self.path)
            query = {
                k: v[0] for k, v in urllib.parse.parse_qs(parsed.query).items()
            }
            return parsed.path, query

        def _doc_id(self, path: str) -> Optional[str]:
            prefix = f"{API_PREFIX}/documents/"
            if not path.startswith(prefix):
                return None
            rest = path[len(prefix):]
            return urllib.parse.unquote(rest.split("/", 1)[0]) or None

        # -- verbs -----------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            path, query = self._route()
            try:
                if path == f"{API_PREFIX}/health":
                    self._send_json({"status": "ok",
                                     "documents": len(service)})
                elif path == f"{API_PREFIX}/documents":
                    self._send_json(service.list_documents())
                elif path == f"{API_PREFIX}/elements":
                    hits = service.find_elements(
                        label=query.get("label"),
                        prov_type=query.get("prov_type"),
                        doc_id=query.get("doc_id"),
                    )
                    self._send_json(hits)
                elif path.endswith("/stats"):
                    doc_id = self._doc_id(path)
                    self._send_json(service.stats(doc_id))
                elif path.endswith("/subgraph"):
                    doc_id = self._doc_id(path)
                    element = query.get("element")
                    if not element:
                        raise ServiceError("missing 'element' query parameter")
                    depth = query.get("max_depth")
                    reachable = service.get_subgraph(
                        doc_id,
                        element,
                        direction=query.get("direction", "both"),
                        max_depth=int(depth) if depth else None,
                    )
                    self._send_json(reachable)
                else:
                    doc_id = self._doc_id(path)
                    if doc_id is None:
                        self._send_error_json(404, f"unknown path: {path}")
                        return
                    text = service.get_document_text(doc_id)
                    body = text.encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
            except DocumentNotFoundError as exc:
                self._send_error_json(404, str(exc))
            except (ServiceError, ValueError) as exc:
                self._send_error_json(400, str(exc))
            except ReproError as exc:
                self._send_error_json(400, str(exc))

        def do_PUT(self) -> None:  # noqa: N802
            path, _ = self._route()
            doc_id = self._doc_id(path)
            if doc_id is None:
                self._send_error_json(404, f"unknown path: {path}")
                return
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length).decode("utf-8")
            try:
                service.put_document(doc_id, body)
            except ReproError as exc:
                self._send_error_json(400, str(exc))
                return
            self._send_json({"stored": doc_id}, status=201)

        def do_DELETE(self) -> None:  # noqa: N802
            path, _ = self._route()
            doc_id = self._doc_id(path)
            if doc_id is None:
                self._send_error_json(404, f"unknown path: {path}")
                return
            try:
                service.delete_document(doc_id)
            except DocumentNotFoundError as exc:
                self._send_error_json(404, str(exc))
                return
            self.send_response(204)
            self.send_header("Content-Length", "0")
            self.end_headers()

    return ProvHandler


class ProvenanceServer:
    """A running HTTP front-end; use as a context manager in tests."""

    def __init__(self, service: ProvenanceService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(service))
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}{API_PREFIX}"

    def start(self) -> "ProvenanceServer":
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="yprov-rest", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "ProvenanceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def serve(service: ProvenanceService, host: str = "127.0.0.1",
          port: int = 0) -> ProvenanceServer:
    """Start the REST front-end on *port* (0 = ephemeral); returns the
    running server (caller stops it)."""
    return ProvenanceServer(service, host=host, port=port).start()
