"""Embedded property-graph database (the yProv service's Neo4j substitute).

Data model mirrors the property-graph model: nodes carry a set of *labels*
plus a property map; directed edges carry a *type* plus properties.
Features implemented because the service layer needs them:

* label index (always on) and optional ``(label, property)`` value indexes;
* uniqueness constraints on ``(label, property)``;
* pattern matching (:meth:`GraphDB.match_nodes` /
  :meth:`GraphDB.match_edges`) and bounded BFS traversal with edge-type
  filters (:meth:`GraphDB.traverse`);
* JSON persistence (:meth:`GraphDB.save` / :meth:`GraphDB.load`).

All operations are in-memory dict/set manipulations — adequate for the
document sizes the evaluation uses and benchmarked in
``benchmarks/bench_ablation_graphdb.py``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.atomicio import atomic_write_text
from repro.errors import ConstraintViolationError, GraphDBError, NodeNotFoundError

Properties = Dict[str, Any]


@dataclass(frozen=True)
class Node:
    """A graph node (immutable view; mutate through the DB API)."""

    id: int
    labels: FrozenSet[str]
    properties: Properties

    def has_label(self, label: str) -> bool:
        return label in self.labels


@dataclass(frozen=True)
class Edge:
    """A directed, typed edge."""

    id: int
    type: str
    src: int
    dst: int
    properties: Properties


class GraphDB:
    """In-memory labeled property graph with indexes and constraints."""

    def __init__(self) -> None:
        self._nodes: Dict[int, Node] = {}
        self._edges: Dict[int, Edge] = {}
        self._next_node = 0
        self._next_edge = 0
        self._out: Dict[int, Set[int]] = {}
        self._in: Dict[int, Set[int]] = {}
        self._label_index: Dict[str, Set[int]] = {}
        # (label, property) -> value -> node ids
        self._value_indexes: Dict[Tuple[str, str], Dict[Any, Set[int]]] = {}
        self._unique: Set[Tuple[str, str]] = set()

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def create_node(self, labels: Iterable[str], properties: Optional[Properties] = None) -> Node:
        """Create a node with *labels* and *properties*; returns the Node."""
        labels = frozenset(labels)
        if not labels:
            raise GraphDBError("a node requires at least one label")
        properties = dict(properties or {})
        self._check_unique(labels, properties, node_id=None)
        node = Node(self._next_node, labels, properties)
        self._next_node += 1
        self._nodes[node.id] = node
        self._out[node.id] = set()
        self._in[node.id] = set()
        for label in labels:
            self._label_index.setdefault(label, set()).add(node.id)
            for (ilabel, prop), index in self._value_indexes.items():
                if ilabel == label and prop in properties:
                    index.setdefault(properties[prop], set()).add(node.id)
        return node

    def get_node(self, node_id: int) -> Node:
        node = self._nodes.get(node_id)
        if node is None:
            raise NodeNotFoundError(f"node {node_id} does not exist")
        return node

    def update_node(self, node_id: int, properties: Properties) -> Node:
        """Merge *properties* into the node (None values delete keys)."""
        node = self.get_node(node_id)
        merged = dict(node.properties)
        for key, value in properties.items():
            if value is None:
                merged.pop(key, None)
            else:
                merged[key] = value
        self._check_unique(node.labels, merged, node_id=node_id)
        self._deindex_node(node)
        new = Node(node.id, node.labels, merged)
        self._nodes[node_id] = new
        self._index_node(new)
        return new

    def delete_node(self, node_id: int) -> None:
        """Delete a node and all its incident edges."""
        node = self.get_node(node_id)
        for edge_id in list(self._out[node_id] | self._in[node_id]):
            self.delete_edge(edge_id)
        self._deindex_node(node)
        for label in node.labels:
            self._label_index[label].discard(node_id)
        del self._nodes[node_id]
        del self._out[node_id]
        del self._in[node_id]

    def _index_node(self, node: Node) -> None:
        for (label, prop), index in self._value_indexes.items():
            if label in node.labels and prop in node.properties:
                index.setdefault(node.properties[prop], set()).add(node.id)

    def _deindex_node(self, node: Node) -> None:
        """Remove a node's entries from every covering value index."""
        for (label, prop), index in self._value_indexes.items():
            if label in node.labels and prop in node.properties:
                bucket = index.get(node.properties[prop])
                if bucket is not None:
                    bucket.discard(node.id)

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def create_edge(
        self, src: int, dst: int, type: str, properties: Optional[Properties] = None
    ) -> Edge:
        """Create a typed directed edge between existing nodes."""
        if src not in self._nodes:
            raise NodeNotFoundError(f"source node {src} does not exist")
        if dst not in self._nodes:
            raise NodeNotFoundError(f"target node {dst} does not exist")
        if not type:
            raise GraphDBError("edge type must be non-empty")
        edge = Edge(self._next_edge, type, src, dst, dict(properties or {}))
        self._next_edge += 1
        self._edges[edge.id] = edge
        self._out[src].add(edge.id)
        self._in[dst].add(edge.id)
        return edge

    def get_edge(self, edge_id: int) -> Edge:
        edge = self._edges.get(edge_id)
        if edge is None:
            raise GraphDBError(f"edge {edge_id} does not exist")
        return edge

    def delete_edge(self, edge_id: int) -> None:
        edge = self.get_edge(edge_id)
        self._out[edge.src].discard(edge_id)
        self._in[edge.dst].discard(edge_id)
        del self._edges[edge_id]

    # ------------------------------------------------------------------
    # indexes & constraints
    # ------------------------------------------------------------------
    def create_index(self, label: str, prop: str) -> None:
        """Build a value index over ``(label, property)`` (idempotent)."""
        key = (label, prop)
        if key in self._value_indexes:
            return
        index: Dict[Any, Set[int]] = {}
        for node_id in self._label_index.get(label, ()):
            node = self._nodes[node_id]
            if prop in node.properties:
                index.setdefault(node.properties[prop], set()).add(node_id)
        self._value_indexes[key] = index

    def has_index(self, label: str, prop: str) -> bool:
        """True when a value index exists over ``(label, property)``."""
        return (label, prop) in self._value_indexes

    def indexes(self) -> List[Tuple[str, str]]:
        """All ``(label, property)`` pairs with a value index, sorted."""
        return sorted(self._value_indexes)

    def create_unique_constraint(self, label: str, prop: str) -> None:
        """Enforce uniqueness of ``property`` among nodes with ``label``."""
        self.create_index(label, prop)
        for value, ids in self._value_indexes[(label, prop)].items():
            if len(ids) > 1:
                raise ConstraintViolationError(
                    f"existing nodes violate uniqueness of {label}.{prop}={value!r}"
                )
        self._unique.add((label, prop))

    def _check_unique(
        self, labels: FrozenSet[str], properties: Properties, node_id: Optional[int]
    ) -> None:
        for label, prop in self._unique:
            if label in labels and prop in properties:
                existing = self._value_indexes.get((label, prop), {}).get(
                    properties[prop], set()
                )
                others = existing - ({node_id} if node_id is not None else set())
                if others:
                    raise ConstraintViolationError(
                        f"uniqueness violation: {label}.{prop}={properties[prop]!r}"
                    )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def match_nodes(
        self,
        label: Optional[str] = None,
        properties: Optional[Properties] = None,
        predicate: Optional[Callable[[Node], bool]] = None,
    ) -> List[Node]:
        """Nodes matching a label, exact property values and/or a predicate.

        Uses a value index when one covers a requested property.
        """
        candidates: Optional[Set[int]] = None
        if label is not None:
            candidates = set(self._label_index.get(label, set()))
            if properties:
                for prop, value in properties.items():
                    index = self._value_indexes.get((label, prop))
                    if index is not None:
                        candidates &= index.get(value, set())
        if candidates is None:
            candidates = set(self._nodes)
        out = []
        for node_id in candidates:
            node = self._nodes[node_id]
            if properties and any(
                node.properties.get(k) != v for k, v in properties.items()
            ):
                continue
            if predicate is not None and not predicate(node):
                continue
            out.append(node)
        return sorted(out, key=lambda n: n.id)

    def match_edges(
        self,
        type: Optional[str] = None,
        src: Optional[int] = None,
        dst: Optional[int] = None,
    ) -> List[Edge]:
        """Edges filtered by type and/or endpoints, sorted by id."""
        if src is not None:
            pool: Iterable[int] = self._out.get(src, set())
        elif dst is not None:
            pool = self._in.get(dst, set())
        else:
            pool = self._edges.keys()
        out = []
        for edge_id in pool:
            edge = self._edges[edge_id]
            if type is not None and edge.type != type:
                continue
            if src is not None and edge.src != src:
                continue
            if dst is not None and edge.dst != dst:
                continue
            out.append(edge)
        return sorted(out, key=lambda e: e.id)

    def out_neighbors(self, node_id: int, type: Optional[str] = None) -> List[Node]:
        """Destination nodes of outgoing edges (optionally one type)."""
        self.get_node(node_id)
        return [
            self._nodes[self._edges[e].dst]
            for e in sorted(self._out[node_id])
            if type is None or self._edges[e].type == type
        ]

    def in_neighbors(self, node_id: int, type: Optional[str] = None) -> List[Node]:
        """Source nodes of incoming edges (optionally one type)."""
        self.get_node(node_id)
        return [
            self._nodes[self._edges[e].src]
            for e in sorted(self._in[node_id])
            if type is None or self._edges[e].type == type
        ]

    def traverse(
        self,
        start: int,
        direction: str = "out",
        types: Optional[Iterable[str]] = None,
        max_depth: Optional[int] = None,
    ) -> List[int]:
        """BFS closure node ids from *start* (excluding it), in visit order."""
        self.get_node(start)
        if direction not in ("out", "in", "both"):
            raise GraphDBError(f"invalid direction: {direction!r}")
        allowed = set(types) if types is not None else None
        seen: Set[int] = {start}
        order: List[int] = []
        frontier = [start]
        depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            nxt: List[int] = []
            for node_id in frontier:
                edge_ids: Set[int] = set()
                if direction in ("out", "both"):
                    edge_ids |= self._out[node_id]
                if direction in ("in", "both"):
                    edge_ids |= self._in[node_id]
                for edge_id in sorted(edge_ids):
                    edge = self._edges[edge_id]
                    if allowed is not None and edge.type not in allowed:
                        continue
                    other = edge.dst if edge.src == node_id else edge.src
                    if other not in seen:
                        seen.add(other)
                        order.append(other)
                        nxt.append(other)
            frontier = nxt
            depth += 1
        return order

    def traverse_many(
        self,
        starts: Iterable[int],
        direction: str = "out",
        types: Optional[Iterable[str]] = None,
        max_depth: Optional[int] = None,
    ) -> List[int]:
        """Multi-source BFS closure (excluding the start set), visit order.

        Semantically the union of :meth:`traverse` from each start, but a
        single BFS: each reachable node appears once, at its minimum depth
        from *any* start, and start nodes are excluded even when reachable
        from one another.  The query engine uses this to expand a whole
        seed set in one pass.
        """
        if direction not in ("out", "in", "both"):
            raise GraphDBError(f"invalid direction: {direction!r}")
        start_list = list(starts)
        for node_id in start_list:
            self.get_node(node_id)
        allowed = set(types) if types is not None else None
        seen: Set[int] = set(start_list)
        order: List[int] = []
        frontier = list(dict.fromkeys(start_list))
        depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            nxt: List[int] = []
            for node_id in frontier:
                edge_ids: Set[int] = set()
                if direction in ("out", "both"):
                    edge_ids |= self._out[node_id]
                if direction in ("in", "both"):
                    edge_ids |= self._in[node_id]
                for edge_id in sorted(edge_ids):
                    edge = self._edges[edge_id]
                    if allowed is not None and edge.type not in allowed:
                        continue
                    other = edge.dst if edge.src == node_id else edge.src
                    if other not in seen:
                        seen.add(other)
                        order.append(other)
                        nxt.append(other)
            frontier = nxt
            depth += 1
        return order

    # ------------------------------------------------------------------
    # stats & persistence
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def labels(self) -> Dict[str, int]:
        return {label: len(ids) for label, ids in sorted(self._label_index.items()) if ids}

    def save(self, path: Union[str, Path]) -> None:
        """Persist the graph (nodes, edges, indexes, constraints) as JSON."""
        doc = {
            "nodes": [
                {"id": n.id, "labels": sorted(n.labels), "properties": n.properties}
                for n in sorted(self._nodes.values(), key=lambda n: n.id)
            ],
            "edges": [
                {
                    "id": e.id,
                    "type": e.type,
                    "src": e.src,
                    "dst": e.dst,
                    "properties": e.properties,
                }
                for e in sorted(self._edges.values(), key=lambda e: e.id)
            ],
            "indexes": sorted(f"{l}|{p}" for l, p in self._value_indexes),
            "unique": sorted(f"{l}|{p}" for l, p in self._unique),
        }
        # sort_keys makes the bytes a function of graph content alone, so
        # semantically equal graphs persist identically (diffable backups)
        atomic_write_text(Path(path), json.dumps(doc, sort_keys=True))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "GraphDB":
        """Rebuild a graph persisted with :meth:`save`."""
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
        db = cls()
        id_map: Dict[int, int] = {}
        for spec in doc["nodes"]:
            node = db.create_node(spec["labels"], spec["properties"])
            id_map[spec["id"]] = node.id
        for spec in doc["edges"]:
            db.create_edge(
                id_map[spec["src"]], id_map[spec["dst"]], spec["type"], spec["properties"]
            )
        for key in doc.get("indexes", []):
            label, _, prop = key.partition("|")
            db.create_index(label, prop)
        for key in doc.get("unique", []):
            label, _, prop = key.partition("|")
            db.create_unique_constraint(label, prop)
        return db
