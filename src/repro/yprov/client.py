"""Resilient HTTP client for the yProv provenance service.

The paper centralizes PROV documents in a provenance management service
behind a RESTful API; on a Frontier-class machine the network and that
service are the least reliable parts of the system.  This client covers
the full ``/api/v0`` surface of :mod:`repro.yprov.rest` with, on every
call:

* a **per-request timeout** — a hung service can never stall training;
* **seeded exponential-backoff retries** (:mod:`repro.retry`) on
  transport-level failures (connection refused/reset, timeouts, torn
  responses, 5xx) — transient blips are absorbed;
* ``Retry-After`` honoring — when the server sheds load with ``429``/
  ``503`` the requested delay bounds the next retry from below;
* a three-state **circuit breaker** — after enough consecutive failures
  the client stops hammering the dying service ("open"), periodically
  lets one probe through ("half-open"), and resumes only once a probe
  succeeds ("closed").  The breaker clock is injectable, so state
  transitions are unit-testable without sleeping.

:meth:`ProvenanceClient.publish` adds the durability layer: a document
that cannot be delivered (transport failure or open breaker) is journaled
to a local :class:`~repro.yprov.spool.Spool` instead of being dropped,
and :meth:`ProvenanceClient.drain_spool` replays it when the service
recovers — at-least-once delivery, made effectively exactly-once by the
server's dedup on document id.

Everything is standard library: ``http.client`` underneath, no third-party
HTTP stack.
"""

from __future__ import annotations

import http.client
import json
import socket
import time as _time
import urllib.parse
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import (
    CircuitOpenError,
    DocumentNotFoundError,
    FleetError,
    JobNotFoundError,
    JobStateError,
    LeaseExpiredError,
    QueueFullError,
    ReproError,
    ServiceError,
    SpoolError,
    TransportError,
)
from repro.prov.document import ProvDocument
from repro.prov.provjson import to_provjson
from repro.retry import ExponentialBackoff, retry_call, seed_from_name
from repro.yprov.spool import DrainReport, Spool

__all__ = ["CircuitBreaker", "ProvenanceClient", "PublishResult"]


class CircuitBreaker:
    """Classic three-state circuit breaker (closed → open → half-open).

    *closed*: calls flow; consecutive failures are counted.
    *open*: after ``failure_threshold`` consecutive failures, calls are
    refused locally (:class:`~repro.errors.CircuitOpenError`) for
    ``reset_timeout_s``.
    *half-open*: after the cool-down one probe call is admitted; success
    closes the breaker, failure re-opens it for another full cool-down.

    ``clock`` is injectable (monotonic seconds) so tests drive transitions
    deterministically.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ServiceError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s < 0:
            raise ServiceError(
                f"reset_timeout_s must be >= 0, got {reset_timeout_s}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self._clock = clock or _time.monotonic
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        """Current state, accounting for cool-down expiry."""
        if self._state == self.OPEN and self._cooled_down():
            return self.HALF_OPEN
        return self._state

    def _cooled_down(self) -> bool:
        return self._clock() - self._opened_at >= self.reset_timeout_s

    def retry_in(self) -> float:
        """Seconds until the breaker will admit a probe (0 when it would)."""
        if self._state != self.OPEN:
            return 0.0
        return max(0.0, self.reset_timeout_s - (self._clock() - self._opened_at))

    def before_call(self) -> None:
        """Gate one call; raises :class:`CircuitOpenError` when refused."""
        if self._state == self.OPEN:
            if not self._cooled_down():
                raise CircuitOpenError(
                    f"circuit breaker open; retry in {self.retry_in():.1f}s",
                    retry_in_s=self.retry_in(),
                )
            # cool-down elapsed: admit exactly one probe at a time
            if self._probe_in_flight:
                raise CircuitOpenError(
                    "circuit breaker half-open; probe already in flight",
                    retry_in_s=self.retry_in(),
                )
            self._probe_in_flight = True

    def record_success(self) -> None:
        self._failures = 0
        self._probe_in_flight = False
        self._state = self.CLOSED

    def record_failure(self) -> None:
        """Count a failure; open at the threshold, re-open a failed probe."""
        if self._state == self.OPEN:
            # a failed half-open probe re-opens for a fresh cool-down
            self._opened_at = self._clock()
            self._probe_in_flight = False
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._state = self.OPEN
            self._opened_at = self._clock()
            self._probe_in_flight = False


@dataclass(frozen=True)
class PublishResult:
    """Outcome of one :meth:`ProvenanceClient.publish` call."""

    doc_id: str
    acked: bool
    spooled: bool

    @property
    def safe(self) -> bool:
        """The document is durably either at the service or in the spool."""
        return self.acked or self.spooled


class ProvenanceClient:
    """HTTP client for the ``/api/v0`` provenance service surface.

    ``base_url`` is the service root including the API prefix, e.g.
    ``http://127.0.0.1:3000/api/v0`` (what
    :attr:`~repro.yprov.rest.ProvenanceServer.url` returns).  ``transport``
    is injectable for tests: a callable ``(method, url, body, timeout_s) ->
    (status, headers_dict, body_bytes)`` that raises ``OSError`` or
    ``http.client.HTTPException`` on transport failure.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 5.0,
        retries: int = 3,
        backoff: Optional[ExponentialBackoff] = None,
        breaker: Optional[CircuitBreaker] = None,
        spool: Optional[Union[Spool, str]] = None,
        sleep: Optional[Callable[[float], None]] = None,
        transport: Optional[Callable[..., Tuple[int, Dict[str, str], bytes]]] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        if transport is None:
            # fail fast on a base_url the default transport can never reach
            # (e.g. https://) instead of erroring on every publish
            scheme = urllib.parse.urlsplit(self.base_url).scheme
            if scheme != "http":
                raise ServiceError(
                    f"unsupported URL scheme {scheme!r} in base_url "
                    f"{base_url!r}; the built-in transport speaks plain "
                    f"http only (pass a custom transport= otherwise)"
                )
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)
        self.backoff = backoff or ExponentialBackoff(
            base_s=0.05, max_s=5.0, jitter=0.5, seed=seed_from_name(self.base_url)
        )
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.spool = Spool(spool) if isinstance(spool, str) else spool
        self._sleep = sleep
        self._transport = transport or _urllib_transport

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    def _send_once(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One attempt: breaker gate → transport → error mapping."""
        self.breaker.before_call()
        try:
            status, headers, payload = self._transport(
                method, f"{self.base_url}{path}", body, self.timeout_s
            )
        except (OSError, http.client.HTTPException) as exc:
            self.breaker.record_failure()
            raise TransportError(
                f"{method} {path} failed: {exc.__class__.__name__}: {exc}"
            ) from exc
        except BaseException:
            # any other transport exception still counts as a failed call;
            # recording it keeps the breaker consistent (in particular it
            # clears a half-open probe, which would otherwise wedge the
            # breaker into refusing every future call)
            self.breaker.record_failure()
            raise
        if status == 429 or status >= 500:
            # overload / server fault: retryable, honoring Retry-After
            self.breaker.record_failure()
            raise TransportError(
                f"{method} {path} -> HTTP {status}: "
                f"{_error_message(payload)}",
                status=status,
                retry_after_s=_parse_retry_after(headers),
            )
        self.breaker.record_success()
        if status >= 400:
            raise _map_client_error(status, method, path, payload)
        return status, headers, payload

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, bytes]:
        status, _, payload = retry_call(
            lambda: self._send_once(method, path, body),
            retries=self.retries,
            backoff=self.backoff,
            exceptions=(TransportError,),
            sleep=self._sleep,
        )
        return status, payload

    def _get_json(self, path: str) -> Any:
        _, payload = self._request("GET", path)
        return json.loads(payload.decode("utf-8"))

    # ------------------------------------------------------------------
    # /api/v0 surface
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """``GET /health`` — the service's own view of its state."""
        return self._get_json("/health")

    def list_documents(self) -> List[str]:
        """``GET /documents``."""
        return self._get_json("/documents")

    def get_document_text(self, doc_id: str) -> str:
        """``GET /documents/<id>`` — verbatim PROV-JSON text."""
        _, payload = self._request("GET", f"/documents/{_quote(doc_id)}")
        return payload.decode("utf-8")

    def get_document(self, doc_id: str) -> ProvDocument:
        """``GET /documents/<id>`` parsed into a :class:`ProvDocument`."""
        return ProvDocument.from_json(self.get_document_text(doc_id))

    def put_document(
        self, doc_id: str, document: Union[ProvDocument, str]
    ) -> str:
        """``PUT /documents/<id>`` — store/replace; returns the id."""
        text = document if isinstance(document, str) else to_provjson(document)
        self._request(
            "PUT", f"/documents/{_quote(doc_id)}", text.encode("utf-8")
        )
        return doc_id

    def delete_document(self, doc_id: str) -> None:
        """``DELETE /documents/<id>``."""
        self._request("DELETE", f"/documents/{_quote(doc_id)}")

    def put_documents_batch(
        self, records: List[Tuple[str, str]]
    ) -> List[Dict[str, Any]]:
        """``POST /documents:batch`` — one framed batch, per-record results.

        ``records`` is ``[(doc_id, provjson_text), ...]``; the return
        value is the server's result list in the same order, each entry
        ``{"id": ..., "status": "stored"|"rejected"|"unavailable", ...}``.
        The whole frame travels as one request, so a batch of N documents
        costs one round-trip instead of N.
        """
        from repro.yprov.ingest import encode_batch  # avoid import cycle

        _, payload = self._request(
            "POST", "/documents:batch", encode_batch(records)
        )
        decoded = json.loads(payload.decode("utf-8"))
        results = decoded.get("results")
        if not isinstance(results, list):
            raise ServiceError(
                f"malformed batch response: {decoded!r:.200}"
            )
        return results

    def supports_batch(self) -> bool:
        """Whether the service advertises the batch ingest capability.

        Probes ``/health`` once and caches the answer; unreachable or
        pre-batch servers simply report ``False`` so callers fall back to
        per-document PUTs.
        """
        cached = getattr(self, "_supports_batch", None)
        if cached is not None:
            return cached
        try:
            capabilities = self.health().get("capabilities", [])
        except (TransportError, CircuitOpenError, ServiceError):
            return False  # don't cache: the server may come back newer
        self._supports_batch = "batch" in capabilities
        return self._supports_batch

    def compact(self) -> Dict[str, Any]:
        """``POST /compact`` — fold sealed WALs into an immutable segment."""
        _, payload = self._request("POST", "/compact")
        return json.loads(payload.decode("utf-8"))

    def stats(self, doc_id: str) -> Dict[str, int]:
        """``GET /documents/<id>/stats``."""
        return self._get_json(f"/documents/{_quote(doc_id)}/stats")

    def get_subgraph(
        self,
        doc_id: str,
        element: str,
        direction: str = "both",
        max_depth: Optional[int] = None,
    ) -> List[str]:
        """``GET /documents/<id>/subgraph?element=&direction=&max_depth=``."""
        query = {"element": element, "direction": direction}
        if max_depth is not None:
            query["max_depth"] = str(max_depth)
        return self._get_json(
            f"/documents/{_quote(doc_id)}/subgraph?"
            + urllib.parse.urlencode(query)
        )

    def find_elements(
        self,
        label: Optional[str] = None,
        prov_type: Optional[str] = None,
        doc_id: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """``GET /elements?prov_type=&label=&doc_id=``."""
        query = {
            k: v
            for k, v in (
                ("label", label), ("prov_type", prov_type), ("doc_id", doc_id)
            )
            if v is not None
        }
        suffix = f"?{urllib.parse.urlencode(query)}" if query else ""
        return self._get_json(f"/elements{suffix}")

    def query(self, doc_id: Optional[str], query_text: str) -> Dict[str, Any]:
        """``POST /documents/<id>/query`` — run a PROVQL query.

        ``doc_id=None`` posts to ``/query`` instead: the query runs across
        every document the service (or, on a router, the whole cluster)
        holds.  Returns the decoded response: ``{"rows": [...], "plan":
        [...], "stats": {...}}``.  Syntax/plan errors surface as
        :class:`~repro.errors.ServiceError` (HTTP 400 from the server);
        an unknown document raises
        :class:`~repro.errors.DocumentNotFoundError`.
        """
        path = (
            "/query" if doc_id is None
            else f"/documents/{_quote(doc_id)}/query"
        )
        _, payload = self._request(
            "POST", path, query_text.encode("utf-8")
        )
        return json.loads(payload.decode("utf-8"))

    # ------------------------------------------------------------------
    # self-healing surface (anti-entropy, scrub, repairs)
    # ------------------------------------------------------------------
    def digest(
        self,
        buckets: Optional[int] = None,
        bucket: Optional[int] = None,
    ) -> Dict[str, Any]:
        """``GET /digest`` — bucketed content digests for anti-entropy.

        Without ``bucket`` returns one roll-up hash per non-empty bucket;
        with it, the full ``doc_id → sha256`` map of that bucket.  The
        node on the other end must agree on ``buckets`` for the roll-ups
        to be comparable.
        """
        query = {}
        if buckets is not None:
            query["buckets"] = str(buckets)
        if bucket is not None:
            query["bucket"] = str(bucket)
        suffix = f"?{urllib.parse.urlencode(query)}" if query else ""
        return self._get_json(f"/digest{suffix}")

    def document_digest(self, doc_id: str) -> Dict[str, Any]:
        """``GET /documents/<id>/digest`` — one document's content hash."""
        return self._get_json(f"/documents/{_quote(doc_id)}/digest")

    def scrub(self) -> Dict[str, Any]:
        """``POST /scrub`` — bit-rot pass: a shard re-verifies its stored
        checksums (quarantining corrupt copies); a router fans out."""
        _, payload = self._request("POST", "/scrub")
        return json.loads(payload.decode("utf-8"))

    def cluster_repairs(self) -> Dict[str, Any]:
        """``GET /cluster/repairs`` — the router's pending repair queue."""
        return self._get_json("/cluster/repairs")

    def run_repairs(self) -> Dict[str, Any]:
        """``POST /cluster/repairs:run`` — drain the repair queue now."""
        _, payload = self._request("POST", "/cluster/repairs:run")
        return json.loads(payload.decode("utf-8"))

    def sweep(self) -> Dict[str, Any]:
        """``POST /cluster/sweep`` — run one anti-entropy sweep now."""
        _, payload = self._request("POST", "/cluster/sweep")
        return json.loads(payload.decode("utf-8"))

    # ------------------------------------------------------------------
    # job fleet surface (/jobs...)
    # ------------------------------------------------------------------
    def _job_request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Any:
        """One fleet call: JSON in/out, 429 mapped to ``QueueFullError``.

        The generic retry machinery treats 429 as a retryable overload
        (honoring ``Retry-After``); when the fleet is *still* full after
        the retries, the surviving :class:`TransportError` becomes the
        typed :class:`~repro.errors.QueueFullError` the in-process queue
        would have raised — callers are queue-implementation agnostic.
        """
        encoded = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        try:
            status, payload = self._request(method, path, encoded)
        except TransportError as exc:
            if exc.status == 429:
                raise QueueFullError(
                    str(exc), retry_after_s=exc.retry_after_s or 1.0
                ) from exc
            raise
        if status == 204 or not payload:
            return None
        return json.loads(payload.decode("utf-8"))

    def submit_job(
        self,
        spec: Dict[str, Any],
        tenant: str = "default",
        max_attempts: Optional[int] = None,
    ) -> Dict[str, Any]:
        """``POST /jobs`` — durably submit one job; returns its status.

        The 201 ack means the scheduler fsynced the submit record: the
        job survives a SIGKILL of any fleet participant from here on.
        Overflow raises :class:`~repro.errors.QueueFullError` (after the
        transport retries honored ``Retry-After``).
        """
        body: Dict[str, Any] = {"spec": dict(spec), "tenant": tenant}
        if max_attempts is not None:
            body["max_attempts"] = int(max_attempts)
        return self._job_request("POST", "/jobs", body)

    def get_job(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/<id>`` — full status of one job."""
        return self._job_request("GET", f"/jobs/{_quote(job_id)}")

    def list_jobs(
        self,
        state: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """``GET /jobs?state=&tenant=`` — brief status rows."""
        query = {
            k: v for k, v in (("state", state), ("tenant", tenant))
            if v is not None
        }
        suffix = f"?{urllib.parse.urlencode(query)}" if query else ""
        return self._job_request("GET", f"/jobs{suffix}")

    def lease_job(self, worker_id: str) -> Optional[Dict[str, Any]]:
        """``POST /jobs:lease`` — fair-share pick; ``None`` when idle."""
        decoded = self._job_request(
            "POST", "/jobs:lease", {"worker": worker_id}
        )
        return decoded.get("lease") if isinstance(decoded, dict) else None

    def renew_job(
        self, job_id: str, worker_id: str, attempt: int
    ) -> Dict[str, Any]:
        """``POST /jobs/<id>:renew`` — heartbeat-extend a held lease."""
        return self._job_request(
            "POST", f"/jobs/{_quote(job_id)}:renew",
            {"worker": worker_id, "attempt": int(attempt)},
        )

    def complete_job(
        self,
        job_id: str,
        worker_id: str,
        attempt: int,
        result: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """``POST /jobs/<id>:complete`` — report success for a lease."""
        body: Dict[str, Any] = {"worker": worker_id, "attempt": int(attempt)}
        if result is not None:
            body["result"] = dict(result)
        return self._job_request(
            "POST", f"/jobs/{_quote(job_id)}:complete", body
        )

    def fail_job(
        self, job_id: str, worker_id: str, attempt: int, error: str
    ) -> Dict[str, Any]:
        """``POST /jobs/<id>:fail`` — report a clean failure for a lease."""
        return self._job_request(
            "POST", f"/jobs/{_quote(job_id)}:fail",
            {"worker": worker_id, "attempt": int(attempt),
             "error": str(error)},
        )

    def requeue_job(self, job_id: str) -> Dict[str, Any]:
        """``POST /jobs/<id>:requeue`` — return a DLQ'd job to pending."""
        return self._job_request(
            "POST", f"/jobs/{_quote(job_id)}:requeue", {}
        )

    def purge_job(self, job_id: str) -> None:
        """``DELETE /jobs/<id>`` — drop a settled job and its state dir."""
        self._job_request("DELETE", f"/jobs/{_quote(job_id)}")

    def fleet_stats(self) -> Dict[str, Any]:
        """``GET /jobs:stats`` — queue counters and provenance health."""
        return self._job_request("GET", "/jobs:stats")

    # ------------------------------------------------------------------
    # at-least-once publishing
    # ------------------------------------------------------------------
    def publish(
        self, doc_id: str, document: Union[ProvDocument, str]
    ) -> PublishResult:
        """Deliver *document* to the service, or durably spool it.

        Never loses an accepted document: on transport failure or an open
        breaker the document goes to the spool (when one is configured)
        and the call returns ``spooled=True`` instead of raising.  Only
        when there is no spool — or the spool itself refuses — does the
        failure propagate.  Non-transport rejections (invalid document,
        bad id) always propagate: spooling them would just fail again.
        """
        text = document if isinstance(document, str) else to_provjson(document)
        try:
            self.put_document(doc_id, text)
            return PublishResult(doc_id=doc_id, acked=True, spooled=False)
        except (TransportError, CircuitOpenError):
            if self.spool is None:
                raise
            self.spool.enqueue(doc_id, text)  # SpoolError (e.g. full) propagates
            return PublishResult(doc_id=doc_id, acked=False, spooled=True)

    def drain_spool(
        self,
        stop_on_transport_error: bool = True,
        batch_size: int = 64,
    ) -> DrainReport:
        """Replay spooled documents through this client (FIFO, idempotent).

        When the server advertises the ``batch`` capability on
        ``/health`` the spool drains ``batch_size`` documents per
        round-trip through ``POST /documents:batch``; otherwise it falls
        back to one ``PUT`` per document.  Both paths keep the same
        exactly-once story — entries are deleted only after the server
        acks them, and replays dedup on document id.
        """
        if self.spool is None:
            raise SpoolError("client has no spool configured")
        if batch_size > 1 and self.supports_batch():
            return self.spool.drain_batched(
                self,
                batch_size=batch_size,
                stop_on_transport_error=stop_on_transport_error,
            )
        return self.spool.drain(
            self, stop_on_transport_error=stop_on_transport_error
        )


# ----------------------------------------------------------------------
# default transport + helpers
# ----------------------------------------------------------------------
def _urllib_transport(
    method: str, url: str, body: Optional[bytes], timeout_s: float
) -> Tuple[int, Dict[str, str], bytes]:
    """One HTTP exchange over ``http.client`` with a hard socket timeout.

    Returns ``(status, headers, body)`` for *every* HTTP status — error
    mapping is the caller's job — and raises ``OSError`` /
    ``http.client.HTTPException`` for network-level failures (refused,
    reset, timeout, torn response).
    """
    parts = urllib.parse.urlsplit(url)
    if parts.scheme != "http":
        raise ServiceError(f"unsupported URL scheme: {url!r}")
    conn = http.client.HTTPConnection(
        parts.hostname or "127.0.0.1", parts.port or 80, timeout=timeout_s
    )
    try:
        path = parts.path + (f"?{parts.query}" if parts.query else "")
        headers = {"Connection": "close"}
        if body is not None:
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=body, headers=headers)
        resp = conn.getresponse()
        payload = resp.read()  # IncompleteRead on torn responses
        return resp.status, {k.lower(): v for k, v in resp.getheaders()}, payload
    except socket.timeout as exc:
        raise TimeoutError(f"request timed out after {timeout_s}s") from exc
    finally:
        conn.close()


def _parse_retry_after(headers: Dict[str, str]) -> Optional[float]:
    raw = headers.get("retry-after")
    if raw is None:
        return None
    try:
        return max(0.0, float(raw))
    except ValueError:
        return None  # HTTP-date form: ignore rather than guess


def _error_message(payload: bytes) -> str:
    try:
        parsed = json.loads(payload.decode("utf-8"))
        return str(parsed.get("error", parsed))
    except (ValueError, UnicodeDecodeError, AttributeError):
        return payload[:200].decode("utf-8", errors="replace")


#: REST ``code`` field (fleet error protocol) -> typed client exception.
_FLEET_ERROR_CODES = {
    "job_not_found": JobNotFoundError,
    "lease_expired": LeaseExpiredError,
    "job_state": JobStateError,
    "fleet": FleetError,
}


def _error_code(payload: bytes) -> Optional[str]:
    """The machine-readable ``code`` of a JSON error body, if any."""
    try:
        parsed = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if isinstance(parsed, dict) and isinstance(parsed.get("code"), str):
        return parsed["code"]
    return None


def _map_client_error(
    status: int, method: str, path: str, payload: bytes
) -> ReproError:
    message = f"{method} {path} -> HTTP {status}: {_error_message(payload)}"
    code = _error_code(payload)
    if code in _FLEET_ERROR_CODES:
        # fleet replies carry a code so the typed exception survives the
        # wire: workers fence on LeaseExpiredError whether the queue is
        # in-process or behind this client
        return _FLEET_ERROR_CODES[code](message)
    if status == 404:
        return DocumentNotFoundError(message)
    return ServiceError(message)


def _quote(doc_id: str) -> str:
    return urllib.parse.quote(doc_id, safe="")
