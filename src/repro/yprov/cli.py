"""``yprov`` command-line interface.

Mirrors the yProv CLI: "a set of commands for invoking the RESTful APIs".
All commands operate on a persistent service rooted at ``--root``
(default ``.yprov``)::

    yprov push run1 prov/demo_0/prov.json     # store a document
    yprov list                                # list stored documents
    yprov get run1 -o out.json                # retrieve a document
    yprov delete run1
    yprov lineage run1 'ex:artifact/model.bin' --direction upstream
    yprov query run1 "MATCH entity WHERE label ~ 'model' RETURN *" --explain
    yprov stats run1
    yprov validate prov/demo_0/prov.json      # offline PROV-CONSTRAINTS check
    yprov handle mint run1
    yprov handle resolve hdl:20.500.repro/abc -o out.json
    yprov crate-validate prov/demo_0          # RO-Crate check
    yprov recover prov/demo_0                 # rebuild prov.json from journal.wal

Transport commands talk to a *remote* service over HTTP with the resilient
client (timeouts, retries, circuit breaker, durable spool)::

    yprov publish run1 prov/demo_0/prov.json --url http://host:3000/api/v0
    yprov spool list                          # documents parked offline
    yprov spool drain --url http://host:3000/api/v0
    yprov spool purge
    yprov status --url http://host:3000/api/v0   # role, liveness, lag

A replicated shard cluster (:mod:`repro.yprov.cluster`) serves the same
API through a router::

    yprov --root .yprov-cluster cluster serve --shards 3 --replication 1
    yprov query - "MATCH entity RETURN *" --url http://host:3000/api/v0
    yprov lint --cluster .yprov-cluster/cluster.json   # replication audit

Static analysis (:mod:`repro.lint`) over run directories and the codebase::

    yprov lint prov/demo_0                    # provenance lint (PL1xx rules)
    yprov lint --self                         # codebase self-lint (SL2xx rules)
    yprov lint --fleet .yprov/fleet           # fleet audit (PL116-PL118)
    yprov lint prov/demo_0 --format sarif -o lint.sarif
    yprov lint prov/demo_0 --baseline lint-baseline.json --update-baseline

Lint exit codes: 0 = clean, 1 = findings at/above ``--fail-on``
(default ``error``), 2 = the linter itself failed (bad target, bad
baseline, unknown rule id).

Durable workflow orchestration (:mod:`repro.workflow`)::

    yprov wf run pipeline.py --state-dir wfstate      # journaled execution
    yprov wf status --state-dir wfstate               # live / hung / dead?
    yprov wf resume pipeline.py --state-dir wfstate   # continue after a crash

A fault-tolerant job fleet (:mod:`repro.fleet`) runs workflow jobs over
lease-based workers, with fair-share scheduling and a dead-letter
queue.  The scheduler and the workers share only the fleet root (the
workflow journals) and the REST API::

    yprov fleet serve --fleet-root .fleet --weight team-a=2 --weight team-b=1
    yprov fleet work --url http://host:3000/api/v0 --fleet-root .fleet
    yprov jobs submit --workflow pipeline.py --url http://host:3000/api/v0
    yprov jobs status job-abc123 --url http://host:3000/api/v0
    yprov jobs list --state pending --url http://host:3000/api/v0
    yprov jobs dlq --url http://host:3000/api/v0     # quarantined jobs
    yprov jobs retry job-abc123 --url http://host:3000/api/v0
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.atomicio import atomic_write_text
from repro.errors import ReproError
from repro.prov.document import ProvDocument
from repro.prov.validation import validate_document
from repro.yprov.explorer import Explorer
from repro.yprov.handle import HandleSystem
from repro.yprov.service import ProvenanceService


def _service(args: argparse.Namespace) -> ProvenanceService:
    return ProvenanceService(
        root=args.root, storage=getattr(args, "storage", "auto")
    )


def _handles(args: argparse.Namespace, service: ProvenanceService) -> HandleSystem:
    return HandleSystem(service, registry_path=Path(args.root) / "handles.json")


def cmd_push(args: argparse.Namespace) -> int:
    """Handle ``yprov push``: store a PROV-JSON document."""
    service = _service(args)
    text = Path(args.file).read_text(encoding="utf-8")
    service.put_document(args.doc_id, text)
    print(f"stored {args.doc_id}")
    return 0


def cmd_get(args: argparse.Namespace) -> int:
    """Handle ``yprov get``: retrieve a stored document."""
    service = _service(args)
    text = service.get_document_text(args.doc_id)
    if args.output:
        atomic_write_text(Path(args.output), text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    """Handle ``yprov list``: list stored document ids."""
    service = _service(args)
    for doc_id in service.list_documents():
        print(doc_id)
    return 0


def cmd_delete(args: argparse.Namespace) -> int:
    """Handle ``yprov delete``: remove a stored document."""
    service = _service(args)
    service.delete_document(args.doc_id)
    print(f"deleted {args.doc_id}")
    return 0


def cmd_lineage(args: argparse.Namespace) -> int:
    """Handle ``yprov lineage``: print the closure of an element."""
    service = _service(args)
    explorer = Explorer(service)
    for qn in explorer.lineage_of(args.doc_id, args.element, direction=args.direction):
        print(qn)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Handle ``yprov query``: run a PROVQL query against a document.

    ``doc_id`` of ``-`` queries across *every* stored document — against
    a cluster router this scatter-gathers over all shards.
    """
    import json as _json

    doc_id = None if args.doc_id == "-" else args.doc_id
    query_text = args.query
    if args.explain and not query_text.lstrip().lower().startswith("explain"):
        query_text = "EXPLAIN " + query_text
    if args.url:
        from repro.yprov.client import ProvenanceClient

        result = ProvenanceClient(args.url).query(doc_id, query_text)
    else:
        result = _service(args).query(doc_id, query_text).to_dict()
    if args.format == "json":
        print(_json.dumps(result, indent=2, sort_keys=True))
        return 0
    if result["stats"].get("explained"):
        for line in result["plan"]:
            print(line)
        return 0
    rows = result["rows"]
    if rows:
        columns = list(rows[0].keys())
        print("\t".join(columns))
        for row in rows:
            print("\t".join("" if row[c] is None else str(row[c]) for c in columns))
    print(f"({len(rows)} rows)")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Handle ``yprov stats``: print structural statistics."""
    service = _service(args)
    explorer = Explorer(service)
    for key, value in explorer.summary(args.doc_id).items():
        print(f"{key}: {value}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Handle ``yprov validate``: PROV-CONSTRAINTS check of a file."""
    doc = ProvDocument.load(args.file)
    report = validate_document(doc, require_declared=args.strict)
    for err in report.errors:
        print(f"ERROR: {err}")
    for warning in report.warnings:
        print(f"warning: {warning}")
    print(report.summary())
    return 0 if report.is_valid else 1


def cmd_handle_mint(args: argparse.Namespace) -> int:
    """Handle ``yprov handle mint``: mint a persistent identifier."""
    service = _service(args)
    record = _handles(args, service).mint(args.doc_id, suffix=args.suffix)
    print(record.handle)
    return 0


def cmd_handle_resolve(args: argparse.Namespace) -> int:
    """Handle ``yprov handle resolve``: fetch the document behind a handle."""
    service = _service(args)
    doc = _handles(args, service).resolve(args.handle)
    text = doc.to_json()
    if args.output:
        atomic_write_text(Path(args.output), text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_handle_list(args: argparse.Namespace) -> int:
    """Handle ``yprov handle list``: list minted handles."""
    service = _service(args)
    for record in _handles(args, service).list_handles():
        print(f"{record.handle}\t{record.doc_id}\t{record.description}")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    """Handle ``yprov diff``: element/relation diff of two PROV-JSON files."""
    from repro.yprov.explorer import Explorer

    left = ProvDocument.load(args.left)
    right = ProvDocument.load(args.right)
    diff = Explorer().diff(left, right)
    for qn in diff.only_left:
        print(f"- {qn}")
    for qn in diff.only_right:
        print(f"+ {qn}")
    for qn in diff.changed:
        print(f"~ {qn}")
    print(
        f"relations: -{diff.relations_only_left} +{diff.relations_only_right}"
    )
    print("identical" if diff.is_identical else "different")
    return 0 if diff.is_identical else 1


def cmd_render(args: argparse.Namespace) -> int:
    """Handle ``yprov render``: write a standalone HTML view of a file."""
    from repro.yprov.render import export_html

    doc = ProvDocument.load(args.file)
    out = export_html(doc, args.output, title=Path(args.file).stem)
    print(f"wrote {out}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Handle ``yprov serve``: run the HTTP front-end until interrupted."""
    from repro.yprov.rest import serve

    service = _service(args)
    server = serve(service, host=args.host, port=args.port,
                   shard_id=args.shard_id)
    print(f"yProv service listening on {server.url} "
          f"({len(service)} documents) — Ctrl-C to stop", flush=True)
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    """Handle ``yprov status``: one node's ``/health`` view.

    Works against any node — a single service, a cluster shard or the
    router (whose report adds per-shard liveness and replication lag).
    """
    import json as _json

    from repro.yprov.client import ProvenanceClient

    health = ProvenanceClient(
        args.url, timeout_s=args.timeout, retries=args.retries
    ).health()
    if args.format == "json":
        print(_json.dumps(health, indent=2, sort_keys=True))
        return 0
    role = health.get("role", "?")
    shard = health.get("shard_id")
    identity = f"{role}" + (f" [{shard}]" if shard else "")
    print(f"{identity}: {health.get('status', '?')} "
          f"({health.get('documents', '?')} documents, "
          f"{health.get('in_flight', '?')} in flight, "
          f"replication lag {health.get('replication_lag', '?')})")
    for shard_id, state in sorted(health.get("shards", {}).items()):
        print(f"  {shard_id}: {state}")
    for tenant, counters in sorted(health.get("tenants", {}).items()):
        print(f"  tenant {tenant}: {counters['in_flight']} in flight, "
              f"{counters['rejected_total']} rejected")
    return 0 if health.get("status") == "ok" else 1


def cmd_cluster_serve(args: argparse.Namespace) -> int:
    """Handle ``yprov cluster serve``: router + N shards in one process.

    Shards persist under ``--root/<shard-id>/`` and the membership
    manifest is written to ``--root/cluster.json`` (auditable offline
    with ``yprov lint --cluster``).
    """
    from repro.yprov.cluster import LocalCluster

    cluster = LocalCluster(
        n_shards=args.shards,
        replication=args.replication,
        root=args.root,
        host=args.host,
        router_port=args.port,
        heartbeat_interval_s=args.heartbeat_interval,
        sweep_interval_s=args.sweep_interval,
        scrub_interval_s=args.scrub_interval,
    )
    try:
        states = cluster.router.detector.states()
        print(f"yProv cluster router listening on {cluster.url} "
              f"({args.shards} shards, replication={args.replication}) "
              f"— Ctrl-C to stop", flush=True)
        for info in cluster.router.shard_infos():
            print(f"  {info.shard_id}: {info.url} "
                  f"[{states.get(info.shard_id, '?')}]", flush=True)
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        cluster.stop()
    return 0


def cmd_cluster_route(args: argparse.Namespace) -> int:
    """Handle ``yprov cluster route``: a standalone router process.

    Fronts already-running shard nodes (``--shard id=url``, repeatable)
    with a durable repair journal under ``--state-dir`` — kill this
    process at any point and a restart over the same state dir replays
    the pending repairs.  The chaos driver uses exactly that property.
    """
    from repro.yprov.cluster import (
        AntiEntropy,
        ClusterRouter,
        Heartbeater,
        RouterConfig,
        ShardInfo,
    )
    from repro.yprov.rest import serve

    shards = []
    for spec in args.shard:
        shard_id, sep, url = spec.partition("=")
        if not sep or not shard_id or not url:
            print(f"error: --shard must be id=url, got {spec!r}",
                  file=sys.stderr)
            return 2
        shards.append(ShardInfo(shard_id=shard_id, url=url))
    config = RouterConfig(
        replication=args.replication, read_repair=args.read_repair
    )
    router = ClusterRouter(shards, config=config, state_dir=args.state_dir)
    heartbeater = Heartbeater(
        router.detector,
        interval_s=args.heartbeat_interval,
        on_change=router.on_membership_change,
    ).start()
    sweeper = AntiEntropy(
        router,
        buckets=config.digest_buckets,
        interval_s=args.sweep_interval or 30.0,
    )
    if args.sweep_interval is not None:
        sweeper.start()
    server = serve(
        router, host=args.host, port=args.port,
        node_role="router", health_extra=router.cluster_health,
    )
    replayed = router.replication_lag
    print(f"yProv cluster router listening on {server.url} "
          f"({len(shards)} shards, replication={args.replication}, "
          f"{replayed} repairs replayed) — Ctrl-C to stop", flush=True)
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        heartbeater.stop()
        server.stop()
        router.close()
    return 0


def cmd_cluster_repairs(args: argparse.Namespace) -> int:
    """Handle ``yprov cluster repairs``: show (and drain) the queue."""
    from repro.yprov.client import ProvenanceClient

    client = ProvenanceClient(args.url, timeout_s=args.timeout, retries=1)
    payload = client.cluster_repairs()
    pending = payload.get("pending", [])
    print(f"{len(pending)} pending repair(s)")
    for doc_id, shard_id in pending:
        print(f"  {doc_id} -> {shard_id}")
    if args.run:
        drained = client.run_repairs()
        print(f"repaired {drained.get('repaired', 0)} cop(ies)")
    return 0


def cmd_cluster_sweep(args: argparse.Namespace) -> int:
    """Handle ``yprov cluster sweep``: one anti-entropy pass, now.

    Exit 0 when the sweep found nothing to repair, 1 when it enqueued
    (and drained) repairs — rerun until 0 to confirm convergence.
    """
    import json as _json

    from repro.yprov.client import ProvenanceClient

    report = ProvenanceClient(
        args.url, timeout_s=args.timeout, retries=1
    ).sweep()
    if args.format == "json":
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"sweep: {report.get('docs_checked', 0)} document(s) in "
              f"{report.get('changed_buckets', 0)} changed bucket(s); "
              f"{report.get('missing', 0)} missing, "
              f"{report.get('divergent', 0)} divergent, "
              f"{report.get('repaired', 0)} repaired")
        for shard_id in report.get("failed_shards", []):
            print(f"  unreachable: {shard_id}")
    return 0 if report.get("clean") else 1


def cmd_cluster_scrub(args: argparse.Namespace) -> int:
    """Handle ``yprov cluster scrub``: bit-rot pass across the cluster.

    Exit 0 when every copy verified, 1 when corrupt/missing copies were
    found (they are quarantined and re-replicated in the same call).
    """
    import json as _json

    from repro.yprov.client import ProvenanceClient

    report = ProvenanceClient(
        args.url, timeout_s=args.timeout, retries=1
    ).scrub()
    if args.format == "json":
        print(_json.dumps(report, indent=2, sort_keys=True))
        return 0 if not report.get("repairs_enqueued") else 1
    for shard_id, shard_report in sorted(report.get("shards", {}).items()):
        quarantined = shard_report.get("quarantined", [])
        missing = shard_report.get("missing", [])
        print(f"  {shard_id}: {shard_report.get('checked', 0)} checked, "
              f"{len(quarantined)} quarantined, {len(missing)} missing")
    print(f"scrub: {report.get('repairs_enqueued', 0)} repair(s) enqueued, "
          f"{report.get('repaired', 0)} restored")
    for shard_id in report.get("failed_shards", []):
        print(f"  unreachable: {shard_id}")
    return 0 if not report.get("repairs_enqueued") else 1


def cmd_fleet_serve(args: argparse.Namespace) -> int:
    """Handle ``yprov fleet serve``: scheduler + REST API (+ workers).

    The durable truth is ``--fleet-root/queue.wal``: kill this process
    at any point and a restart over the same root replays every acked
    job.  The replay count is printed on startup so an operator (or the
    chaos driver) can compare it against the journal on disk.
    """
    import threading
    import time

    from repro.fleet import FleetManager, FleetWorker
    from repro.yprov.rest import serve

    weights = {}
    for spec in args.weight or []:
        tenant, sep, raw = spec.partition("=")
        try:
            weights[tenant] = float(raw)
        except ValueError:
            sep = ""
        if not sep or not tenant:
            print(f"error: --weight must be tenant=weight, got {spec!r}",
                  file=sys.stderr)
            return 2
    service = _service(args)
    fleet_root = Path(args.fleet_root
                      if args.fleet_root else Path(args.root) / "fleet")
    manager = FleetManager(
        fleet_root,
        service,
        lease_duration_s=args.lease_duration,
        max_attempts=args.max_attempts,
        tenant_weights=weights or None,
        max_active_total=args.max_active,
        max_active_per_tenant=args.max_active_per_tenant,
        retry_after_s=args.retry_after,
    )
    server = serve(service, host=args.host, port=args.port, fleet=manager)
    stats = manager.fleet_stats()
    print(f"yProv fleet scheduler listening on {server.url} "
          f"— Ctrl-C to stop", flush=True)
    print(f"fleet: {stats['replayed_records']} record(s) replayed, "
          f"{stats['jobs']} job(s), state root {stats['state_root']}",
          flush=True)
    stop = threading.Event()
    threads = []
    for i in range(args.workers):
        worker = FleetWorker(
            manager.queue,
            worker_id=f"inproc-{i}",
            state_root=manager.state_root,
        )
        thread = threading.Thread(
            target=worker.run_forever, args=(stop,),
            name=f"fleet-worker-{i}", daemon=True)
        thread.start()
        threads.append(thread)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
        server.stop()
        manager.close()
    return 0


def cmd_fleet_work(args: argparse.Namespace) -> int:
    """Handle ``yprov fleet work``: one worker process polling a scheduler.

    The worker must see the *same* fleet root as the scheduler (shared
    filesystem): that is where the per-job workflow journals live, and
    resuming them is what makes a crashed predecessor's completed tasks
    replay instead of re-execute.
    """
    import threading

    from repro.fleet import FleetWorker, RemoteQueue
    from repro.yprov.client import ProvenanceClient
    from repro.fleet.manager import JOBS_DIR_NAME

    client = ProvenanceClient(
        args.url, timeout_s=args.timeout, retries=args.retries)
    state_root = Path(args.fleet_root) / JOBS_DIR_NAME
    worker = FleetWorker(
        RemoteQueue(client),
        worker_id=args.worker_id,
        state_root=state_root,
        poll_interval_s=args.poll_interval,
    )
    print(f"fleet worker {worker.worker_id} polling {args.url} "
          f"(state root {state_root}) — Ctrl-C to stop", flush=True)
    try:
        worker.run_forever(threading.Event())
    except KeyboardInterrupt:
        pass
    print(f"worker {worker.worker_id}: {worker.completed} completed, "
          f"{worker.failed} failed, {worker.abandoned} abandoned")
    return 0


def _jobs_client(args: argparse.Namespace):
    """The resilient client every ``yprov jobs`` verb talks through."""
    from repro.yprov.client import ProvenanceClient

    return ProvenanceClient(
        args.url, timeout_s=args.timeout, retries=args.retries)


def _print_job_row(row: dict) -> None:
    """One brief, grep-friendly line per job."""
    extra = ""
    if row.get("dead_reason"):
        extra = f"  dead: {row['dead_reason']}"
    elif row.get("error"):
        extra = f"  error: {row['error']}"
    print(f"{row['job_id']}  {row['state']:<13} tenant={row['tenant']} "
          f"attempts={row['attempts']} crashes={row['crashes']} "
          f"failures={row['failures']}{extra}")


def cmd_jobs_submit(args: argparse.Namespace) -> int:
    """Handle ``yprov jobs submit``: durably enqueue one job.

    Prints the acked job id alone on stdout — from that moment the job
    survives a SIGKILL of any fleet participant.
    """
    import json as _json

    if bool(args.spec) == bool(args.workflow):
        print("error: exactly one of SPEC or --workflow is required",
              file=sys.stderr)
        return 2
    if args.workflow:
        spec = {"workflow_file": str(Path(args.workflow).resolve())}
    elif args.spec == "-":
        spec = _json.loads(sys.stdin.read())
    else:
        spec = _json.loads(Path(args.spec).read_text(encoding="utf-8"))
    if not isinstance(spec, dict):
        print("error: the job spec must be a JSON object", file=sys.stderr)
        return 2
    payload = _jobs_client(args).submit_job(
        spec, tenant=args.tenant, max_attempts=args.max_attempts)
    print(payload["job_id"])
    return 0


def cmd_jobs_status(args: argparse.Namespace) -> int:
    """Handle ``yprov jobs status``: one job's full state and history."""
    import json as _json

    payload = _jobs_client(args).get_job(args.job_id)
    if args.format == "json":
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    _print_job_row(payload)
    for entry in payload.get("history", []):
        if "attempt" in entry:
            outcome = entry.get("outcome") or "running"
            worker = entry.get("worker") or "?"
            line = f"  attempt {entry['attempt']}: {outcome} on {worker}"
            if entry.get("error"):
                line += f" — {entry['error']}"
            print(line)
        else:
            print("  requeued from the dead-letter queue")
    return 0


def cmd_jobs_list(args: argparse.Namespace) -> int:
    """Handle ``yprov jobs list``: brief rows, filterable by state/tenant."""
    import json as _json

    rows = _jobs_client(args).list_jobs(state=args.state, tenant=args.tenant)
    if args.format == "json":
        print(_json.dumps(rows, indent=2, sort_keys=True))
        return 0
    for row in rows:
        _print_job_row(row)
    print(f"({len(rows)} job(s))")
    return 0


def cmd_jobs_retry(args: argparse.Namespace) -> int:
    """Handle ``yprov jobs retry``: return a dead-lettered job to pending."""
    payload = _jobs_client(args).requeue_job(args.job_id)
    print(f"requeued {payload['job_id']} (state {payload['state']})")
    return 0


def cmd_jobs_dlq(args: argparse.Namespace) -> int:
    """Handle ``yprov jobs dlq``: the quarantine view.

    Exit 0 when the DLQ is empty, 1 when jobs are quarantined — so a CI
    step can gate on "no poison jobs left behind".
    """
    import json as _json

    rows = _jobs_client(args).list_jobs(state="dead_lettered")
    if args.format == "json":
        print(_json.dumps(rows, indent=2, sort_keys=True))
    else:
        for row in rows:
            _print_job_row(row)
        print(f"({len(rows)} dead-lettered job(s))")
    return 1 if rows else 0


def cmd_jobs_purge(args: argparse.Namespace) -> int:
    """Handle ``yprov jobs purge``: drop a settled job and its state dir."""
    _jobs_client(args).purge_job(args.job_id)
    print(f"purged {args.job_id}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Handle ``yprov replay``: reproduce an experiment from PROV-JSON."""
    from repro.core.reproduce import default_replayer

    replayer = default_replayer()
    _, report = replayer.replay(args.file, args.output_dir)
    print(report.summary())
    for check in report.metric_checks:
        mark = "ok " if check.matched else "DIFF"
        print(f"  [{mark}] {check.series}: {check.original} -> {check.replayed}")
    return 0 if report.is_faithful else 1


def cmd_recover(args: argparse.Namespace) -> int:
    """Handle ``yprov recover``: rebuild PROV-JSON from a dead run's journal."""
    from repro.core.recover import find_dead_runs, recover_run

    path = Path(args.path)
    if args.scan:
        dead = find_dead_runs(path)
        if not dead:
            print(f"no dead runs under {path}")
            return 0
        rc = 0
        for run_dir in dead:
            try:
                paths, report = recover_run(
                    run_dir, metric_format=args.metric_format,
                    validate=not args.no_validate, force=args.force,
                )
                print(f"{run_dir}: {report.summary()}")
                print(f"  -> {paths['prov']}")
            except ReproError as exc:
                print(f"{run_dir}: error: {exc}", file=sys.stderr)
                rc = 2
        return rc
    paths, report = recover_run(
        path, metric_format=args.metric_format,
        validate=not args.no_validate, force=args.force,
    )
    print(report.summary())
    for kind, written in sorted(paths.items()):
        print(f"{kind}: {written}")
    return 0


def _client(args: argparse.Namespace):
    """A spool-backed resilient client for the transport commands."""
    from repro.yprov.client import ProvenanceClient
    from repro.yprov.spool import Spool

    return ProvenanceClient(
        args.url,
        timeout_s=args.timeout,
        retries=args.retries,
        spool=Spool(args.spool_dir),
    )


def _spool(args: argparse.Namespace):
    from repro.yprov.spool import Spool

    return Spool(args.spool_dir)


def cmd_publish(args: argparse.Namespace) -> int:
    """Handle ``yprov publish``: send a document to a remote service.

    At-least-once: when the service is unreachable the document is parked
    in the spool (exit code 3 signals "spooled, not yet delivered").

    With ``--batch``, FILE may also be a directory: every ``*.json`` /
    ``*.provjson`` file in it is published as ``<doc_id>/<stem>`` through
    the pipelined batch client — one framed request per ``--batch-size``
    documents, ``--max-in-flight`` batches on the wire at once, with the
    same acked-or-spooled guarantee per record.
    """
    if args.batch:
        return _publish_batch(args)
    client = _client(args)
    text = Path(args.file).read_text(encoding="utf-8")
    result = client.publish(args.doc_id, text)
    if result.acked:
        print(f"published {args.doc_id} to {args.url}")
        return 0
    print(f"service unreachable; spooled {args.doc_id} to {args.spool_dir}")
    return 3


def _publish_batch(args: argparse.Namespace) -> int:
    """Pipelined multi-document publish behind ``yprov publish --batch``."""
    from repro.errors import IngestError
    from repro.yprov.ingest import BatchClient
    from repro.yprov.spool import Spool

    path = Path(args.file)
    if path.is_dir():
        files = sorted(
            p for p in path.iterdir()
            if p.suffix in (".json", ".provjson") and p.is_file()
        )
        if not files:
            print(f"no .json/.provjson files in {path}", file=sys.stderr)
            return 2
        # "-" keeps the derived ids inside the service's doc-id alphabet
        # ("/" is not in it)
        records = [(f"{args.doc_id}-{p.stem}", p) for p in files]
    else:
        records = [(args.doc_id, path)]
    batch = BatchClient(
        args.url,
        batch_size=args.batch_size,
        max_in_flight=args.max_in_flight,
        spool=Spool(args.spool_dir),
        timeout_s=args.timeout,
        retries=args.retries,
    )
    try:
        for doc_id, file_path in records:
            batch.publish(doc_id, file_path.read_text(encoding="utf-8"))
        report = batch.close()
    except IngestError as exc:
        batch.close()
        print(f"batch publish failed: {exc}", file=sys.stderr)
        return 2
    for doc_id, error in report.rejected:
        print(f"rejected {doc_id}: {error}", file=sys.stderr)
    print(report.summary())
    if report.rejected:
        return 1
    return 3 if report.spooled else 0


def cmd_spool_list(args: argparse.Namespace) -> int:
    """Handle ``yprov spool list``: show parked documents, oldest first."""
    for entry in _spool(args).entries():
        print(f"{entry.seq}\t{entry.doc_id}")
    return 0


def cmd_spool_stats(args: argparse.Namespace) -> int:
    """Handle ``yprov spool stats``: queue depth and damage counters."""
    for key, value in _spool(args).stats().items():
        print(f"{key}: {value}")
    return 0


def cmd_spool_drain(args: argparse.Namespace) -> int:
    """Handle ``yprov spool drain``: replay parked documents to a service.

    Idempotent — the service dedups on document id, so re-draining after
    a partial pass never creates duplicates.  Exit code 3 means the
    service is still unreachable and documents remain parked.
    """
    client = _client(args)
    report = client.drain_spool(batch_size=args.batch_size)
    for doc_id in report.delivered:
        print(f"delivered {doc_id}")
    for doc_id in report.rejected:
        print(f"rejected {doc_id} (quarantined)")
    print(report.summary())
    return 0 if report.complete else 3


def cmd_compact(args: argparse.Namespace) -> int:
    """Handle ``yprov compact``: fold sealed WALs into an immutable segment.

    Offline against ``--root`` (the store is opened, compacted and
    closed), or online against a running node with ``--url`` (the server
    compacts under its own lock while continuing to serve).  Prints the
    compaction report; ``skipped`` means there was nothing to fold or the
    node stores documents as flat files.
    """
    import json as _json

    if args.url:
        from repro.yprov.client import ProvenanceClient

        report = ProvenanceClient(
            args.url, timeout_s=args.timeout, retries=args.retries
        ).compact()
    else:
        # open the store directly: offline compaction needs no document
        # parsing, only the WAL/segment merge
        from repro.yprov.segments import STORE_DIR, SegmentStore

        store_dir = Path(args.root) / STORE_DIR
        if not store_dir.is_dir() and args.storage != "segments":
            report = {"skipped": True,
                      "reason": f"no segment store at {store_dir}"}
        else:
            store = SegmentStore(store_dir)
            try:
                report = store.compact()
            finally:
                store.close()
    print(_json.dumps(report, indent=2, sort_keys=True))
    return 0 if not report.get("skipped") else 1


def cmd_spool_purge(args: argparse.Namespace) -> int:
    """Handle ``yprov spool purge``: drop every parked document."""
    removed = _spool(args).purge()
    print(f"purged {removed} spooled document(s)")
    return 0


def _split_ids(text: Optional[str]) -> Optional[List[str]]:
    if not text:
        return None
    return [part.strip() for part in text.split(",") if part.strip()]


def cmd_lint(args: argparse.Namespace) -> int:
    """Handle ``yprov lint``: static analysis of run dirs and/or the codebase.

    Exit codes: 0 clean, 1 findings at/above ``--fail-on``, 2 linter failure.
    """
    from repro.errors import LintError
    from repro.lint import (
        DEFAULT_REGISTRY,
        Baseline,
        LintReport,
        apply_baseline,
        lint_cluster_manifest,
        lint_fleet_root,
        lint_run_dir,
        lint_source,
        render,
    )

    select = _split_ids(args.select)
    ignore = _split_ids(args.ignore)
    if (not args.targets and not args.self and not args.cluster
            and not args.fleet):
        raise LintError(
            "nothing to lint: pass run directories, --self, --cluster "
            "and/or --fleet"
        )
    if args.update_baseline and not args.baseline:
        raise LintError("--update-baseline requires --baseline PATH")

    service_root = Path(args.root) if Path(args.root).is_dir() else None
    reports: List[LintReport] = []
    for target in args.targets:
        reports.append(
            lint_run_dir(
                target,
                select=select,
                ignore=ignore,
                spool_dir=args.spool_dir,
                service_root=service_root,
            )
        )
    if args.self:
        reports.append(
            lint_source(args.source_root, select=select, ignore=ignore)
        )
    if args.cluster:
        reports.append(
            lint_cluster_manifest(args.cluster, select=select, ignore=ignore)
        )
    if args.fleet:
        reports.append(
            lint_fleet_root(
                args.fleet,
                select=select,
                ignore=ignore,
                dlq_stale_after_s=args.dlq_stale_after,
            )
        )

    merged = LintReport(target="; ".join(r.target for r in reports))
    for report in reports:
        merged.findings.extend(report.findings)
        merged.suppressed += report.suppressed
        for rule_id in report.checked_rules:
            if rule_id not in merged.checked_rules:
                merged.checked_rules.append(rule_id)

    if args.update_baseline:
        Baseline.from_findings(merged.findings).save(args.baseline)
        print(f"baseline updated: {args.baseline} "
              f"({len(merged.findings)} finding(s) grandfathered)")
        return 0
    if args.baseline:
        apply_baseline(merged, Baseline.load(args.baseline))

    text = render(merged, fmt=args.format, registry=DEFAULT_REGISTRY)
    if args.output:
        atomic_write_text(Path(args.output), text)
        print(f"wrote {args.output}")
        print(merged.summary())
    else:
        print(text, end="")
    return merged.exit_code(fail_on=args.fail_on)


def _finish_wf_run(args: argparse.Namespace, workflow, result) -> int:
    """Shared tail of ``wf run`` / ``wf resume``: report, persist, exit code."""
    import json as _json

    from repro.workflow.journal import load_history
    from repro.workflow.provtracker import build_workflow_document

    history = load_history(args.state_dir)
    doc = build_workflow_document(workflow, result, history=history)
    prov_path = Path(args.state_dir) / "prov.json"
    atomic_write_text(prov_path, doc.to_json())

    if args.output:
        atomic_write_text(
            Path(args.output),
            _json.dumps(result.to_comparable(), indent=2, sort_keys=True) + "\n",
        )
    for name in sorted(result.tasks):
        task_result = result.tasks[name]
        marker = " (replayed)" if task_result.replayed else ""
        print(f"{name}: {task_result.state.value}{marker}")
    print(
        f"workflow {result.workflow_name}: "
        f"{'succeeded' if result.succeeded else 'failed'} "
        f"(segments={result.segments})"
    )
    return 0 if result.succeeded else 1


def cmd_wf_run(args: argparse.Namespace) -> int:
    """Handle ``yprov wf run``: journaled execution of a workflow file."""
    from repro.workflow.chaos import hook_from_env
    from repro.workflow.loader import load_workflow_file

    workflow = load_workflow_file(args.file)
    result = workflow.run(
        state_dir=args.state_dir,
        max_workers=args.max_workers,
        quarantine_after=args.quarantine_after,
        heartbeat_interval_s=args.heartbeat_interval,
        on_record=hook_from_env(),
    )
    return _finish_wf_run(args, workflow, result)


def cmd_wf_resume(args: argparse.Namespace) -> int:
    """Handle ``yprov wf resume``: continue an interrupted journaled run."""
    from repro.workflow.chaos import hook_from_env
    from repro.workflow.loader import load_workflow_file

    workflow = load_workflow_file(args.file)
    result = workflow.resume(
        args.state_dir,
        max_workers=args.max_workers,
        quarantine_after=args.quarantine_after,
        heartbeat_interval_s=args.heartbeat_interval,
        on_record=hook_from_env(),
    )
    return _finish_wf_run(args, workflow, result)


def cmd_wf_status(args: argparse.Namespace) -> int:
    """Handle ``yprov wf status``: liveness report for a journaled run.

    Exit codes: 0 the run completed, 1 it is interrupted (resumable),
    2 the state directory holds no readable journal.
    """
    import json as _json

    from repro.workflow.journal import load_history

    history = load_history(args.state_dir)
    statuses = history.task_statuses(
        heartbeat_timeout_s=args.heartbeat_timeout
    )
    if args.format == "json":
        print(_json.dumps({
            "workflow": history.workflow_name,
            "run_id": history.run_id,
            "run": history.run_status(),
            "segments": history.segments,
            "tasks": statuses,
            "bad_records": history.bad_records,
        }, indent=2, sort_keys=True))
    else:
        print(f"workflow: {history.workflow_name}")
        print(f"run: {history.run_status()} (segments={history.segments})")
        if history.bad_records:
            print(f"bad records skipped: {history.bad_records}")
        for name in sorted(statuses):
            print(f"{name}: {statuses[name]}")
    return 0 if history.ended else 1


def cmd_crate_validate(args: argparse.Namespace) -> int:
    """Handle ``yprov crate-validate``: check an RO-Crate directory."""
    from repro.crate.validate import validate_crate

    report = validate_crate(args.directory)
    for err in report.errors:
        print(f"ERROR: {err}")
    for warning in report.warnings:
        print(f"warning: {warning}")
    print(f"valid={report.is_valid} files={report.n_files}")
    return 0 if report.is_valid else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``yprov`` argument parser."""
    parser = argparse.ArgumentParser(prog="yprov", description=__doc__.split("\n")[0])
    parser.add_argument("--root", default=".yprov", help="service storage directory")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("push", help="store a PROV-JSON document")
    p.add_argument("doc_id")
    p.add_argument("file")
    p.set_defaults(func=cmd_push)

    p = sub.add_parser("get", help="retrieve a stored document")
    p.add_argument("doc_id")
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_get)

    p = sub.add_parser("list", help="list stored documents")
    p.set_defaults(func=cmd_list)

    p = sub.add_parser("delete", help="delete a stored document")
    p.add_argument("doc_id")
    p.set_defaults(func=cmd_delete)

    p = sub.add_parser("lineage", help="lineage closure of an element")
    p.add_argument("doc_id")
    p.add_argument("element")
    p.add_argument("--direction", choices=("upstream", "downstream"), default="upstream")
    p.set_defaults(func=cmd_lineage)

    p = sub.add_parser("query", help="run a PROVQL query against a document")
    p.add_argument("doc_id",
                   help="document id, or '-' to query across every document")
    p.add_argument(
        "query",
        help="PROVQL text, e.g. \"MATCH entity WHERE label ~ 'model' RETURN *\"",
    )
    p.add_argument("--explain", action="store_true",
                   help="show the query plan instead of executing")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output format (default: text)")
    p.add_argument("--url",
                   help="query a remote service at this base URL instead of --root")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("stats", help="structural statistics of a document")
    p.add_argument("doc_id")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("validate", help="validate a PROV-JSON file on disk")
    p.add_argument("file")
    p.add_argument("--strict", action="store_true",
                   help="treat dangling references as errors")
    p.set_defaults(func=cmd_validate)

    handle = sub.add_parser("handle", help="handle-system operations")
    hsub = handle.add_subparsers(dest="handle_command", required=True)
    p = hsub.add_parser("mint", help="mint a handle for a stored document")
    p.add_argument("doc_id")
    p.add_argument("--suffix")
    p.set_defaults(func=cmd_handle_mint)
    p = hsub.add_parser("resolve", help="resolve a handle to its document")
    p.add_argument("handle")
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_handle_resolve)
    p = hsub.add_parser("list", help="list minted handles")
    p.set_defaults(func=cmd_handle_list)

    p = sub.add_parser(
        "recover",
        help="rebuild provenance from a crashed run's write-ahead journal",
    )
    p.add_argument("path", help="run directory, journal file, or (with --scan) a root")
    p.add_argument("--scan", action="store_true",
                   help="recover every dead run found under PATH")
    p.add_argument("--metric-format", default="zarrlike",
                   choices=("inline", "zarrlike", "netcdflike"))
    p.add_argument("--force", action="store_true",
                   help="rebuild even if prov.json already exists")
    p.add_argument("--no-validate", action="store_true",
                   help="skip PROV-CONSTRAINTS validation of the recovered document")
    p.set_defaults(func=cmd_recover)

    def add_transport_args(p: argparse.ArgumentParser,
                           need_url: bool = True) -> None:
        if need_url:
            p.add_argument("--url", required=True,
                           help="service base URL, e.g. http://host:3000/api/v0")
        p.add_argument("--spool-dir", default=".yprov-spool",
                       help="local store-and-forward directory")
        p.add_argument("--timeout", type=float, default=5.0,
                       help="per-request timeout in seconds")
        p.add_argument("--retries", type=int, default=3,
                       help="transport retries per request")

    p = sub.add_parser(
        "publish", help="publish a PROV-JSON file to a remote service (HTTP)"
    )
    p.add_argument("doc_id",
                   help="document id (with --batch on a directory: id prefix)")
    p.add_argument("file",
                   help="PROV-JSON file, or (with --batch) a directory of them")
    p.add_argument("--batch", action="store_true",
                   help="pipelined batch ingest via POST /documents:batch")
    p.add_argument("--batch-size", type=int, default=64,
                   help="documents per batch frame (default 64)")
    p.add_argument("--max-in-flight", type=int, default=4,
                   help="batches concurrently on the wire (default 4)")
    add_transport_args(p)
    p.set_defaults(func=cmd_publish)

    spool = sub.add_parser("spool", help="store-and-forward queue operations")
    ssub = spool.add_subparsers(dest="spool_command", required=True)
    p = ssub.add_parser("list", help="list documents parked in the spool")
    add_transport_args(p, need_url=False)
    p.set_defaults(func=cmd_spool_list)
    p = ssub.add_parser("stats", help="spool depth and damage counters")
    add_transport_args(p, need_url=False)
    p.set_defaults(func=cmd_spool_stats)
    p = ssub.add_parser(
        "drain", help="replay parked documents to a service (idempotent)"
    )
    add_transport_args(p)
    p.add_argument("--batch-size", type=int, default=64,
                   help="documents per round-trip when the server supports "
                        "batch ingest; 1 forces per-document PUTs")
    p.set_defaults(func=cmd_spool_drain)
    p = ssub.add_parser("purge", help="drop every parked document")
    add_transport_args(p, need_url=False)
    p.set_defaults(func=cmd_spool_purge)

    p = sub.add_parser(
        "lint",
        help="static analysis: provenance run directories and/or the codebase",
    )
    p.add_argument("targets", nargs="*",
                   help="run directories to lint with the PL1xx rules")
    p.add_argument("--self", action="store_true",
                   help="also lint the repro source tree with the SL2xx rules")
    p.add_argument("--cluster", metavar="MANIFEST",
                   help="audit a cluster.json manifest for under-replicated "
                        "documents (PL113)")
    p.add_argument("--fleet", metavar="DIR",
                   help="audit a job-fleet state root for stuck leases, "
                        "orphaned job dirs and stale DLQ entries (PL116-118)")
    p.add_argument("--dlq-stale-after", type=float, default=3600.0,
                   help="seconds before a dead-lettered job counts as stale "
                        "for PL118 (default 3600)")
    p.add_argument("--source-root",
                   help="source tree for --self (default: the installed repro package)")
    p.add_argument("--format", choices=("text", "json", "sarif"), default="text",
                   help="report format")
    p.add_argument("-o", "--output", help="write the report to a file")
    p.add_argument("--baseline",
                   help="baseline file of grandfathered finding fingerprints")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite --baseline from the current findings and exit 0")
    p.add_argument("--select", help="comma-separated rule ids to run exclusively")
    p.add_argument("--ignore", help="comma-separated rule ids to skip")
    p.add_argument("--spool-dir",
                   help="also check this store-and-forward spool for stranded entries")
    p.add_argument("--fail-on", choices=("error", "warning", "info"),
                   default="error",
                   help="lowest severity that makes the exit code non-zero")
    p.set_defaults(func=cmd_lint)

    wf = sub.add_parser(
        "wf", help="durable workflow orchestration (run / resume / status)"
    )
    wsub = wf.add_subparsers(dest="wf_command", required=True)

    def add_wf_exec_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("file",
                       help="python file defining a build_workflow() factory")
        p.add_argument("--state-dir", required=True,
                       help="journal directory for this run")
        p.add_argument("--max-workers", type=int, default=1,
                       help="parallel task slots (default: sequential)")
        p.add_argument("--quarantine-after", type=int, default=3,
                       help="process crashes inside one task before it is "
                            "quarantined on resume (default: 3)")
        p.add_argument("--heartbeat-interval", type=float, default=None,
                       help="supervisor heartbeat cadence in seconds")
        p.add_argument("-o", "--output",
                       help="write comparable task outcomes as JSON (CI diffing)")

    p = wsub.add_parser("run", help="execute a workflow with a durable journal")
    add_wf_exec_args(p)
    p.set_defaults(func=cmd_wf_run)
    p = wsub.add_parser(
        "resume",
        help="resume an interrupted run (completed tasks replay, not re-run)",
    )
    add_wf_exec_args(p)
    p.set_defaults(func=cmd_wf_resume)
    p = wsub.add_parser("status", help="liveness report for a journaled run")
    p.add_argument("--state-dir", required=True,
                   help="journal directory to inspect")
    p.add_argument("--heartbeat-timeout", type=float, default=30.0,
                   help="seconds without a heartbeat before 'hung' (default 30)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output format (default: text)")
    p.set_defaults(func=cmd_wf_status)

    p = sub.add_parser("crate-validate", help="validate an RO-Crate directory")
    p.add_argument("directory")
    p.set_defaults(func=cmd_crate_validate)

    p = sub.add_parser("diff", help="compare two PROV-JSON files")
    p.add_argument("left")
    p.add_argument("right")
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser("render", help="render a PROV-JSON file as HTML/SVG")
    p.add_argument("file")
    p.add_argument("-o", "--output", default="prov.html")
    p.set_defaults(func=cmd_render)

    p = sub.add_parser("serve", help="run the HTTP front-end (RESTful API)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=3000)
    p.add_argument("--shard-id", default=None,
                   help="report this shard identity on /health (cluster member)")
    p.add_argument("--storage", choices=("auto", "files", "segments"),
                   default="auto",
                   help="document store backend: flat files, WAL+segments, "
                        "or auto-detect from --root (default)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "compact",
        help="fold sealed WALs into an immutable, indexed segment",
    )
    p.add_argument("--url",
                   help="compact a running node instead of --root, e.g. "
                        "http://host:3000/api/v0")
    p.add_argument("--storage", choices=("auto", "files", "segments"),
                   default="auto",
                   help="backend of --root when compacting offline")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="per-request timeout in seconds (with --url)")
    p.add_argument("--retries", type=int, default=3,
                   help="transport retries per request (with --url)")
    p.set_defaults(func=cmd_compact)

    p = sub.add_parser(
        "status", help="print a node's /health report (service, shard or router)"
    )
    p.add_argument("--url", required=True,
                   help="node base URL, e.g. http://host:3000/api/v0")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="per-request timeout in seconds")
    p.add_argument("--retries", type=int, default=1,
                   help="transport retries (default 1)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output format (default: text)")
    p.set_defaults(func=cmd_status)

    cluster = sub.add_parser(
        "cluster", help="replicated shard cluster operations"
    )
    csub = cluster.add_subparsers(dest="cluster_command", required=True)
    p = csub.add_parser(
        "serve", help="run a router + N shard nodes in one process"
    )
    p.add_argument("--shards", type=int, default=3,
                   help="number of shard nodes (default 3)")
    p.add_argument("--replication", type=int, default=1,
                   help="replica copies beyond the primary (default 1)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=3000,
                   help="router port (shards take ephemeral ports)")
    p.add_argument("--heartbeat-interval", type=float, default=1.0,
                   help="failure-detector probe cadence in seconds")
    p.add_argument("--sweep-interval", type=float, default=None,
                   help="anti-entropy sweep cadence in seconds "
                        "(default: on demand only)")
    p.add_argument("--scrub-interval", type=float, default=None,
                   help="per-shard bit-rot scrub cadence in seconds "
                        "(default: on demand only)")
    p.set_defaults(func=cmd_cluster_serve)

    p = csub.add_parser(
        "route", help="run a standalone router over existing shard nodes"
    )
    p.add_argument("--shard", action="append", required=True,
                   metavar="ID=URL",
                   help="shard node as id=url (repeat per shard)")
    p.add_argument("--state-dir", default=None,
                   help="router state directory (durable repair journal)")
    p.add_argument("--replication", type=int, default=1,
                   help="replica copies beyond the primary (default 1)")
    p.add_argument("--read-repair", choices=("off", "missing", "verify"),
                   default="missing",
                   help="read-repair mode (default: missing)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="router port (default: ephemeral)")
    p.add_argument("--heartbeat-interval", type=float, default=1.0,
                   help="failure-detector probe cadence in seconds")
    p.add_argument("--sweep-interval", type=float, default=None,
                   help="anti-entropy sweep cadence in seconds "
                        "(default: on demand only)")
    p.set_defaults(func=cmd_cluster_route)

    p = csub.add_parser(
        "repairs", help="show the router's pending repair queue"
    )
    p.add_argument("--url", required=True,
                   help="router base URL, e.g. http://host:3000/api/v0")
    p.add_argument("--run", action="store_true",
                   help="drain the queue after listing it")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-request timeout in seconds")
    p.set_defaults(func=cmd_cluster_repairs)

    p = csub.add_parser(
        "sweep", help="run one anti-entropy sweep (digest compare + repair)"
    )
    p.add_argument("--url", required=True,
                   help="router base URL, e.g. http://host:3000/api/v0")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="per-request timeout in seconds")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output format (default: text)")
    p.set_defaults(func=cmd_cluster_sweep)

    p = csub.add_parser(
        "scrub", help="re-verify stored checksums on every shard (bit rot)"
    )
    p.add_argument("--url", required=True,
                   help="router base URL, e.g. http://host:3000/api/v0")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="per-request timeout in seconds")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output format (default: text)")
    p.set_defaults(func=cmd_cluster_scrub)

    fleet = sub.add_parser(
        "fleet", help="fault-tolerant job fleet (scheduler and workers)"
    )
    fsub = fleet.add_subparsers(dest="fleet_command", required=True)
    p = fsub.add_parser(
        "serve", help="run the durable job scheduler behind the REST API"
    )
    p.add_argument("--fleet-root", default=None,
                   help="fleet state directory: queue WAL + per-job workflow "
                        "journals (default: --root/fleet)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (default: ephemeral)")
    p.add_argument("--lease-duration", type=float, default=30.0,
                   help="job lease duration in seconds (default 30)")
    p.add_argument("--max-attempts", type=int, default=3,
                   help="attempts before a job is dead-lettered (default 3)")
    p.add_argument("--weight", action="append", metavar="TENANT=WEIGHT",
                   help="fair-share weight for a tenant (repeatable)")
    p.add_argument("--max-active", type=int, default=1024,
                   help="global cap on pending+leased jobs (default 1024)")
    p.add_argument("--max-active-per-tenant", type=int, default=64,
                   help="per-tenant cap on pending+leased jobs (default 64)")
    p.add_argument("--retry-after", type=float, default=1.0,
                   help="Retry-After hint on 429 overflow (default 1s)")
    p.add_argument("--workers", type=int, default=0,
                   help="in-process worker threads (default 0: workers run "
                        "as separate 'yprov fleet work' processes)")
    p.add_argument("--storage", choices=("auto", "files", "segments"),
                   default="auto",
                   help="provenance store backend under --root")
    p.set_defaults(func=cmd_fleet_serve)

    p = fsub.add_parser(
        "work", help="run one worker process against a fleet scheduler"
    )
    p.add_argument("--url", required=True,
                   help="scheduler base URL, e.g. http://host:3000/api/v0")
    p.add_argument("--fleet-root", required=True,
                   help="the scheduler's fleet root (shared filesystem); "
                        "workflow journals live under <fleet-root>/jobs")
    p.add_argument("--worker-id", default=None,
                   help="stable worker identity (default: worker-<pid>)")
    p.add_argument("--poll-interval", type=float, default=0.5,
                   help="idle poll interval in seconds (default 0.5)")
    p.add_argument("--timeout", type=float, default=10.0,
                   help="per-request timeout in seconds")
    p.add_argument("--retries", type=int, default=3,
                   help="transport retries per request")
    p.set_defaults(func=cmd_fleet_work)

    jobs = sub.add_parser(
        "jobs", help="submit and manage fleet jobs over the REST API"
    )
    jsub = jobs.add_subparsers(dest="jobs_command", required=True)

    def add_jobs_client_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--url", required=True,
                       help="scheduler base URL, e.g. http://host:3000/api/v0")
        p.add_argument("--timeout", type=float, default=10.0,
                       help="per-request timeout in seconds")
        p.add_argument("--retries", type=int, default=3,
                       help="transport retries per request")

    p = jsub.add_parser("submit", help="durably enqueue one job")
    p.add_argument("spec", nargs="?",
                   help="job spec JSON file ('-' for stdin)")
    p.add_argument("--workflow", metavar="FILE",
                   help="shortcut: submit this workflow definition file")
    p.add_argument("--tenant", default="default",
                   help="tenant the job is billed to (default: 'default')")
    p.add_argument("--max-attempts", type=int, default=None,
                   help="override the fleet's dead-letter threshold")
    add_jobs_client_args(p)
    p.set_defaults(func=cmd_jobs_submit)

    p = jsub.add_parser("status", help="one job's state and attempt history")
    p.add_argument("job_id")
    p.add_argument("--format", choices=("text", "json"), default="text")
    add_jobs_client_args(p)
    p.set_defaults(func=cmd_jobs_status)

    p = jsub.add_parser("list", help="list jobs (filter by state/tenant)")
    p.add_argument("--state", default=None,
                   help="pending | leased | done | dead_lettered")
    p.add_argument("--tenant", default=None)
    p.add_argument("--format", choices=("text", "json"), default="text")
    add_jobs_client_args(p)
    p.set_defaults(func=cmd_jobs_list)

    p = jsub.add_parser(
        "retry", help="requeue a dead-lettered job for fresh attempts"
    )
    p.add_argument("job_id")
    add_jobs_client_args(p)
    p.set_defaults(func=cmd_jobs_retry)

    p = jsub.add_parser(
        "dlq", help="list quarantined jobs (exit 1 when any exist)"
    )
    p.add_argument("--format", choices=("text", "json"), default="text")
    add_jobs_client_args(p)
    p.set_defaults(func=cmd_jobs_dlq)

    p = jsub.add_parser("purge", help="drop a settled job and its state dir")
    p.add_argument("job_id")
    add_jobs_client_args(p)
    p.set_defaults(func=cmd_jobs_purge)

    p = sub.add_parser(
        "replay", help="reproduce an experiment from its PROV-JSON file"
    )
    p.add_argument("file")
    p.add_argument("-o", "--output-dir", default="replay")
    p.set_defaults(func=cmd_replay)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
