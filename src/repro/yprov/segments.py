"""LSM-style segment store: WAL ingest, immutable compacted segments.

The files backend of :class:`~repro.yprov.service.ProvenanceService`
writes one atomic ``.provjson`` + sidecar pair per document — two fsyncs
per PUT.  That is the right durability story for a handful of documents
and exactly the wrong one for the paper's scale regime, where thousands
of ranks publish provenance per epoch.  This module provides the
high-throughput alternative (``storage="segments"``):

* **Writes** append to a write-ahead log in the same length-prefixed,
  crc-per-record wire format as :mod:`repro.core.journal` — one
  sequential write per document, one fsync per *batch*.
* **The memtable** keeps the text of every document whose latest version
  lives in the active WAL, so hot reads never touch disk.
* **Sealed WALs** (rotated once the active log passes ``seal_bytes``)
  are served through an in-memory ``doc id → (file, offset, length)``
  index built when the record was appended — a read seeks straight to
  the record and re-verifies its crc.
* **Segments** are what compaction produces: one immutable, sorted file
  holding every live document, terminated by an index footer (doc
  offsets + content hashes + value indexes) and a fixed-size trailer
  that locates the footer.  Opening a segment reads the trailer and the
  footer — never the records — so a restart over cold data is O(index),
  not O(data).  Reads are served by offset via ``mmap`` (falling back
  to regular reads where mapping fails).

Lookup order is always memtable → sealed-WAL index → newest segment.

**Compaction** (:meth:`SegmentStore.compact`) is a full merge: seal the
active WAL, stream every live document into a new segment (tombstones
die here — a deleted document simply is not carried forward), publish it
with temp-file + fsync + atomic rename, and only then delete the source
WALs and superseded segments.  A crash at any point leaves either the
old sources (segment never published) or a published segment whose
``covers`` sequence number makes the leftover sources recognizably
redundant — :class:`SegmentStore` finishes the cleanup at the next open.
Nothing acked is ever lost and no torn state is ambiguous.

Crash-injection hooks for the chaos suite: setting
``REPRO_SEG_KILL_AT`` to one of ``compact-mid-write``,
``compact-pre-rename``, ``compact-post-rename`` SIGKILLs the process at
that stage of a compaction; ``REPRO_SEG_KILL_AFTER_PUTS=<n>`` SIGKILLs
after the *n*-th WAL append (mid-batch server death).
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import re
import signal
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.atomicio import fsync_dir
from repro.core.journal import decode_record, encode_record
from repro.errors import JournalError, SegmentError

__all__ = [
    "Segment",
    "SegmentStore",
    "StoreScan",
    "extract_value_index",
    "scan_store",
    "store_inventory",
]

#: Subdirectory of a service root that holds the segment store.
STORE_DIR = "store"

WAL_SUFFIX = ".wal"
SEG_SUFFIX = ".seg"

#: Fixed-size segment trailer: ``@<footer offset:016x> yprov-seg-v1\n``.
#: The footer record it points at is self-validating (wire-format crc),
#: so the trailer only needs to locate it.
_TRAILER_MAGIC = b"yprov-seg-v1"
_TRAILER_RE = re.compile(rb"^@([0-9a-f]{16}) yprov-seg-v1\n$")
TRAILER_LEN = 1 + 16 + 1 + len(_TRAILER_MAGIC) + 1

#: Footer schema version.
SEGMENT_VERSION = 1

#: Properties the segment footer's value indexes cover.  They are
#: recomputable from the raw PROV-JSON text alone (see
#: :func:`extract_value_index`), which is what lets ``yprov lint``
#: re-derive and cross-check them offline (PL115).
INDEXED_PROPS = ("label", "prov_type")

_PROP_ATTRS = (("prov:label", "label"), ("prov:type", "prov_type"))


def _maybe_kill(stage: str) -> None:
    """Chaos hook: die by SIGKILL when armed for *stage* (tests only)."""
    if os.environ.get("REPRO_SEG_KILL_AT") == stage:
        os.kill(os.getpid(), signal.SIGKILL)


def _attr_values(value: Any) -> List[str]:
    """String values of one PROV-JSON attribute (scalar, typed, or list)."""
    if value is None:
        return []
    if isinstance(value, list):
        out: List[str] = []
        for item in value:
            out.extend(_attr_values(item))
        return out
    if isinstance(value, dict):
        inner = value.get("$")
        return [str(inner)] if inner is not None else []
    return [str(value)]


def extract_value_index(text: str) -> Dict[str, Set[str]]:
    """Indexable values of one document, straight from its PROV-JSON text.

    Returns ``{"label": {...}, "prov_type": {...}}`` — the ``prov:label``
    and ``prov:type`` values of every element.  Deliberately a shallow,
    deterministic function of the bytes (no PROV model round trip), so a
    segment's footer index can be re-derived and verified offline.
    """
    out: Dict[str, Set[str]] = {prop: set() for prop in INDEXED_PROPS}
    try:
        payload = json.loads(text)
    except ValueError:
        return out
    if not isinstance(payload, dict):
        return out
    for section in ("entity", "activity", "agent"):
        table = payload.get(section)
        if not isinstance(table, dict):
            continue
        for attrs in table.values():
            if not isinstance(attrs, dict):
                continue
            for attr, prop in _PROP_ATTRS:
                for value in _attr_values(attrs.get(attr)):
                    out[prop].add(value)
    return out


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# segments
# ---------------------------------------------------------------------------

class Segment:
    """One immutable, index-carrying segment file (read-only).

    Opening validates the trailer and the footer record (length + crc)
    but touches none of the document records; per-document reads seek by
    the footer's offset index and re-verify the record's own crc.
    """

    def __init__(self, path: Path, data: Union[mmap.mmap, bytes],
                 footer: Dict[str, Any]) -> None:
        self.path = path
        self._data = data
        self.covers = int(footer["covers"])
        self.count = int(footer["count"])
        #: ``{doc id: [offset, length, sha256-of-text]}``
        self.docs: Dict[str, List[Any]] = footer["docs"]
        #: ``{prop: {value: [doc ids]}}`` for :data:`INDEXED_PROPS`.
        self.values: Dict[str, Dict[str, List[str]]] = footer.get("values", {})

    # -- lifecycle -----------------------------------------------------
    @classmethod
    def open(cls, path: Union[str, Path]) -> "Segment":
        """Open *path* without replaying records (trailer → footer only)."""
        path = Path(path)
        try:
            size = path.stat().st_size
        except OSError as exc:
            raise SegmentError(f"cannot stat segment {path}: {exc}") from exc
        if size < TRAILER_LEN + 1:
            raise SegmentError(f"segment {path.name} too small ({size} bytes)")
        data: Union[mmap.mmap, bytes]
        with path.open("rb") as fh:
            try:
                # a private read-only mapping stays valid after fh closes
                data = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError):
                data = fh.read()
        match = _TRAILER_RE.match(bytes(data[size - TRAILER_LEN:size]))
        if match is None:
            raise SegmentError(f"segment {path.name} has a corrupt trailer")
        footer_offset = int(match.group(1), 16)
        if not 0 <= footer_offset < size - TRAILER_LEN:
            raise SegmentError(
                f"segment {path.name} trailer points outside the file"
            )
        footer_line = bytes(data[footer_offset:size - TRAILER_LEN])
        try:
            footer = decode_record(footer_line)
        except JournalError as exc:
            raise SegmentError(
                f"segment {path.name} footer failed verification: {exc}"
            ) from exc
        if footer.get("k") != "footer":
            raise SegmentError(f"segment {path.name} footer has wrong kind")
        if footer.get("version") != SEGMENT_VERSION:
            raise SegmentError(
                f"segment {path.name} has unsupported version "
                f"{footer.get('version')!r}"
            )
        if not isinstance(footer.get("docs"), dict):
            raise SegmentError(f"segment {path.name} footer lacks a doc index")
        return cls(path, data, footer)

    def close(self) -> None:
        if isinstance(self._data, mmap.mmap):
            self._data.close()
        self._data = b""

    # -- reads ---------------------------------------------------------
    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self.docs

    def __len__(self) -> int:
        return len(self.docs)

    def doc_ids(self) -> List[str]:
        return sorted(self.docs)

    def read(self, doc_id: str) -> Optional[str]:
        """The text of *doc_id*, crc-verified, or ``None`` when absent."""
        entry = self.docs.get(doc_id)
        if entry is None:
            return None
        offset, length = int(entry[0]), int(entry[1])
        line = bytes(self._data[offset:offset + length])
        try:
            payload = decode_record(line)
        except JournalError as exc:
            raise SegmentError(
                f"segment {self.path.name} record for {doc_id!r} failed "
                f"verification: {exc}"
            ) from exc
        if payload.get("k") != "doc" or payload.get("id") != doc_id:
            raise SegmentError(
                f"segment {self.path.name} offset index points at the "
                f"wrong record for {doc_id!r}"
            )
        return payload["text"]

    def matching(self, prop: str, value: str) -> List[str]:
        """Doc ids whose *prop* value index contains *value*."""
        if prop not in INDEXED_PROPS:
            raise SegmentError(
                f"no value index for {prop!r}; indexed: {INDEXED_PROPS}"
            )
        return list(self.values.get(prop, {}).get(value, []))

    def inventory(self) -> Dict[str, str]:
        """``{doc id: sha256 of text}`` straight from the footer."""
        return {doc_id: str(entry[2]) for doc_id, entry in self.docs.items()}

    # -- verification --------------------------------------------------
    def verify(self) -> List[str]:
        """Cross-check the footer index against the records; returns issues.

        Reads every record at its indexed offset and verifies crc, doc
        id, and content hash; recomputes the value indexes from the
        texts and compares.  An empty list is the offline proof that the
        index and the data agree (what lint rule PL115 runs).
        """
        issues: List[str] = []
        if len(self.docs) != self.count:
            issues.append(
                f"footer count {self.count} != indexed docs {len(self.docs)}"
            )
        recomputed: Dict[str, Dict[str, List[str]]] = {
            prop: {} for prop in INDEXED_PROPS
        }
        for doc_id in sorted(self.docs):
            entry = self.docs[doc_id]
            try:
                text = self.read(doc_id)
            except SegmentError as exc:
                issues.append(str(exc))
                continue
            if text is None:  # pragma: no cover - read() of indexed id
                continue
            if _sha256(text) != str(entry[2]):
                issues.append(
                    f"record for {doc_id!r} does not match its footer hash"
                )
            for prop, values in extract_value_index(text).items():
                for value in sorted(values):
                    recomputed[prop].setdefault(value, []).append(doc_id)
        if not issues:
            for prop in INDEXED_PROPS:
                if recomputed[prop] != self.values.get(prop, {}):
                    issues.append(
                        f"footer value index for {prop!r} disagrees with "
                        "the records"
                    )
        return issues


# ---------------------------------------------------------------------------
# store scanning (shared by SegmentStore.open and offline lint)
# ---------------------------------------------------------------------------

@dataclass
class _WalRecord:
    seq: int
    kind: str  # "put" | "del"
    doc_id: str
    path: Path
    offset: int
    length: int
    text: Optional[str]


@dataclass
class StoreScan:
    """Read-only view of a store directory (no mutation, lint-safe)."""

    root: Path
    segment: Optional[Segment] = None
    #: valid but superseded segment files (older ``covers``).
    superseded_segments: List[Path] = field(default_factory=list)
    corrupt_segments: List[Path] = field(default_factory=list)
    #: WAL records newer than the segment, in seq order.
    records: List[_WalRecord] = field(default_factory=list)
    #: WALs fully covered by the segment (compaction cleanup leftovers).
    superseded_wals: List[Path] = field(default_factory=list)
    #: WALs carrying at least one record the segment does not cover.
    live_wals: List[Path] = field(default_factory=list)
    issues: List[str] = field(default_factory=list)
    max_seq: int = 0

    def live(self) -> Dict[str, _WalRecord]:
        """Latest live WAL-resident version per doc (deletes applied).

        A doc present here shadows any segment copy; a doc deleted by a
        WAL tombstone is recorded with ``kind="del"`` so callers know to
        suppress the segment copy too.
        """
        state: Dict[str, _WalRecord] = {}
        for record in self.records:
            state[record.doc_id] = record
        return state

    def inventory(self) -> Dict[str, str]:
        """``{doc id: sha256 of text}`` over the whole store."""
        out: Dict[str, str] = {}
        if self.segment is not None:
            out.update(self.segment.inventory())
        for doc_id, record in self.live().items():
            if record.kind == "del":
                out.pop(doc_id, None)
            elif record.text is not None:
                out[doc_id] = _sha256(record.text)
        return out


def _scan_wal(path: Path) -> Tuple[List[_WalRecord], List[str]]:
    records: List[_WalRecord] = []
    issues: List[str] = []
    offset = 0
    try:
        fh = path.open("rb")
    except OSError as exc:
        return [], [f"{path.name}: unreadable: {exc}"]
    with fh:
        for line in fh:
            length = len(line)
            if line.strip():
                try:
                    payload = decode_record(line)
                except JournalError as exc:
                    issues.append(f"{path.name} offset {offset}: {exc}")
                else:
                    kind = payload.get("k")
                    seq = payload.get("seq")
                    doc_id = payload.get("id")
                    if (kind in ("put", "del") and isinstance(seq, int)
                            and isinstance(doc_id, str)):
                        records.append(_WalRecord(
                            seq=seq, kind=kind, doc_id=doc_id, path=path,
                            offset=offset, length=length,
                            text=payload.get("text"),
                        ))
                    else:
                        issues.append(
                            f"{path.name} offset {offset}: unknown record "
                            f"kind {kind!r}"
                        )
            offset += length
    return records, issues


def scan_store(root: Union[str, Path]) -> StoreScan:
    """Scan a store directory without mutating it.

    Resolves the half-compacted states a crash can leave behind: of all
    validly published segments only the one with the highest ``covers``
    is authoritative; WAL records at or below that sequence are
    superseded (they were merged — or deleted — before the segment was
    published); everything newer replays over it.
    """
    root = Path(root)
    scan = StoreScan(root=root)
    best: Optional[Segment] = None
    for path in sorted(root.glob(f"*{SEG_SUFFIX}")):
        try:
            segment = Segment.open(path)
        except SegmentError as exc:
            scan.corrupt_segments.append(path)
            scan.issues.append(str(exc))
            continue
        if best is None or segment.covers > best.covers:
            if best is not None:
                scan.superseded_segments.append(best.path)
                best.close()
            best = segment
        else:
            scan.superseded_segments.append(path)
            segment.close()
    scan.segment = best
    covers = best.covers if best is not None else 0
    scan.max_seq = covers
    pending: List[_WalRecord] = []
    for path in sorted(root.glob(f"*{WAL_SUFFIX}")):
        records, issues = _scan_wal(path)
        scan.issues.extend(issues)
        kept = [r for r in records if r.seq > covers]
        if records and not kept and not issues:
            scan.superseded_wals.append(path)
            continue
        scan.live_wals.append(path)
        pending.extend(kept)
        if records:
            scan.max_seq = max(scan.max_seq, max(r.seq for r in records))
    pending.sort(key=lambda r: r.seq)
    scan.records = pending
    return scan


def store_inventory(root: Union[str, Path]) -> Dict[str, str]:
    """``{doc id: sha256 of text}`` for a store directory (read-only).

    What the cluster lint rules use to audit replication over compacted
    shards: the hashes are over the document *text* bytes, identical to
    hashing a files-backend ``.provjson``, so copies are comparable
    across storage backends.
    """
    scan = scan_store(root)
    inventory = scan.inventory()
    if scan.segment is not None:
        scan.segment.close()
    return inventory


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Loc:
    """Where the latest live version of a document is served from."""

    seq: int
    source: str  # "mem" | "wal" | "seg"
    path: Optional[Path] = None
    offset: int = 0
    length: int = 0


class SegmentStore:
    """Durable doc-id → text store: active WAL + sealed WALs + segments.

    Not a general KV store: it persists exactly what the provenance
    service needs — verbatim document texts keyed by id, with crash
    safety inherited from the journal wire format and read paths that
    never replay cold data.
    """

    def __init__(
        self,
        root: Union[str, Path],
        seal_bytes: int = 4 * 1024 * 1024,
        fsync: bool = True,
    ) -> None:
        if seal_bytes < 1:
            raise SegmentError(f"seal_bytes must be >= 1, got {seal_bytes}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.seal_bytes = int(seal_bytes)
        self.fsync = bool(fsync)
        self._lock = threading.RLock()
        self._memtable: Dict[str, str] = {}
        self._live: Dict[str, _Loc] = {}
        self._segment: Optional[Segment] = None
        self._active_fh: Optional[Any] = None
        self._active_path: Optional[Path] = None
        self._active_bytes = 0
        self._unflushed = 0
        self._seq = 0
        self._wal_counter = 0
        self._puts = 0
        kill_after = os.environ.get("REPRO_SEG_KILL_AFTER_PUTS")
        self._kill_after_puts = int(kill_after) if kill_after else None
        self.issues: List[str] = []
        self._open()

    # -- open / recovery ----------------------------------------------
    def _open(self) -> None:
        # interrupted segment builds are garbage by definition
        for tmp in self.root.glob(".seg*.tmp"):
            tmp.unlink(missing_ok=True)
        scan = scan_store(self.root)
        self.issues = list(scan.issues)
        self._segment = scan.segment
        # finish an interrupted compaction's cleanup: superseded segments
        # and fully-covered WALs carry no record the survivor lacks
        for path in scan.superseded_segments + scan.superseded_wals:
            path.unlink(missing_ok=True)
        for path in scan.corrupt_segments:
            # keep the bytes for forensics, out of the next open's glob
            quarantined = path.with_suffix(SEG_SUFFIX + ".corrupt")
            os.replace(path, quarantined)  # lint: disable=SL201 -- quarantine rename of already-corrupt bytes; no data is written
        if self._segment is not None:
            for doc_id in self._segment.docs:
                self._live[doc_id] = _Loc(seq=0, source="seg")
        for record in scan.records:
            if record.kind == "del":
                self._live.pop(record.doc_id, None)
            else:
                self._live[record.doc_id] = _Loc(
                    seq=record.seq, source="wal", path=record.path,
                    offset=record.offset, length=record.length,
                )
        self._seq = scan.max_seq
        numbers = [
            int(p.stem.split("-", 1)[1])
            for p in self.root.glob(f"*{WAL_SUFFIX}")
            if p.stem.startswith("wal-") and p.stem.split("-", 1)[1].isdigit()
        ]
        self._wal_counter = max(numbers, default=0)

    # -- WAL plumbing --------------------------------------------------
    def _ensure_active(self) -> Any:
        """The active WAL handle, creating a fresh file lazily.

        A new store (or a reopened one) always starts a *new* WAL rather
        than appending to an old one: the previous file may end in a
        torn record, and appending after a torn tail would corrupt the
        next record too.
        """
        if self._active_fh is None:
            self._wal_counter += 1
            self._active_path = self.root / f"wal-{self._wal_counter:012d}{WAL_SUFFIX}"
            self._active_fh = self._active_path.open("ab")  # lint: disable=SL201 -- the append-only WAL is the crash-safety primitive; atomic rewrite would defeat it
            self._active_bytes = 0
        return self._active_fh

    def _append(self, payload: Dict[str, Any], sync: bool) -> Tuple[Path, int, int]:
        fh = self._ensure_active()
        line = encode_record(payload)
        offset = self._active_bytes
        fh.write(line)
        self._active_bytes += len(line)
        self._unflushed += 1
        path = self._active_path
        assert path is not None
        if sync:
            self.sync()
        return path, offset, len(line)

    def sync(self) -> None:
        """Flush + fsync the active WAL (amortized by batch writers)."""
        if self._active_fh is None or self._unflushed == 0:
            return
        self._active_fh.flush()
        if self.fsync:
            os.fsync(self._active_fh.fileno())
        self._unflushed = 0

    def seal(self) -> Optional[Path]:
        """Close the active WAL; the next append starts a new one.

        Returns the sealed path (``None`` when there was nothing to
        seal).  Sealing clears the memtable — sealed-WAL reads go
        through the offset index instead.
        """
        with self._lock:
            if self._active_fh is None:
                return None
            self.sync()
            self._active_fh.close()
            sealed = self._active_path
            self._active_fh = None
            self._active_path = None
            self._active_bytes = 0
            self._memtable.clear()
            return sealed

    def close(self) -> None:
        with self._lock:
            self.seal()
            if self._segment is not None:
                self._segment.close()

    # -- writes --------------------------------------------------------
    def put(self, doc_id: str, text: str, sync: bool = True) -> int:
        """Durably store *text* under *doc_id*; returns its sequence number.

        ``sync=False`` defers the fsync — batch writers append many
        records and call :meth:`sync` once, which is where the batch
        path's throughput comes from.
        """
        if not doc_id:
            raise SegmentError("doc_id must be non-empty")
        with self._lock:
            self._seq += 1
            path, offset, length = self._append(
                {"k": "put", "seq": self._seq, "id": doc_id, "text": text},
                sync=sync,
            )
            self._live[doc_id] = _Loc(
                seq=self._seq, source="wal", path=path,
                offset=offset, length=length,
            )
            self._memtable[doc_id] = text
            self._puts += 1
            if (self._kill_after_puts is not None
                    and self._puts >= self._kill_after_puts):
                self.sync()
                os.kill(os.getpid(), signal.SIGKILL)
            if self._active_bytes >= self.seal_bytes:
                self.seal()
            return self._seq

    def delete(self, doc_id: str, sync: bool = True) -> int:
        """Append a tombstone; the id stops being served immediately."""
        with self._lock:
            self._seq += 1
            self._append({"k": "del", "seq": self._seq, "id": doc_id},
                         sync=sync)
            self._live.pop(doc_id, None)
            self._memtable.pop(doc_id, None)
            return self._seq

    # -- reads ---------------------------------------------------------
    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._live

    def __len__(self) -> int:
        return len(self._live)

    def live_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._live)

    def get(self, doc_id: str) -> Optional[str]:
        """Text of *doc_id*: memtable → sealed-WAL offset → segment."""
        with self._lock:
            loc = self._live.get(doc_id)
            if loc is None:
                return None
            text = self._memtable.get(doc_id)
            if text is not None:
                return text
            if loc.source == "wal":
                assert loc.path is not None
                if loc.path == self._active_path:
                    self.sync()  # the record may still be buffered
                try:
                    with loc.path.open("rb") as fh:
                        fh.seek(loc.offset)
                        line = fh.read(loc.length)
                except OSError as exc:
                    raise SegmentError(
                        f"WAL read for {doc_id!r} failed: {exc}"
                    ) from exc
                try:
                    payload = decode_record(line)
                except JournalError as exc:
                    raise SegmentError(
                        f"WAL record for {doc_id!r} failed verification: "
                        f"{exc}"
                    ) from exc
                if payload.get("id") != doc_id or payload.get("k") != "put":
                    raise SegmentError(
                        f"WAL offset index points at the wrong record for "
                        f"{doc_id!r}"
                    )
                return payload["text"]
            if self._segment is None:
                raise SegmentError(
                    f"live index names {doc_id!r} but no segment is open"
                )
            return self._segment.read(doc_id)

    @property
    def segment(self) -> Optional[Segment]:
        return self._segment

    def wal_paths(self) -> List[Path]:
        """Every WAL on disk, active last (sorted by number)."""
        return sorted(self.root.glob(f"*{WAL_SUFFIX}"))

    def sealed_wal_paths(self) -> List[Path]:
        with self._lock:
            return [p for p in self.wal_paths() if p != self._active_path]

    # -- verification / stats -----------------------------------------
    def verify(self) -> Dict[str, Any]:
        """Crc-verify every live document and the segment's own index.

        Returns ``{"checked": n, "bad": [doc ids], "issues": [...]}`` —
        a bad document is one whose authoritative record no longer
        decodes; the caller (the service's scrub) evicts it so the
        cluster restores a verified replica.
        """
        report: Dict[str, Any] = {"checked": 0, "bad": [], "issues": []}
        with self._lock:
            for doc_id in sorted(self._live):
                report["checked"] += 1
                try:
                    text = self.get(doc_id)
                except SegmentError as exc:
                    report["bad"].append(doc_id)
                    report["issues"].append(str(exc))
                    continue
                if text is None:  # pragma: no cover - live ids always read
                    report["bad"].append(doc_id)
            if self._segment is not None:
                report["issues"].extend(self._segment.verify())
        return report

    def stats(self) -> Dict[str, Any]:
        """Operational counters: live docs, WAL/segment shape, sequence."""
        with self._lock:
            return {
                "documents": len(self._live),
                "memtable": len(self._memtable),
                "wals": len(self.wal_paths()),
                "segment": (self._segment.path.name
                            if self._segment is not None else None),
                "segment_docs": len(self._segment) if self._segment else 0,
                "seq": self._seq,
            }

    # -- compaction ----------------------------------------------------
    def compact(self) -> Dict[str, Any]:
        """Full merge: every live doc into one fresh segment; sources go.

        Publication is atomic (temp file → fsync → rename → directory
        fsync) and the source WALs / superseded segment are deleted only
        *after* the new segment is durable, so a SIGKILL anywhere in
        here loses nothing:  before the rename the old sources still
        serve every record; after it, the leftovers are recognizably
        redundant (their sequences are ≤ the new segment's ``covers``)
        and the next open deletes them.
        """
        with self._lock:
            sealed = self.seal()
            source_wals = self.wal_paths()
            old_segment = self._segment
            if not source_wals and old_segment is None:
                return {"skipped": True, "reason": "store is empty"}
            if (not source_wals and old_segment is not None
                    and old_segment.covers >= self._seq):
                return {
                    "skipped": True, "reason": "nothing to compact",
                    "segment": old_segment.path.name,
                    "documents": len(old_segment),
                }
            covers = self._seq
            live_ids = sorted(self._live)
            docs_index: Dict[str, List[Any]] = {}
            values: Dict[str, Dict[str, List[str]]] = {
                prop: {} for prop in INDEXED_PROPS
            }
            fd, tmp = tempfile.mkstemp(prefix=".seg.", suffix=".tmp",
                                       dir=self.root)
            midpoint = len(live_ids) // 2
            offset = 0
            try:
                with os.fdopen(fd, "wb") as fh:
                    for index, doc_id in enumerate(live_ids):
                        text = self.get(doc_id)
                        if text is None:  # pragma: no cover
                            continue
                        line = encode_record(
                            {"k": "doc", "id": doc_id, "text": text}
                        )
                        fh.write(line)
                        docs_index[doc_id] = [offset, len(line), _sha256(text)]
                        offset += len(line)
                        for prop, vals in extract_value_index(text).items():
                            for value in sorted(vals):
                                values[prop].setdefault(value, []).append(doc_id)
                        if index + 1 == midpoint:
                            _maybe_kill("compact-mid-write")
                    footer_line = encode_record({
                        "k": "footer", "version": SEGMENT_VERSION,
                        "covers": covers, "count": len(docs_index),
                        "docs": docs_index, "values": values,
                    })
                    fh.write(footer_line)
                    fh.write(b"@%016x " % offset + _TRAILER_MAGIC + b"\n")
                    fh.flush()
                    os.fsync(fh.fileno())
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            _maybe_kill("compact-pre-rename")
            target = self.root / f"seg-{covers:012d}{SEG_SUFFIX}"
            os.replace(tmp, target)  # lint: disable=SL201 -- this IS the temp-file/fsync/rename publication step of compaction
            fsync_dir(self.root)
            _maybe_kill("compact-post-rename")
            segment = Segment.open(target)
            # the new segment is durable: the sources are now redundant
            removed_wals = 0
            for path in source_wals:
                path.unlink(missing_ok=True)
                removed_wals += 1
            removed_segments = 0
            if old_segment is not None and old_segment.path != target:
                old_segment.close()
                old_segment.path.unlink(missing_ok=True)
                removed_segments += 1
            self._segment = segment
            self._live = {
                doc_id: _Loc(seq=0, source="seg") for doc_id in segment.docs
            }
            self._memtable.clear()
            return {
                "skipped": False,
                "segment": target.name,
                "covers": covers,
                "documents": len(segment),
                "removed_wals": removed_wals,
                "removed_segments": removed_segments,
                "sealed": sealed.name if sealed is not None else None,
            }
