"""yProv Explorer analogue: interactive-style queries over stored provenance.

The web Explorer lets users load a PROV-JSON file and inspect it.  This
module provides the same operations programmatically, over either a
:class:`~repro.yprov.service.ProvenanceService` or a raw document:

* :meth:`Explorer.summary` — structural statistics;
* :meth:`Explorer.lineage_of` — upstream/downstream closure of an element;
* :meth:`Explorer.timeline` — activities ordered by start time;
* :meth:`Explorer.search` — substring search over labels and types;
* :meth:`Explorer.diff` — element/relation diff of two documents (the
  "compare runs" workflow of §3.2/§3.4 at the provenance level).

``search``/``lineage_of``/``find_runs`` compile to PROVQL
(:mod:`repro.query`) rather than hand-rolled loops, so service-backed
calls go through the planner (index lookups over scans) and the
service's result cache.  Flattened document views are cached per
resolved document and invalidated when the service returns different
text for the same id.
"""

from __future__ import annotations

import datetime as _dt
import weakref
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.errors import ServiceError
from repro.prov.document import ProvDocument
from repro.prov.graph import degree_stats
from repro.prov.model import relation_sort_key
from repro.query import DocumentBackend, execute
from repro.query.ast import (
    Comparison,
    Field,
    MatchClause,
    Or,
    Query,
    ReturnClause,
    TraverseClause,
)
from repro.query.executor import QueryResult
from repro.yprov.service import ProvenanceService


@dataclass
class DocumentDiff:
    """Difference between two provenance documents."""

    only_left: List[str] = field(default_factory=list)
    only_right: List[str] = field(default_factory=list)
    changed: List[str] = field(default_factory=list)
    relations_only_left: int = 0
    relations_only_right: int = 0

    @property
    def is_identical(self) -> bool:
        """True when the two documents have no element or relation differences."""
        return not (
            self.only_left
            or self.only_right
            or self.changed
            or self.relations_only_left
            or self.relations_only_right
        )


class Explorer:
    """Query interface over a provenance service (or loose documents)."""

    def __init__(self, service: Optional[ProvenanceService] = None) -> None:
        self.service = service
        # flatten caches: service documents keyed by id and invalidated
        # when a re-resolve returns different text; raw documents keyed
        # weakly by identity (no strong reference kept)
        self._flat_by_id: Dict[str, Tuple[str, ProvDocument]] = {}
        self._flat_by_doc: "weakref.WeakKeyDictionary[ProvDocument, ProvDocument]" = (
            weakref.WeakKeyDictionary()
        )

    def _resolve(self, doc: Union[str, ProvDocument]) -> ProvDocument:
        if isinstance(doc, ProvDocument):
            return doc
        if self.service is None:
            raise ServiceError("no service attached; pass a ProvDocument instead of an id")
        return self.service.get_document(doc)

    def _flattened(self, doc: Union[str, ProvDocument]) -> ProvDocument:
        """Flattened view of *doc*, cached per resolved document."""
        if isinstance(doc, ProvDocument):
            flat = self._flat_by_doc.get(doc)
            if flat is None:
                flat = doc.flattened()
                self._flat_by_doc[doc] = flat
            return flat
        if self.service is None:
            raise ServiceError("no service attached; pass a ProvDocument instead of an id")
        text = self.service.get_document_text(doc)
        cached = self._flat_by_id.get(doc)
        if cached is not None and cached[0] == text:
            return cached[1]
        flat = ProvDocument.from_json(text).flattened()
        self._flat_by_id[doc] = (text, flat)
        return flat

    def _provql(self, doc: Union[str, ProvDocument], query: Query) -> QueryResult:
        """Run a compiled PROVQL query against the service or a raw doc."""
        if isinstance(doc, str):
            if self.service is None:
                raise ServiceError(
                    "no service attached; pass a ProvDocument instead of an id"
                )
            return self.service.query(doc, query)
        return execute(query, DocumentBackend(self._flattened(doc), flatten=False))

    # ------------------------------------------------------------------
    def summary(self, doc: Union[str, ProvDocument]) -> Dict[str, Any]:
        """Structural statistics plus per-prov:type entity counts."""
        document = self._flattened(doc)
        stats = degree_stats(document, flatten=False)
        by_type: Dict[str, int] = {}
        for ent in document.entities.values():
            key = str(ent.prov_type) if ent.prov_type is not None else "(untyped)"
            by_type[key] = by_type.get(key, 0) + 1
        stats["entities_by_type"] = dict(sorted(by_type.items()))
        return stats

    def lineage_of(
        self,
        doc: Union[str, ProvDocument],
        element: str,
        direction: str = "upstream",
        relations: Optional[List[str]] = None,
    ) -> List[str]:
        """Closure of *element*: what it came from / what it led to.

        Compiles to a PROVQL ``MATCH ... TRAVERSE`` plan; only relations
        with both endpoints declared in the document participate.
        """
        if direction not in ("upstream", "downstream"):
            raise ServiceError(f"direction must be upstream/downstream: {direction!r}")
        query = Query(
            match=MatchClause("element"),
            where=Comparison(Field("id"), "=", element),
            traverse=TraverseClause(direction=direction, via=tuple(relations or ())),
            returns=ReturnClause(projections=(Field("id"),)),
        )
        result = self._provql(doc, query)
        if result.stats.get("seed_rows") == 0:
            raise ServiceError(f"unknown element: {element}")
        return [row["id"] for row in result.rows]

    def timeline(self, doc: Union[str, ProvDocument]) -> List[Tuple[str, _dt.datetime, Optional[_dt.datetime]]]:
        """Activities with a start time, ordered chronologically."""
        document = self._flattened(doc)
        rows = [
            (qn.provjson(), act.start_time, act.end_time)
            for qn, act in document.activities.items()
            if act.start_time is not None
        ]
        rows.sort(key=lambda row: (row[1], row[0]))
        return rows

    def search(self, doc: Union[str, ProvDocument], text: str) -> List[str]:
        """Case-insensitive substring search over ids, labels, prov:types.

        Compiles to ``MATCH element WHERE id ~ ... OR label ~ ... OR
        type ~ ...``, so service-backed searches share the query
        planner and result cache.
        """
        query = Query(
            match=MatchClause("element"),
            where=Or(
                (
                    Comparison(Field("id"), "~", text),
                    Comparison(Field("label"), "~", text),
                    Comparison(Field("type"), "~", text),
                )
            ),
            returns=ReturnClause(projections=(Field("id"),)),
        )
        return [row["id"] for row in self._provql(doc, query).rows]

    def diff(
        self, left: Union[str, ProvDocument], right: Union[str, ProvDocument]
    ) -> DocumentDiff:
        """Element-level diff (ids present/absent, attribute changes)."""
        ldoc = self._flattened(left)
        rdoc = self._flattened(right)
        out = DocumentDiff()

        def element_map(document: ProvDocument) -> Dict[str, Any]:
            merged: Dict[str, Any] = {}
            for table in (document.entities, document.activities, document.agents):
                for qn, element in table.items():
                    merged[qn.provjson()] = element
            return merged

        lmap = element_map(ldoc)
        rmap = element_map(rdoc)
        out.only_left = sorted(set(lmap) - set(rmap))
        out.only_right = sorted(set(rmap) - set(lmap))
        for key in sorted(set(lmap) & set(rmap)):
            la, ra = lmap[key].attributes, rmap[key].attributes
            if {k: str(v) for k, v in la.items()} != {k: str(v) for k, v in ra.items()}:
                out.changed.append(key)

        lrels = {relation_sort_key(r) for r in ldoc.relations}
        rrels = {relation_sort_key(r) for r in rdoc.relations}
        out.relations_only_left = len(lrels - rrels)
        out.relations_only_right = len(rrels - lrels)
        return out

    def connection(
        self, doc: Union[str, ProvDocument], source: str, target: str
    ) -> Optional[List[Tuple[str, str]]]:
        """How is *source* related to *target*?

        Returns the shortest undirected provenance path as a list of
        ``(relation, element)`` hops starting after *source*, or ``None``
        when the two elements are unconnected.
        """
        import networkx as nx

        from repro.prov.graph import to_networkx

        document = self._resolve(doc)
        graph = to_networkx(document)
        for node in (source, target):
            if node not in graph:
                raise ServiceError(f"unknown element: {node}")
        undirected = graph.to_undirected(as_view=False)
        try:
            path = nx.shortest_path(undirected, source, target)
        except nx.NetworkXNoPath:
            return None
        hops: List[Tuple[str, str]] = []
        for a, b in zip(path, path[1:]):
            data = graph.get_edge_data(a, b) or graph.get_edge_data(b, a) or {}
            relation = next(iter(data.values()))["relation"] if data else "?"
            hops.append((relation, b))
        return hops

    def common_ancestors(
        self, doc: Union[str, ProvDocument], a: str, b: str
    ) -> List[str]:
        """Elements both *a* and *b* (transitively) depend on — e.g. the
        shared dataset behind two model versions."""
        from repro.prov.graph import ancestors

        document = self._resolve(doc)
        return sorted(
            ancestors(document, a) & ancestors(document, b)
        )

    def metric_series(
        self,
        doc: Union[str, ProvDocument],
        metric: str,
        context: str = "TRAINING",
        base_dir: Optional[Any] = None,
    ) -> Dict[str, Any]:
        """Recover a metric's full time-series from provenance.

        Handles both storage modes: inline (samples embedded in the metric
        entity) and offloaded (the entity references a metric store file —
        resolved relative to *base_dir*, which defaults to the directory of
        the document when it was loaded from disk).  Returns
        ``{"steps": [...], "values": [...], "times": [...]}``.
        """
        from pathlib import Path

        document = self._flattened(doc)
        target_label = metric
        entity = None
        for ent in document.entities.values():
            if not str(ent.prov_type or "").endswith("Metric"):
                continue
            if (str(ent.label) == target_label
                    and str(ent.get_attribute("yprov4ml:context")) == context):
                entity = ent
                break
        if entity is None:
            raise ServiceError(f"metric {metric!r} ({context}) not in document")

        inline_values = entity.get_attribute("yprov4ml:values")
        if inline_values is not None:
            return {
                "steps": entity.get_attribute("yprov4ml:steps"),
                "values": inline_values,
                "times": entity.get_attribute("yprov4ml:times"),
            }

        # offloaded: locate the store entity and open it
        store_ref = entity.get_attribute("yprov4ml:stored_in")
        store_entity = document.get_element(store_ref) if store_ref else None
        if store_entity is None:
            raise ServiceError(f"metric {metric!r} has no samples and no store")
        rel_path = str(store_entity.get_attribute("yprov4ml:path"))
        if base_dir is None:
            raise ServiceError(
                "offloaded metrics need base_dir (directory of the prov file)"
            )
        from repro.storage import open_store

        store = open_store(Path(base_dir) / rel_path)
        series = store.read_series(str(entity.get_attribute("yprov4ml:series")))
        return {
            "steps": series.columns["steps"].tolist(),
            "values": series.columns["values"].tolist(),
            "times": series.columns["times"].tolist(),
        }

    # service-wide -----------------------------------------------------------
    def find_runs(self) -> List[Dict[str, Any]]:
        """All RunExecution activities stored in the attached service.

        Compiles to a service-wide PROVQL query so the ``prov_type``
        value index serves the lookup.
        """
        if self.service is None:
            raise ServiceError("no service attached")
        query = Query(
            match=MatchClause("element"),
            where=Comparison(Field("type"), "=", "yprov4ml:RunExecution"),
            returns=ReturnClause(
                projections=(
                    Field("doc"),
                    Field("id"),
                    Field("label"),
                    Field("type"),
                    Field("kind"),
                )
            ),
        )
        return [
            {
                "doc_id": row["doc"],
                "qualified_name": row["id"],
                "label": row["label"],
                "prov_type": row["type"],
                "kind": row["kind"],
            }
            for row in self.service.query(None, query).rows
        ]
