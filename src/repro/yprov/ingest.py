"""High-throughput batch ingest: binary wire format + pipelined client.

The single-document path (``PUT /documents/<id>``) pays one HTTP round
trip and one durability point per document — correct, and two orders of
magnitude too slow when thousands of ranks publish provenance per epoch
(the asynchronous, batched capture regime of Souza et al.).  This module
promotes the WAL wire format of :mod:`repro.core.journal` to the
network:

**Batch codec.**  A batch is a header record followed by one record per
document, each in the length-prefixed, crc-per-record journal format::

    <length:08x> <crc32:08x> {"k":"batch","v":1,"n":<count>}\\n
    <length:08x> <crc32:08x> {"k":"doc","id":...,"text":...}\\n
    ...

The properties the journal format earns on disk transfer directly to the
wire: any single flipped bit fails a crc, any truncation yields a clean
record prefix (no partial record is ever surfaced), and
encode → decode is the identity.  :func:`decode_batch` is strict (one
damaged byte rejects the batch — the transport's job is to deliver it
intact); :func:`iter_batch_prefix` is the lenient spool/debug reader
that salvages the intact prefix.

**BatchClient.**  An asynchronous, pipelined publisher: ``publish()``
buffers documents, full batches are handed to a bounded queue, and a
small pool of workers — each with its own
:class:`~repro.yprov.client.ProvenanceClient` (circuit breakers are not
shared across threads) — keeps several batches in flight at once.  The
bounded queue is the memory story: a producer that outruns the service
blocks rather than buffering without bound.  The spool contract of
:meth:`ProvenanceClient.publish` is preserved batch-wise: a batch that
fails in transport is re-spooled *in full*, a batch the server partially
applies re-spools **only the failed records** (the server reports
per-record status), and hard per-record rejections are reported, not
spooled — re-sending an invalid document would just fail again.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.journal import decode_record, encode_record
from repro.errors import (
    CircuitOpenError,
    IngestError,
    JournalError,
    ReproError,
    TransportError,
)

__all__ = [
    "BatchClient",
    "BatchReport",
    "decode_batch",
    "encode_batch",
    "iter_batch_prefix",
]

#: Batch wire-format schema version.
BATCH_VERSION = 1

#: Default documents per batch frame.
DEFAULT_BATCH_SIZE = 64

#: Default number of batches kept in flight (workers + queue slots).
DEFAULT_MAX_IN_FLIGHT = 4


# ---------------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------------

def encode_batch(records: Sequence[Tuple[str, str]]) -> bytes:
    """Serialize ``(doc_id, text)`` pairs into one batch frame."""
    if not records:
        raise IngestError("a batch must carry at least one document")
    parts = [encode_record({"k": "batch", "v": BATCH_VERSION,
                            "n": len(records)})]
    for doc_id, text in records:
        if not isinstance(doc_id, str) or not doc_id:
            raise IngestError(f"invalid doc id in batch: {doc_id!r}")
        if not isinstance(text, str):
            raise IngestError(
                f"batch text for {doc_id!r} must be str, got "
                f"{type(text).__name__}"
            )
        parts.append(encode_record({"k": "doc", "id": doc_id, "text": text}))
    return b"".join(parts)


def _decode_lines(data: bytes):
    """Yield ``(payload, clean)`` per newline-framed record; stop on damage.

    ``clean`` is ``None`` while records verify; the generator's last
    yield before stopping carries the issue string instead.  A trailing
    fragment without its newline is never surfaced as a record.
    """
    offset = 0
    size = len(data)
    while offset < size:
        newline = data.find(b"\n", offset)
        if newline == -1:
            yield None, f"truncated record at offset {offset} (no terminator)"
            return
        line = data[offset:newline + 1]
        try:
            payload = decode_record(line)
        except JournalError as exc:
            yield None, f"record at offset {offset} failed verification: {exc}"
            return
        yield payload, None
        offset = newline + 1


def decode_batch(data: bytes) -> List[Tuple[str, str]]:
    """Strictly decode one batch frame back into ``(doc_id, text)`` pairs.

    Raises :class:`~repro.errors.IngestError` on *any* damage — a bad
    header, a record failing its crc, a truncated tail, or a record
    count that disagrees with the header.  The caller retries or
    re-spools the whole batch; nothing partially applied is returned.
    """
    records: List[Tuple[str, str]] = []
    header: Optional[Dict[str, Any]] = None
    for payload, issue in _decode_lines(data):
        if issue is not None:
            raise IngestError(f"corrupt batch: {issue}")
        assert payload is not None
        if header is None:
            if payload.get("k") != "batch":
                raise IngestError(
                    f"corrupt batch: first record has kind "
                    f"{payload.get('k')!r}, expected 'batch'"
                )
            if payload.get("v") != BATCH_VERSION:
                raise IngestError(
                    f"unsupported batch version {payload.get('v')!r}"
                )
            if not isinstance(payload.get("n"), int) or payload["n"] < 1:
                raise IngestError("corrupt batch: bad record count in header")
            header = payload
            continue
        if payload.get("k") != "doc":
            raise IngestError(
                f"corrupt batch: unexpected record kind {payload.get('k')!r}"
            )
        doc_id = payload.get("id")
        text = payload.get("text")
        if not isinstance(doc_id, str) or not doc_id or not isinstance(text, str):
            raise IngestError("corrupt batch: doc record missing id/text")
        records.append((doc_id, text))
    if header is None:
        raise IngestError("corrupt batch: empty frame")
    if len(records) != header["n"]:
        raise IngestError(
            f"corrupt batch: header promises {header['n']} records, "
            f"frame carries {len(records)}"
        )
    return records


def iter_batch_prefix(
    data: bytes,
) -> Tuple[List[Tuple[str, str]], Optional[str]]:
    """Leniently decode the intact prefix of a (possibly damaged) frame.

    Returns ``(records, issue)`` where *records* is every complete,
    crc-verified document record before the first damage and *issue*
    describes that damage (``None`` for a fully intact frame).  Truncate
    the frame at any byte and the result is a clean prefix — a partial
    record is never surfaced, and a cut landing exactly on a record
    boundary is still reported, because the header's record count no
    longer matches what the frame carries.
    """
    records: List[Tuple[str, str]] = []
    promised: Optional[int] = None
    for payload, issue in _decode_lines(data):
        if issue is not None:
            return records, issue
        assert payload is not None
        if promised is None:
            if payload.get("k") != "batch":
                return records, (
                    f"first record has kind {payload.get('k')!r}, "
                    "expected 'batch'"
                )
            count = payload.get("n")
            promised = count if isinstance(count, int) else -1
            continue
        doc_id = payload.get("id")
        text = payload.get("text")
        if (payload.get("k") != "doc" or not isinstance(doc_id, str)
                or not isinstance(text, str)):
            return records, "malformed doc record"
        records.append((doc_id, text))
    if promised is None:
        return records, "empty frame"
    if len(records) != promised:
        return records, (
            f"header promises {promised} records, frame carries "
            f"{len(records)}"
        )
    return records, None


# ---------------------------------------------------------------------------
# pipelined client
# ---------------------------------------------------------------------------

@dataclass
class BatchReport:
    """Where every published document ended up (the flush()-time truth)."""

    acked: int = 0
    spooled: int = 0
    #: ``(doc_id, error)`` for hard per-record rejections (not retried).
    rejected: List[Tuple[str, str]] = field(default_factory=list)
    batches_sent: int = 0
    #: high-water mark of documents buffered client-side at once.
    peak_buffered: int = 0

    @property
    def safe(self) -> bool:
        """Every non-rejected document is acked or durably spooled."""
        return True  # flush() raises instead when the guarantee breaks

    def summary(self) -> str:
        return (
            f"acked={self.acked} spooled={self.spooled} "
            f"rejected={len(self.rejected)} batches={self.batches_sent} "
            f"peak_buffered={self.peak_buffered}"
        )


class BatchClient:
    """Pipelined batch publisher with the acked-or-spooled guarantee.

    ``publish()`` is cheap and non-blocking until ``max_in_flight``
    full batches are already queued (bounded client memory: at most
    ``batch_size × (max_in_flight + workers) + batch_size`` documents
    are ever held).  ``flush()`` drains everything in flight and
    returns the :class:`BatchReport`; with no spool configured an
    undeliverable batch makes ``flush()`` raise instead of dropping.

    Use as a context manager::

        with BatchClient(url, spool=spool) as batch:
            for doc_id, text in documents:
                batch.publish(doc_id, text)
        report = batch.report
    """

    def __init__(
        self,
        base_url: str,
        batch_size: int = DEFAULT_BATCH_SIZE,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        spool: Optional[Any] = None,
        client_factory: Optional[Callable[[], Any]] = None,
        timeout_s: float = 30.0,
        retries: int = 3,
    ) -> None:
        if batch_size < 1:
            raise IngestError(f"batch_size must be >= 1, got {batch_size}")
        if max_in_flight < 1:
            raise IngestError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.base_url = base_url
        self.batch_size = int(batch_size)
        self.max_in_flight = int(max_in_flight)
        self.spool = spool
        if client_factory is None:
            def client_factory() -> Any:  # pragma: no cover - default wiring
                from repro.yprov.client import ProvenanceClient

                return ProvenanceClient(
                    base_url, timeout_s=timeout_s, retries=retries
                )
        self._client_factory = client_factory
        self._pending: List[Tuple[str, str]] = []
        self._queue: "queue.Queue[Optional[List[Tuple[str, str]]]]" = (
            queue.Queue(maxsize=max_in_flight)
        )
        self._lock = threading.Lock()
        self._buffered = 0
        self._fatal: Optional[BaseException] = None
        self._undeliverable = 0
        self.report = BatchReport()
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"batch-ingest-{i}", daemon=True
            )
            for i in range(max_in_flight)
        ]
        for worker in self._workers:
            worker.start()
        self._closed = False

    # -- producer side -------------------------------------------------
    def publish(self, doc_id: str, text: str) -> None:
        """Buffer one document; ships when a full batch accumulates."""
        if self._closed:
            raise IngestError("BatchClient is closed")
        if not isinstance(doc_id, str) or not doc_id:
            raise IngestError(f"invalid doc id: {doc_id!r}")
        self._pending.append((doc_id, text))
        self._note_buffered(+1)
        if len(self._pending) >= self.batch_size:
            self._submit()

    def _note_buffered(self, delta: int) -> None:
        with self._lock:
            self._buffered += delta
            if self._buffered > self.report.peak_buffered:
                self.report.peak_buffered = self._buffered

    def _submit(self) -> None:
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self._queue.put(batch)  # blocks when max_in_flight batches queued

    def flush(self) -> BatchReport:
        """Ship the partial batch, wait for every batch in flight.

        Raises :class:`~repro.errors.IngestError` when documents could
        be neither delivered nor spooled (transport dead and no spool) —
        silence would break the acked-or-spooled contract.
        """
        self._submit()
        self._queue.join()
        if self._fatal is not None:
            fatal, self._fatal = self._fatal, None
            raise IngestError(
                f"batch worker failed: {fatal.__class__.__name__}: {fatal}"
            )
        if self._undeliverable:
            count, self._undeliverable = self._undeliverable, 0
            raise IngestError(
                f"{count} document(s) undeliverable and no spool configured"
            )
        return self.report

    def close(self) -> BatchReport:
        """Flush, stop the workers, and return the final report."""
        if self._closed:
            return self.report
        try:
            report = self.flush()
        finally:
            self._closed = True
            for _ in self._workers:
                self._queue.put(None)
            for worker in self._workers:
                worker.join(timeout=10)
        return report

    def __enter__(self) -> "BatchClient":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    # -- worker side ---------------------------------------------------
    def _worker(self) -> None:
        client = self._client_factory()
        while True:
            batch = self._queue.get()
            if batch is None:
                self._queue.task_done()
                return
            try:
                self._ship(client, batch)
            except BaseException as exc:  # keep the queue draining
                with self._lock:
                    if self._fatal is None:
                        self._fatal = exc
            finally:
                self._note_buffered(-len(batch))
                self._queue.task_done()

    def _ship(self, client: Any, batch: List[Tuple[str, str]]) -> None:
        try:
            results = client.put_documents_batch(batch)
        except (TransportError, CircuitOpenError):
            self._park(batch)
            return
        except ReproError as exc:
            # the server refused the whole frame (e.g. over the body
            # limit): a hard rejection of every record, not a retry case
            with self._lock:
                self.report.rejected.extend(
                    (doc_id, str(exc)) for doc_id, _ in batch
                )
            return
        retry: List[Tuple[str, str]] = []
        with self._lock:
            self.report.batches_sent += 1
            if len(results) < len(batch):
                # a torn response must not strand the unreported tail
                retry.extend(batch[len(results):])
                batch = batch[:len(results)]
            for (doc_id, text), result in zip(batch, results):
                status = result.get("status")
                if status == "stored":
                    self.report.acked += 1
                elif status == "unavailable":
                    retry.append((doc_id, text))
                else:
                    self.report.rejected.append(
                        (doc_id, str(result.get("error", "rejected")))
                    )
        if retry:
            # only the records the server could not take are re-spooled
            self._park(retry)

    def _park(self, records: List[Tuple[str, str]]) -> None:
        if self.spool is None:
            with self._lock:
                self._undeliverable += len(records)
            return
        for doc_id, text in records:
            self.spool.enqueue(doc_id, text)
        with self._lock:
            self.report.spooled += len(records)
