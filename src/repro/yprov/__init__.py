"""The yProv framework: provenance *consumers* and management service.

The paper situates yProv4ML inside the yProv ecosystem: "the yProv service
consists of three main components: the yProv web service front-end; a graph
database engine back-end based on Neo4J; and the yProv command line
interface".  This package reimplements that stack in-process:

* :mod:`repro.yprov.graphdb` — an embedded property-graph database
  (labels, properties, indexes, traversals) standing in for Neo4j;
* :mod:`repro.yprov.service` — the provenance management service exposing
  the REST API's verb surface (document CRUD, subgraph queries) as Python
  calls;
* :mod:`repro.yprov.handle` — the provenance handle system (persistent
  identifiers resolving to stored documents);
* :mod:`repro.yprov.explorer` — the yProv Explorer analogue (lineage,
  diffs, statistics over stored documents);
* :mod:`repro.yprov.cli` — the ``yprov`` command line interface;
* :mod:`repro.yprov.client` — the resilient HTTP client (timeouts,
  seeded retries, circuit breaker, ``Retry-After``);
* :mod:`repro.yprov.spool` — the durable store-and-forward queue backing
  at-least-once publishing;
* :mod:`repro.yprov.chaosproxy` — a seeded fault-injection TCP proxy used
  to prove the transport never loses a document.
"""

from repro.yprov.graphdb import GraphDB, Node, Edge
from repro.yprov.service import ProvenanceService
from repro.yprov.handle import HandleSystem
from repro.yprov.explorer import Explorer
from repro.yprov.rest import ProvenanceServer, ServerLimits, serve
from repro.yprov.render import export_html, render_svg
from repro.yprov.client import CircuitBreaker, ProvenanceClient, PublishResult
from repro.yprov.spool import Spool, DrainReport
from repro.yprov.chaosproxy import ChaosConfig, ChaosProxy

__all__ = [
    "GraphDB",
    "Node",
    "Edge",
    "ProvenanceService",
    "HandleSystem",
    "Explorer",
    "ProvenanceServer",
    "ServerLimits",
    "serve",
    "export_html",
    "render_svg",
    "CircuitBreaker",
    "ProvenanceClient",
    "PublishResult",
    "Spool",
    "DrainReport",
    "ChaosConfig",
    "ChaosProxy",
]
