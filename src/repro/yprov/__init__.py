"""The yProv framework: provenance *consumers* and management service.

The paper situates yProv4ML inside the yProv ecosystem: "the yProv service
consists of three main components: the yProv web service front-end; a graph
database engine back-end based on Neo4J; and the yProv command line
interface".  This package reimplements that stack in-process:

* :mod:`repro.yprov.graphdb` — an embedded property-graph database
  (labels, properties, indexes, traversals) standing in for Neo4j;
* :mod:`repro.yprov.service` — the provenance management service exposing
  the REST API's verb surface (document CRUD, subgraph queries) as Python
  calls;
* :mod:`repro.yprov.handle` — the provenance handle system (persistent
  identifiers resolving to stored documents);
* :mod:`repro.yprov.explorer` — the yProv Explorer analogue (lineage,
  diffs, statistics over stored documents);
* :mod:`repro.yprov.cli` — the ``yprov`` command line interface.
"""

from repro.yprov.graphdb import GraphDB, Node, Edge
from repro.yprov.service import ProvenanceService
from repro.yprov.handle import HandleSystem
from repro.yprov.explorer import Explorer
from repro.yprov.rest import ProvenanceServer, serve
from repro.yprov.render import export_html, render_svg

__all__ = [
    "GraphDB",
    "Node",
    "Edge",
    "ProvenanceService",
    "HandleSystem",
    "Explorer",
    "ProvenanceServer",
    "serve",
    "export_html",
    "render_svg",
]
