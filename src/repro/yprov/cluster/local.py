"""A whole cluster in one process: router + N shards + manifest.

:class:`LocalCluster` wires together everything the package provides so
tests, the CLI quickstart (``yprov cluster serve``) and the chaos
integration suite get a real cluster — real HTTP servers on real ports,
a real router with failure detection — without any deployment:

* N shard nodes: one :class:`~repro.yprov.service.ProvenanceService`
  each (optionally persistent under ``<root>/<shard-id>/``) behind a
  :class:`~repro.yprov.rest.ProvenanceServer` with ``role=shard``;
* one :class:`~repro.yprov.cluster.router.ClusterRouter` over them,
  served by a second REST front-end with ``role=router`` whose
  ``/health`` carries the router's replication lag and shard states;
* an optional proxy layer between router and shards
  (``proxy_factory`` — the chaos tests interpose
  :class:`~repro.yprov.chaosproxy.ChaosProxy` here);
* the on-disk ``cluster.json`` manifest (:func:`write_manifest`), which
  ``repro.lint``'s PL113 rule audits for under-replicated documents.

The heartbeat thread is *not* started by default: tests drive failure
detection deterministically with ``cluster.heartbeater.tick()``.  Pass
``heartbeat_interval_s`` to run it for real (the CLI does).  The same
pattern covers self-healing: an
:class:`~repro.yprov.cluster.antientropy.AntiEntropy` sweeper is always
attached (so ``POST /cluster/sweep`` and ``/health`` work), but its
thread only runs when ``sweep_interval_s`` is set; per-shard bit-rot
:class:`~repro.yprov.cluster.antientropy.Scrubber` threads run when
``scrub_interval_s`` is set.  With a persistent ``root`` the router
journals its repair queue under ``<root>/router/`` and replays it on
construction — restart the cluster over the same root and pending
repairs survive.
"""

from __future__ import annotations

import json
import urllib.parse
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.atomicio import atomic_write_json
from repro.errors import ClusterError
from repro.yprov.cluster.antientropy import AntiEntropy, Scrubber
from repro.yprov.cluster.membership import Heartbeater
from repro.yprov.cluster.router import ClusterRouter, RouterConfig, ShardInfo
from repro.yprov.rest import ProvenanceServer, ServerLimits, TenantQuotas, serve
from repro.yprov.service import ProvenanceService

__all__ = ["LocalCluster", "write_manifest", "read_manifest"]

#: Manifest schema version (bump on incompatible layout changes).
MANIFEST_VERSION = 1


def write_manifest(
    path: Union[str, Path],
    replication: int,
    shards: List[Dict[str, Any]],
) -> Path:
    """Atomically write the ``cluster.json`` manifest.

    *shards* entries are ``{"id": ..., "url": ..., "root": ...}``
    (``root`` may be ``None`` for in-memory shards).  The manifest is
    what offline tooling — ``repro.lint``'s PL113 under-replication
    audit, the post-chaos durability audit — uses to find every shard's
    document directory without a live router.
    """
    payload = {
        "version": MANIFEST_VERSION,
        "replication": int(replication),
        "shards": [
            {
                "id": str(shard["id"]),
                "url": shard.get("url"),
                "root": (
                    None if shard.get("root") is None else str(shard["root"])
                ),
            }
            for shard in shards
        ],
    }
    return atomic_write_json(path, payload, indent=2, sort_keys=True)


def read_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and structurally validate a ``cluster.json`` manifest."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ClusterError(f"unreadable cluster manifest {path}: {exc}") from exc
    if not isinstance(payload, dict) or "shards" not in payload:
        raise ClusterError(f"malformed cluster manifest {path}")
    if not isinstance(payload["shards"], list):
        raise ClusterError(f"malformed cluster manifest {path}: bad shards")
    return payload


class LocalCluster:
    """Router + N in-process shards; context manager tears it all down.

    ``proxy_factory(shard_id, host, port) -> proxy`` (anything with
    ``url`` and ``stop()``) interposes a proxy between the router and
    that shard; the router then dials the proxy.  Built proxies are kept
    in :attr:`proxies` so chaos tests can flip their fault schedules
    mid-run.
    """

    def __init__(
        self,
        n_shards: int = 3,
        replication: int = 1,
        root: Optional[Union[str, Path]] = None,
        router_config: Optional[RouterConfig] = None,
        shard_limits: Optional[ServerLimits] = None,
        router_limits: Optional[ServerLimits] = None,
        quotas: Optional[TenantQuotas] = None,
        heartbeat_interval_s: Optional[float] = None,
        sweep_interval_s: Optional[float] = None,
        scrub_interval_s: Optional[float] = None,
        host: str = "127.0.0.1",
        router_port: int = 0,
        proxy_factory: Optional[Callable[[str, str, int], Any]] = None,
        client_factory: Optional[Callable[..., Any]] = None,
    ) -> None:
        if n_shards < 1:
            raise ClusterError(f"n_shards must be >= 1, got {n_shards}")
        self.root = Path(root) if root is not None else None
        config = router_config or RouterConfig(replication=replication)
        self.services: Dict[str, ProvenanceService] = {}
        self.shard_servers: Dict[str, ProvenanceServer] = {}
        self.proxies: Dict[str, Any] = {}
        self.router: Optional[ClusterRouter] = None
        self.router_server: Optional[ProvenanceServer] = None
        self.heartbeater: Optional[Heartbeater] = None
        self.anti_entropy: Optional[AntiEntropy] = None
        self.scrubbers: Dict[str, Scrubber] = {}
        infos: List[ShardInfo] = []
        try:
            for i in range(n_shards):
                shard_id = f"shard-{i}"
                shard_root = (
                    None if self.root is None else self.root / shard_id
                )
                service = ProvenanceService(root=shard_root)
                server = serve(
                    service, host=host, limits=shard_limits,
                    node_role="shard", shard_id=shard_id,
                )
                self.services[shard_id] = service
                self.shard_servers[shard_id] = server
                url = server.url
                if proxy_factory is not None:
                    proxy = proxy_factory(shard_id, host, server.port)
                    self.proxies[shard_id] = proxy
                    url = proxy.url
                infos.append(ShardInfo(shard_id=shard_id, url=url))
            self.router = ClusterRouter(
                infos,
                config=config,
                client_factory=client_factory,
                state_dir=(
                    None if self.root is None else self.root / "router"
                ),
            )
            self.heartbeater = Heartbeater(
                self.router.detector,
                interval_s=heartbeat_interval_s or 1.0,
                on_change=self.router.on_membership_change,
            )
            if heartbeat_interval_s is not None:
                self.heartbeater.start()
            self.anti_entropy = AntiEntropy(
                self.router,
                buckets=config.digest_buckets,
                interval_s=sweep_interval_s or 30.0,
            )
            if sweep_interval_s is not None:
                self.anti_entropy.start()
            if scrub_interval_s is not None:
                for shard_id, service in self.services.items():
                    self.scrubbers[shard_id] = Scrubber(
                        service, interval_s=scrub_interval_s
                    ).start()
            self.router_server = serve(
                self.router,  # duck-types the ProvenanceService verbs
                host=host,
                port=router_port,
                limits=router_limits,
                node_role="router",
                health_extra=self.router.cluster_health,
                quotas=quotas,
            )
            if self.root is not None:
                self.write_manifest()
        except BaseException:
            self.stop()
            raise

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """The router's ``/api/v0`` base URL — what clients should dial."""
        if self.router_server is None:
            raise ClusterError("cluster is not running")
        return self.router_server.url

    @property
    def manifest_path(self) -> Optional[Path]:
        return None if self.root is None else self.root / "cluster.json"

    def write_manifest(self) -> Optional[Path]:
        """(Re)write ``cluster.json`` reflecting current membership.

        Shard roots are written *relative to the manifest* (they sit
        next to it under ``self.root``), so the audit works from any
        working directory and survives the root moving.
        """
        if self.root is None or self.router is None:
            return None
        shards = []
        for info in self.router.shard_infos():
            shard_root = (
                info.shard_id
                if info.shard_id in self.services
                and self.services[info.shard_id].root is not None
                else None
            )
            shards.append(
                {"id": info.shard_id, "url": info.url, "root": shard_root}
            )
        return write_manifest(
            self.manifest_path, self.router.config.replication, shards
        )

    # ------------------------------------------------------------------
    # chaos hooks
    # ------------------------------------------------------------------
    def kill_shard(self, shard_id: str) -> None:
        """Stop a shard's HTTP server abruptly (router keeps dialing it)."""
        if shard_id not in self.shard_servers:
            raise ClusterError(f"unknown shard: {shard_id!r}")
        self.shard_servers[shard_id].stop()

    def restart_shard(self, shard_id: str) -> None:
        """Bring a killed shard back on its old port from its disk root.

        A fresh :class:`ProvenanceService` re-ingests the shard's
        persisted documents (in-memory shards come back empty — exactly
        like a real crash).
        """
        if shard_id not in self.shard_servers:
            raise ClusterError(f"unknown shard: {shard_id!r}")
        old = self.shard_servers[shard_id]
        parts = urllib.parse.urlsplit(old.url)
        host, port = parts.hostname or "127.0.0.1", old.port
        old.stop()
        shard_root = None if self.root is None else self.root / shard_id
        service = ProvenanceService(root=shard_root)
        self.services[shard_id] = service
        self.shard_servers[shard_id] = serve(
            service, host=host, port=port,
            node_role="shard", shard_id=shard_id,
        )

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Tear down router, daemons, proxies and shards; idempotent."""
        if self.heartbeater is not None:
            self.heartbeater.stop()
        for scrubber in self.scrubbers.values():
            scrubber.stop()
        if self.router_server is not None:
            self.router_server.stop()
        if self.router is not None:
            self.router.close()  # stops the sweeper, closes the journal
        for proxy in self.proxies.values():
            proxy.stop()
        for server in self.shard_servers.values():
            server.stop()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
