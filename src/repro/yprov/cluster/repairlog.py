"""Durable repair journal: the router's repair queue survives SIGKILL.

The repair queue is the cluster's promise ledger — every quorum-acked
write that could not reach a preferred shard leaves an entry saying
"this copy still needs to be placed".  Keeping that ledger only in
memory (as PR 6 did) makes replica convergence a property of one
process's uptime: a router crash strands acked documents below full
replication with nothing left to notice but an eventual offline lint.

:class:`RepairLog` fixes that by journaling every queue transition to a
``repairs.wal`` under the cluster state directory, reusing the
crc-checked wire format of the core write-ahead journal
(:mod:`repro.core.journal`), exactly as the workflow journal does.  The
router appends the *enqueue* record synchronously — before the write is
acked to the client — so a hinted-handoff obligation is durable by the
time the caller believes the document is stored.  On construction the
router replays the log and starts with the pending set a crashed
predecessor left behind.

Record kinds (all payloads carry ``doc`` and/or ``shard``):

``enqueue``
    ``(doc, shard)`` needs a copy placed on ``shard``.
``done``
    The copy landed (or the repair became moot); the pair is settled.
``drop-doc``
    The document was deleted: every pending entry for it is void.
``drop-shard``
    The shard left the cluster: every pending entry targeting it is void.

Replay folds the records in order into the surviving pending list
(order-preserving, first-enqueue order).  The log self-compacts: once
the settled records outnumber the pending ones by a wide margin the
whole file is atomically rewritten to just the pending entries, so a
long-lived router's journal stays proportional to its backlog, not its
history.  Corrupt or torn tail records are skipped exactly like the
core journal's reader — a crash mid-append never poisons the intact
prefix.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.atomicio import atomic_write_bytes
from repro.core.journal import decode_record, encode_record
from repro.errors import ClusterError, JournalError

__all__ = ["RepairLog", "replay_pending", "REPAIR_LOG_NAME"]

#: File name of the repair journal inside a cluster state directory.
REPAIR_LOG_NAME = "repairs.wal"

#: Compact when settled records exceed ``max(_COMPACT_MIN, 4 * pending)``.
_COMPACT_MIN = 256


def replay_pending(path: Union[str, Path]) -> Tuple[List[Tuple[str, str]], int]:
    """Fold a repair journal into ``(pending pairs, bad record count)``.

    Pending pairs come back in first-enqueue order.  Unreadable lines are
    counted and skipped (torn tail after SIGKILL, bit rot) — replay always
    recovers every intact record, mirroring the core journal's reader.
    """
    path = Path(path)
    pending: Dict[Tuple[str, str], None] = {}
    bad = 0
    if not path.is_file():
        return [], 0
    with path.open("rb") as fh:
        for line in fh:
            if not line.strip():
                continue
            try:
                record = decode_record(line)
            except JournalError:
                bad += 1
                continue
            kind = record.get("k")
            doc = record.get("doc")
            shard = record.get("shard")
            if kind == "enqueue" and doc and shard:
                pending.setdefault((str(doc), str(shard)), None)
            elif kind == "done" and doc and shard:
                pending.pop((str(doc), str(shard)), None)
            elif kind == "drop-doc" and doc:
                for pair in [p for p in pending if p[0] == doc]:
                    del pending[pair]
            elif kind == "drop-shard" and shard:
                for pair in [p for p in pending if p[1] == shard]:
                    del pending[pair]
            else:
                bad += 1  # structurally valid line, unknown/incomplete kind
    return list(pending), bad


class RepairLog:
    """Append-only, checksummed ledger of pending replica repairs.

    Thread-safe: the router appends from request threads, the heartbeat
    thread and the anti-entropy sweeper concurrently.  ``fsync`` (default
    on) makes each transition durable before the append returns —
    ``fsync=False`` keeps the ordering guarantees but leaves durability
    to OS writeback (tests, throwaway clusters).
    """

    def __init__(self, path: Union[str, Path], fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._pending, self.bad_records = replay_pending(self.path)
        self._settled_since_compact = 0
        self._fh = self.path.open("ab")  # lint: disable=SL201 -- the append-only repair WAL is itself the durability primitive; atomic rewrite would defeat it
        if self.bad_records:
            # a torn tail would otherwise corrupt-check every future
            # replay; rewriting now leaves a clean, minimal journal
            self._compact_locked()

    # ------------------------------------------------------------------
    def pending(self) -> List[Tuple[str, str]]:
        """The surviving ``(doc, shard)`` pairs, in first-enqueue order."""
        with self._lock:
            return list(self._pending)

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------------
    def record_enqueue(self, doc_id: str, shard_id: str) -> None:
        """Durably note that *shard_id* owes a copy of *doc_id*."""
        self._append("enqueue", doc=doc_id, shard=shard_id)

    def record_done(self, doc_id: str, shard_id: str) -> None:
        """Settle one pending pair (repair landed or became moot)."""
        self._append("done", doc=doc_id, shard=shard_id)

    def record_drop_doc(self, doc_id: str) -> None:
        """Void every pending entry for a deleted document."""
        self._append("drop-doc", doc=doc_id)

    def record_drop_shard(self, shard_id: str) -> None:
        """Void every pending entry targeting a departed shard."""
        self._append("drop-shard", shard=shard_id)

    def _append(self, kind: str, doc: Optional[str] = None,
                shard: Optional[str] = None) -> None:
        record: Dict[str, str] = {"k": kind}
        if doc is not None:
            record["doc"] = doc
        if shard is not None:
            record["shard"] = shard
        with self._lock:
            if self._fh is None:
                raise ClusterError(f"repair log {self.path} is closed")
            self._fh.write(encode_record(record))
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._fold_locked(kind, doc, shard)
            if self._settled_since_compact >= max(
                _COMPACT_MIN, 4 * len(self._pending)
            ):
                self._compact_locked()

    def _fold_locked(self, kind: str, doc: Optional[str],
                     shard: Optional[str]) -> None:
        if kind == "enqueue":
            if (doc, shard) not in self._pending:
                self._pending.append((doc, shard))
            return
        if kind == "done":
            if (doc, shard) in self._pending:
                self._pending.remove((doc, shard))
                self._settled_since_compact += 1
            return
        if kind == "drop-doc":
            survivors = [p for p in self._pending if p[0] != doc]
        else:  # drop-shard
            survivors = [p for p in self._pending if p[1] != shard]
        self._settled_since_compact += len(self._pending) - len(survivors)
        self._pending = survivors

    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Rewrite the journal to just the pending entries (atomic)."""
        with self._lock:
            self._compact_locked()

    def _compact_locked(self) -> None:
        if self._getattr_fh() is not None:
            self._fh.close()
        body = b"".join(
            encode_record({"k": "enqueue", "doc": doc, "shard": shard})
            for doc, shard in self._pending
        )
        atomic_write_bytes(self.path, body, fsync=self.fsync)
        self._fh = self.path.open("ab")  # lint: disable=SL201 -- reopening the append-only repair WAL after atomic compaction
        self._settled_since_compact = 0
        self.bad_records = 0

    def _getattr_fh(self):
        """The open handle, or ``None`` during construction's first compact."""
        return getattr(self, "_fh", None)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and close; further appends raise. Idempotent."""
        with self._lock:
            if self._fh is None:
                return
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RepairLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._getattr_fh() is None else "open"
        return (
            f"RepairLog({str(self.path)!r}, {state}, "
            f"pending={len(self._pending)})"
        )
