"""The cluster coordinator: quorum writes, failover reads, scatter-gather.

A :class:`ClusterRouter` fronts N shard nodes (each an ordinary
:class:`~repro.yprov.service.ProvenanceService` behind
:mod:`repro.yprov.rest`) and exposes the *same* verb surface as a single
service, so :func:`repro.yprov.rest.serve` can put the identical REST API
over it with ``node_role="router"``.  Clients cannot tell the difference
except by ``GET /health``.

Placement and replication
    A document lives on the first ``replication + 1`` distinct shards of
    its :class:`~repro.yprov.cluster.ring.HashRing` walk.  Writes are
    **sloppy quorum**: the router walks the full preference order,
    skipping shards the failure detector calls DEAD, until ``n_copies``
    acks land — a preferred shard that is down is substituted by the next
    shard on the walk (a handoff copy) and queued for repair.  The write
    is acked to the caller once a majority of ``n_copies`` acks arrive
    (``R=1`` → 2 of 2), so **an acked write always has quorum live
    copies** and survives any single shard loss.  Short of quorum the
    router raises :class:`~repro.errors.QuorumError`, which the client
    treats as a transport failure (retry, then spool) — never a silent
    loss.

Reads
    Document reads walk the same preference order, failing over past
    dead or erroring shards to the first copy that answers.  A shard that
    answers "not found" is skipped too: handoff copies can live beyond
    the preferred members.

Scatter-gather PROVQL
    Service-wide queries are rewritten by
    :func:`repro.query.merge.shard_query`, fanned out to every non-dead
    shard, and merged exactly (dedup / global sort / slice / re-project)
    by :func:`repro.query.merge.merge_results`.  Coverage is checked
    before merging: if as many ring shards failed to answer as the copies
    every acked document is guaranteed to hold (``n_copies`` normally,
    only ``write_quorum`` while repairs are pending), some document may
    have had *every* copy on the silent shards, and the router raises
    :class:`~repro.errors.PartialResultError` rather than return a
    silently truncated answer.  Document-scoped queries do not scatter —
    one shard holds the whole document, so they route like reads.

Failure evidence flows both ways: the heartbeat
(:class:`~repro.yprov.cluster.membership.Heartbeater`, wired by the
caller) probes ``/health`` actively, and every real request reports its
outcome passively.  When a shard returns to ALIVE the router replays the
pending repair queue, restoring full replication; the queue's length is
the ``replication_lag`` the router's own ``/health`` reports.

Self-healing
    With a ``state_dir`` the repair queue is durable: every transition is
    journaled to a crc-checked ``repairs.wal``
    (:mod:`repro.yprov.cluster.repairlog`) *before* the triggering write
    is acked, and replayed on construction — a router SIGKILL no longer
    strands acked documents below full replication.  Reads perform
    **read repair**: a live preferred shard answering "not found" while
    another copy serves the document is queued (optionally fixed inline)
    for re-replication.  Repairs copy from the *winner* replica — the
    majority content digest among live holders, ties broken by the
    earliest holder in the ring walk — so a stale copy is never
    propagated over a fresher one.  :meth:`sweep` runs one anti-entropy
    pass (bucketed digest comparison across replicas, see
    :mod:`repro.yprov.cluster.antientropy`) and :meth:`scrub` fans a
    bit-rot scrub out to every shard, re-queueing whatever the shards
    quarantined.

The router is shared by the REST handler's worker threads: the repair
queue and membership changes are lock-protected, per-shard clients open
one connection per request (no shared sockets).  The request path itself
is lock-free — it reads the ring, clients and detector without the lock
and instead *tolerates* transitions: membership changes are ordered so a
racing request sees at worst a shard that "left mid-request", which is
handled exactly like an unreachable shard (fail over, next copy).
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import (
    CircuitOpenError,
    ClusterError,
    DocumentNotFoundError,
    PartialResultError,
    QuorumError,
    ReproError,
    ShardDepartedError,
    TransportError,
)
from repro.query import QueryResult, merge_results, parse, shard_query
from repro.query.ast import Query as ProvqlQuery
from repro.yprov.client import CircuitBreaker, ProvenanceClient
from repro.yprov.cluster.membership import DEAD, FailureDetector
from repro.yprov.cluster.repairlog import REPAIR_LOG_NAME, RepairLog
from repro.yprov.cluster.ring import DEFAULT_VNODES, HashRing

__all__ = ["ClusterRouter", "RouterConfig", "ShardInfo"]

#: Errors that mean "this shard did not serve the request" (as opposed to
#: "the request itself is bad"): the router fails over and feeds the
#: failure detector.
_SHARD_DOWN = (TransportError, CircuitOpenError, ShardDepartedError)


@dataclass(frozen=True)
class ShardInfo:
    """One shard node: a stable id and its ``/api/v0`` base URL."""

    shard_id: str
    url: str


@dataclass(frozen=True)
class RouterConfig:
    """Knobs for :class:`ClusterRouter`.

    ``replication`` is the number of copies *beyond* the primary, so the
    cluster stores ``replication + 1`` copies and the write quorum is a
    majority of those (``replication=1`` → 2 copies, quorum 2: both must
    ack, and either alone can serve reads after a failure).

    ``read_repair`` selects how much divergence a read is allowed to
    notice: ``"off"`` (never), ``"missing"`` (a live preferred shard
    answering "not found" is queued for repair — the default, free of
    extra RPCs), or ``"verify"`` (additionally compare content digests
    across live preferred holders on every read and queue any copy that
    disagrees with the majority).  ``read_repair_inline`` fixes the
    lagging copy on the read path itself instead of waiting for the next
    repair drain.  ``digest_buckets`` is the anti-entropy bucket count —
    it must match on every node, since bucket membership is computed
    from the doc id alone.  ``journal_fsync`` controls whether the
    repair journal fsyncs each append (leave on outside tests).
    """

    replication: int = 1
    vnodes: int = DEFAULT_VNODES
    suspect_after: int = 2
    dead_after: int = 4
    request_timeout_s: float = 5.0
    probe_timeout_s: float = 1.0
    read_repair: str = "missing"
    read_repair_inline: bool = False
    digest_buckets: int = 64
    journal_fsync: bool = True

    def __post_init__(self) -> None:
        if self.replication < 0:
            raise ClusterError(
                f"replication must be >= 0, got {self.replication}"
            )
        if self.read_repair not in ("off", "missing", "verify"):
            raise ClusterError(
                f"read_repair must be 'off', 'missing' or 'verify', "
                f"got {self.read_repair!r}"
            )
        if self.digest_buckets < 1:
            raise ClusterError(
                f"digest_buckets must be >= 1, got {self.digest_buckets}"
            )

    @property
    def n_copies(self) -> int:
        return self.replication + 1

    @property
    def write_quorum(self) -> int:
        return self.n_copies // 2 + 1


def _default_client_factory(url: str, timeout_s: float) -> ProvenanceClient:
    # retries=0: failover is the router's job, and retrying into a dying
    # shard would only blur the failure detector's signal.  The breaker's
    # zero cool-down keeps it from refusing a healed shard for 30s after
    # the detector already promoted it back to ALIVE.
    return ProvenanceClient(
        url,
        timeout_s=timeout_s,
        retries=0,
        breaker=CircuitBreaker(failure_threshold=3, reset_timeout_s=0.0),
    )


class ClusterRouter:
    """Coordinator over N shards; duck-types the ProvenanceService verbs.

    ``client_factory(url, timeout_s) -> ProvenanceClient`` is injectable
    for tests (fake transports, chaos proxies).
    """

    def __init__(
        self,
        shards: List[ShardInfo],
        config: Optional[RouterConfig] = None,
        client_factory: Optional[
            Callable[[str, float], ProvenanceClient]
        ] = None,
        state_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if not shards:
            raise ClusterError("router needs at least one shard")
        self.config = config or RouterConfig()
        if self.config.n_copies > len(shards):
            raise ClusterError(
                f"replication={self.config.replication} needs at least "
                f"{self.config.n_copies} shards, got {len(shards)}"
            )
        self._factory = client_factory or _default_client_factory
        self._lock = threading.Lock()
        self._shards: Dict[str, ShardInfo] = {}
        self._clients: Dict[str, ProvenanceClient] = {}
        self._probes: Dict[str, ProvenanceClient] = {}
        self.ring = HashRing(vnodes=self.config.vnodes)
        for info in shards:
            if info.shard_id in self._shards:
                raise ClusterError(f"duplicate shard id: {info.shard_id!r}")
            self._register(info)
        self.detector = FailureDetector(
            [s.shard_id for s in shards],
            suspect_after=self.config.suspect_after,
            dead_after=self.config.dead_after,
            probe=self._probe,
        )
        # pending (doc_id, shard_id) re-replications: an ordered list for
        # fair draining plus a mirror set for O(1) dedup under the lock
        self._repairs: List[Tuple[str, str]] = []
        self._repair_set: set = set()
        #: attached anti-entropy sweeper, if any (set by AntiEntropy)
        self.anti_entropy: Optional[Any] = None
        self.repair_log: Optional[RepairLog] = None
        if state_dir is not None:
            self.repair_log = RepairLog(
                Path(state_dir) / REPAIR_LOG_NAME,
                fsync=self.config.journal_fsync,
            )
            stale_shards = set()
            for doc_id, shard_id in self.repair_log.pending():
                if shard_id not in self._shards:
                    stale_shards.add(shard_id)
                    continue
                self._repairs.append((doc_id, shard_id))
                self._repair_set.add((doc_id, shard_id))
            for shard_id in sorted(stale_shards):
                # a predecessor's journal may owe copies to shards that
                # have since left the cluster — void them for good
                self.repair_log.record_drop_shard(shard_id)

    def _register(self, info: ShardInfo) -> None:
        self._shards[info.shard_id] = info
        self._clients[info.shard_id] = self._factory(
            info.url, self.config.request_timeout_s
        )
        self._probes[info.shard_id] = self._factory(
            info.url, self.config.probe_timeout_s
        )
        self.ring.add(info.shard_id)

    # ------------------------------------------------------------------
    # failure evidence
    # ------------------------------------------------------------------
    def _probe(self, shard_id: str) -> bool:
        """One active health probe; used by the failure detector."""
        client = self._probes.get(shard_id)
        if client is None:
            return False  # shard removed while a probe round was running
        try:
            payload = client.health()
        except _SHARD_DOWN:
            return False
        return isinstance(payload, dict) and "status" in payload

    def _record(self, shard_id: str, ok: bool) -> None:
        """Feed the detector, tolerating membership transitions."""
        try:
            if ok:
                self.detector.record_success(shard_id)
            else:
                self.detector.record_failure(shard_id)
        except ClusterError:
            pass  # shard joined/left between the ring walk and now

    def _call(self, shard_id: str, fn: Callable[[ProvenanceClient], Any]) -> Any:
        """Run one request against a shard, feeding the detector."""
        client = self._clients.get(shard_id)
        if client is None:
            # the shard left the cluster after this request walked the
            # ring: indistinguishable from a down shard — fail over
            raise ShardDepartedError(
                f"shard {shard_id!r} left the cluster mid-request"
            )
        try:
            result = fn(client)
        except _SHARD_DOWN:
            self._record(shard_id, ok=False)
            raise
        self._record(shard_id, ok=True)
        return result

    def _ordered_targets(self, key: str) -> List[str]:
        """Full ring walk for *key* with DEAD shards pushed to the end.

        Dead shards stay as a last resort: when every copy-holder looks
        dead the router still tries them rather than fail without asking.
        """
        walk = self.ring.walk(key)
        states = self.detector.states()
        return (
            [s for s in walk if states.get(s) != DEAD]
            + [s for s in walk if states.get(s) == DEAD]
        )

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put_document(self, doc_id: str, document: str) -> str:
        """Replicate *document* to ``n_copies`` shards; ack on quorum.

        Walks the preference order skipping DEAD shards (sloppy quorum:
        a down preferred member is substituted by the next shard and
        queued for repair).  Raises :class:`QuorumError` when fewer than
        a majority of copies ack — the document is then *not* considered
        stored, and the client's retry/spool machinery takes over.
        Non-transport rejections (invalid document, bad id) propagate
        immediately: every shard would refuse them identically.
        """
        cfg = self.config
        walk = self.ring.walk(doc_id)
        preferred = set(walk[: cfg.n_copies])
        states = self.detector.states()
        acked: List[str] = []
        for shard_id in walk:
            if len(acked) >= cfg.n_copies:
                break
            if states.get(shard_id) == DEAD:
                if shard_id in preferred:
                    self._enqueue_repair(doc_id, shard_id)
                continue
            try:
                self._call(shard_id, lambda c: c.put_document(doc_id, document))
            except _SHARD_DOWN:
                if shard_id in preferred:
                    self._enqueue_repair(doc_id, shard_id)
                continue
            acked.append(shard_id)
        if len(acked) < cfg.write_quorum:
            raise QuorumError(
                f"write of {doc_id!r} reached {len(acked)} of "
                f"{cfg.n_copies} copies (quorum {cfg.write_quorum}); "
                f"acks from {acked}",
                acked=len(acked),
                needed=cfg.write_quorum,
            )
        return doc_id

    def put_documents_batch(
        self, records: List[Tuple[str, str]]
    ) -> List[Dict[str, Any]]:
        """Route one ingest batch record-by-record, per-record outcomes.

        The batch arrives as one frame but its documents hash to
        different shards, so the router fans each record through
        :meth:`put_document` and reports one status per record in input
        order.  A quorum or cluster failure maps to ``"unavailable"`` —
        the document itself is fine, so the client keeps it (re-spools it)
        rather than quarantining; any other rejection is ``"rejected"``
        because every shard would refuse the record identically.
        """
        results: List[Dict[str, Any]] = []
        for record in records:
            try:
                doc_id, text = record
            except (TypeError, ValueError):
                results.append({
                    "id": None, "status": "rejected",
                    "error": f"malformed batch record: {record!r:.100}",
                })
                continue
            try:
                self.put_document(doc_id, text)
            except (QuorumError, ClusterError) as exc:
                results.append({
                    "id": doc_id, "status": "unavailable", "error": str(exc),
                })
            except ReproError as exc:
                results.append({
                    "id": doc_id, "status": "rejected", "error": str(exc),
                })
            else:
                results.append({"id": doc_id, "status": "stored"})
        return results

    def delete_document(self, doc_id: str) -> None:
        """Delete every copy (preferred and handoff) of *doc_id*.

        A shard that cannot be reached makes the delete fail with
        :class:`ClusterError` — a half-deleted document would resurrect
        through scatter-gather when the unreachable shard heals, so the
        caller must retry until every live copy is gone.
        """
        deleted = 0
        unreachable: List[str] = []
        for shard_id in self._ordered_targets(doc_id):
            try:
                self._call(shard_id, lambda c: c.delete_document(doc_id))
                deleted += 1
            except DocumentNotFoundError:
                continue
            except _SHARD_DOWN:
                unreachable.append(shard_id)
        if unreachable:
            raise ClusterError(
                f"delete of {doc_id!r} could not reach shard(s) "
                f"{unreachable}; retry until all copies are gone"
            )
        if deleted == 0:
            raise DocumentNotFoundError(f"no such document: {doc_id!r}")
        self._drop_repairs(doc_id)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _read_from_copy(
        self, doc_id: str, fn: Callable[[ProvenanceClient], Any]
    ) -> Any:
        """Run *fn* against the first copy-holder that answers.

        A live *preferred* shard answering "not found" while a later
        copy serves the document is a lagging replica — the read-repair
        hook queues (or inline-fixes) it, per ``config.read_repair``.
        """
        not_found = 0
        lagging: List[str] = []
        errors: List[str] = []
        preferred = set(self.ring.preference(doc_id, self.config.n_copies))
        for shard_id in self._ordered_targets(doc_id):
            try:
                result = self._call(shard_id, fn)
            except DocumentNotFoundError:
                not_found += 1
                if shard_id in preferred:
                    lagging.append(shard_id)
                continue
            except _SHARD_DOWN as exc:
                errors.append(f"{shard_id}: {exc}")
                continue
            if self.config.read_repair != "off" and (
                lagging or self.config.read_repair == "verify"
            ):
                self._read_repair(doc_id, shard_id, lagging)
            return result
        if errors and (
            not_found == 0 or len(errors) >= self._guaranteed_copies()
        ):
            # with every guaranteed copy possibly behind the unreachable
            # shards, "not found" cannot be trusted
            raise ClusterError(
                f"no shard could serve {doc_id!r}: " + "; ".join(errors)
            )
        raise DocumentNotFoundError(f"no such document: {doc_id!r}")

    def _read_repair(
        self, doc_id: str, served_by: str, lagging: List[str]
    ) -> None:
        """Queue (and optionally inline-fix) replicas a read found behind.

        In ``"verify"`` mode the preferred live holders' content digests
        are also compared: any copy disagreeing with the majority digest
        joins the repair queue, so a *stale* (not just missing) replica
        is caught the first time the document is read.  Best-effort by
        design — a failure here degrades to the anti-entropy sweep, it
        never fails the read that triggered it.
        """
        divergent: List[str] = []
        if self.config.read_repair == "verify":
            digests: Dict[str, str] = {}
            states = self.detector.states()
            walk = self.ring.preference(doc_id, self.config.n_copies)
            for shard_id in walk:
                if shard_id in lagging or states.get(shard_id) == DEAD:
                    continue
                try:
                    payload = self._call(
                        shard_id, lambda c: c.document_digest(doc_id)
                    )
                except DocumentNotFoundError:
                    if shard_id not in lagging:
                        lagging = lagging + [shard_id]
                    continue
                except _SHARD_DOWN:
                    continue
                digests[shard_id] = str(payload.get("sha256", ""))
            if len(set(digests.values())) > 1:
                winner = self._majority_digest(digests, walk)
                divergent = [
                    s for s, d in digests.items() if d != winner
                ]
        for shard_id in lagging + divergent:
            self._enqueue_repair(doc_id, shard_id)
        if self.config.read_repair_inline and (lagging or divergent):
            try:
                text = self._winner_text(doc_id)
            except (DocumentNotFoundError, ClusterError) + _SHARD_DOWN:
                return
            for shard_id in lagging + divergent:
                try:
                    self._call(
                        shard_id, lambda c: c.put_document(doc_id, text)
                    )
                except (ClusterError,) + _SHARD_DOWN:
                    continue
                self._settle_repair(doc_id, shard_id)

    @staticmethod
    def _majority_digest(
        digests: Dict[str, str], walk: List[str]
    ) -> str:
        """The winning content digest: majority vote, ties broken by the
        earliest holder in the ring walk (deterministic on every node)."""
        counts = Counter(digests.values())
        best = max(counts.values())
        for shard_id in walk:
            digest = digests.get(shard_id)
            if digest is not None and counts[digest] == best:
                return digest
        return next(iter(digests.values()))  # unreachable safety net

    def _winner_text(self, doc_id: str) -> str:
        """Fetch *doc_id* from the winner replica, never a stale loser.

        Collects content digests from every live holder (walk order),
        picks the majority digest — earliest holder breaks ties — and
        reads the full text from that shard.  Falls back to plain
        first-copy-that-answers when no digests could be collected
        (all holders down mid-walk, or a test double without the verb).
        """
        digests: Dict[str, str] = {}
        walk = self._ordered_targets(doc_id)
        states = self.detector.states()
        for shard_id in walk:
            if states.get(shard_id) == DEAD:
                continue
            try:
                payload = self._call(
                    shard_id, lambda c: c.document_digest(doc_id)
                )
            except DocumentNotFoundError:
                continue
            except _SHARD_DOWN:
                continue
            except AttributeError:
                digests.clear()
                break
            digests[shard_id] = str(payload.get("sha256", ""))
        if not digests:
            return self.get_document_text(doc_id)
        winner = self._majority_digest(digests, walk)
        for shard_id in walk:
            if digests.get(shard_id) != winner:
                continue
            try:
                return self._call(
                    shard_id, lambda c: c.get_document_text(doc_id)
                )
            except (DocumentNotFoundError,) + _SHARD_DOWN:
                continue
        return self.get_document_text(doc_id)

    def get_document_text(self, doc_id: str) -> str:
        return self._read_from_copy(
            doc_id, lambda c: c.get_document_text(doc_id)
        )

    def get_subgraph(
        self,
        doc_id: str,
        element: str,
        direction: str = "both",
        max_depth: Optional[int] = None,
    ) -> List[str]:
        """Traverse from *element* on whichever copy of *doc_id* answers."""
        return self._read_from_copy(
            doc_id,
            lambda c: c.get_subgraph(
                doc_id, element, direction=direction, max_depth=max_depth
            ),
        )

    # ------------------------------------------------------------------
    # scatter-gather
    # ------------------------------------------------------------------
    def _scatter(
        self, fn: Callable[[ProvenanceClient], Any]
    ) -> Tuple[Dict[str, Any], List[str]]:
        """Run *fn* on every non-dead shard; returns (answers, failed).

        DEAD shards are counted as failed without being contacted —
        their keys are covered (or not) exactly like a shard that
        stopped answering mid-fan-out.
        """
        answers: Dict[str, Any] = {}
        failed: List[str] = []
        states = self.detector.states()
        for shard_id in self.ring.shards:
            if states.get(shard_id) == DEAD:
                failed.append(shard_id)
                continue
            try:
                answers[shard_id] = self._call(shard_id, fn)
            except _SHARD_DOWN:
                failed.append(shard_id)
        return answers, failed

    def _guaranteed_copies(self) -> int:
        """Copies every acked document is sure to hold *right now*.

        With an empty repair queue every document holds ``n_copies``
        copies: writes walk the ring until that many acks land (queuing
        repairs for any shortfall) and :meth:`run_repairs` restores the
        invariant afterwards.  While repairs are pending, a document may
        hold only the ``write_quorum`` copies its ack required — so only
        quorum copies can be assumed when deciding whether silent shards
        could hide data.
        """
        cfg = self.config
        return cfg.n_copies if self.replication_lag == 0 else cfg.write_quorum

    def _check_coverage(self, failed: List[str]) -> None:
        """Fail loudly when the silent shards could hide whole documents.

        As long as *fewer* shards are silent than the copies every acked
        document is guaranteed to hold (see :meth:`_guaranteed_copies`),
        at least one copy of everything answered.  At that threshold a
        document may have lived entirely on the silent shards — a merged
        answer could silently miss rows, which is worse than an error.
        """
        guaranteed = self._guaranteed_copies()
        if len(failed) >= guaranteed:
            raise PartialResultError(
                f"{len(failed)} of {len(self.ring)} shards unavailable "
                f"({sorted(failed)}); with only {guaranteed} copies "
                f"guaranteed per document the surviving shards may not "
                f"cover every document",
                failed_shards=sorted(failed),
            )

    def query(
        self,
        doc_id: Optional[str],
        query: Union[str, ProvqlQuery],
        force_scan: bool = False,
    ) -> QueryResult:
        """Run PROVQL: routed when document-scoped, scattered when global.

        A document-scoped query goes to one copy-holder (edges never
        cross documents, so its answer is already complete).  A
        service-wide query (``doc_id=None``) is rewritten by
        :func:`~repro.query.merge.shard_query`, fanned out to every
        non-dead shard, coverage-checked and merged — the result is
        byte-identical to a single node holding all documents.
        """
        parsed = parse(query) if isinstance(query, str) else query
        if doc_id is not None:
            payload = self._read_from_copy(
                doc_id, lambda c: c.query(doc_id, parsed.render())
            )
            return QueryResult(
                rows=payload["rows"], plan=payload["plan"],
                stats=payload["stats"],
            )
        rewritten, spec = shard_query(parsed)
        text = rewritten.render()
        answers, failed = self._scatter(lambda c: c.query(None, text))
        self._check_coverage(failed)
        partials = [
            QueryResult(rows=p["rows"], plan=p["plan"], stats=p["stats"])
            for _, p in sorted(answers.items())
        ]
        extra: Dict[str, Any] = {}
        if failed:
            extra["failed_shards"] = sorted(failed)
        return merge_results(spec, partials, extra_stats=extra)

    def list_documents(self) -> List[str]:
        """Sorted union of every shard's documents (coverage-checked)."""
        answers, failed = self._scatter(lambda c: c.list_documents())
        self._check_coverage(failed)
        return sorted({doc for docs in answers.values() for doc in docs})

    def find_elements(
        self,
        label: Optional[str] = None,
        prov_type: Optional[str] = None,
        doc_id: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Scattered element search, de-duplicated across replicas."""
        if doc_id is not None:
            return self._read_from_copy(
                doc_id,
                lambda c: c.find_elements(
                    label=label, prov_type=prov_type, doc_id=doc_id
                ),
            )
        answers, failed = self._scatter(
            lambda c: c.find_elements(label=label, prov_type=prov_type)
        )
        self._check_coverage(failed)
        unique: Dict[Tuple[Tuple[str, Any], ...], Dict[str, Any]] = {}
        for hits in answers.values():
            for hit in hits:
                unique.setdefault(tuple(sorted(hit.items())), hit)
        return sorted(
            unique.values(),
            key=lambda h: (str(h.get("doc_id") or ""), str(h.get("id") or "")),
        )

    def stats(self, doc_id: Optional[str] = None) -> Dict[str, int]:
        """Document-scoped stats route; cluster stats aggregate.

        Cluster-wide ``nodes``/``edges`` are *physical* totals (each
        replica counts), ``documents`` is the logical union.
        """
        if doc_id is not None:
            return self._read_from_copy(doc_id, lambda c: c.stats(doc_id))
        answers, failed = self._scatter(lambda c: c.stats(None))
        self._check_coverage(failed)
        return {
            "documents": len(self.list_documents()),
            "nodes": sum(s.get("nodes", 0) for s in answers.values()),
            "edges": sum(s.get("edges", 0) for s in answers.values()),
            "shards": len(self.ring),
        }

    def __len__(self) -> int:
        """Best-effort logical document count (never raises).

        ``GET /health`` calls this; health must keep answering while the
        cluster is degraded, so silent shards reduce the count instead of
        erroring.
        """
        answers, _ = self._scatter(lambda c: c.list_documents())
        return len({doc for docs in answers.values() for doc in docs})

    # ------------------------------------------------------------------
    # repair & rebalancing
    # ------------------------------------------------------------------
    def _enqueue_repair(self, doc_id: str, shard_id: str) -> None:
        """Durably queue one owed copy (journal first, then memory).

        The journal append happens *before* the pair becomes visible in
        memory — and, on the write path, before the triggering write is
        acked — so a router SIGKILL can strand at most repairs that were
        never promised.  The mirror set makes the dedup check O(1); the
        list keeps drain order fair (first discovered, first repaired).
        """
        pair = (doc_id, shard_id)
        with self._lock:
            if pair in self._repair_set:
                return
            if self.repair_log is not None:
                self.repair_log.record_enqueue(doc_id, shard_id)
            self._repairs.append(pair)
            self._repair_set.add(pair)

    def _settle_repair(self, doc_id: str, shard_id: str) -> bool:
        """Mark one pending pair done (journaled); False if already gone."""
        pair = (doc_id, shard_id)
        with self._lock:
            if pair not in self._repair_set:
                return False
            if self.repair_log is not None:
                self.repair_log.record_done(doc_id, shard_id)
            self._repairs.remove(pair)
            self._repair_set.discard(pair)
            return True

    def _drop_repairs(self, doc_id: str) -> None:
        with self._lock:
            survivors = [r for r in self._repairs if r[0] != doc_id]
            if len(survivors) == len(self._repairs):
                return
            if self.repair_log is not None:
                self.repair_log.record_drop_doc(doc_id)
            self._repairs = survivors
            self._repair_set = set(survivors)

    @property
    def replication_lag(self) -> int:
        """Documents currently short of a preferred copy."""
        with self._lock:
            return len(self._repairs)

    def pending_repairs(self) -> List[Tuple[str, str]]:
        with self._lock:
            return list(self._repairs)

    def run_repairs(self) -> int:
        """Replay the repair queue; returns the number of copies restored.

        Each pending ``(doc, shard)`` is re-read from the *winner*
        replica (majority content digest among live holders — never a
        stale copy) and written to the target, then settled in the
        journal.  Targets that are still DEAD stay queued; so does
        anything that fails mid-repair.  Re-running a settled pair is a
        no-op: the put is idempotent on the shard and the settle checks
        membership first, so repair application is safe to repeat across
        membership flaps.
        """
        repaired = 0
        states = self.detector.states()
        for doc_id, shard_id in self.pending_repairs():
            if shard_id not in self._shards or states.get(shard_id) == DEAD:
                continue
            try:
                text = self._winner_text(doc_id)
                self._call(
                    shard_id, lambda c: c.put_document(doc_id, text)
                )
            except DocumentNotFoundError:
                # every copy vanished (deleted concurrently): nothing to
                # repair any more
                pass
            except (ClusterError, TransportError, CircuitOpenError):
                continue
            if self._settle_repair(doc_id, shard_id):
                repaired += 1
        return repaired

    def on_membership_change(self, states: Dict[str, str]) -> None:
        """Heartbeat hook: a shard changing state replays the repairs."""
        if any(state != DEAD for state in states.values()):
            self.run_repairs()

    def add_shard(self, info: ShardInfo, rebalance: bool = True) -> Dict[str, int]:
        """Grow the ring by one shard; moves ~K/(N+1) documents.

        The failure detector and clients learn the shard *before* it
        enters the ring: a request thread that walks the ring into the
        newcomer must find its counters and client already in place.
        """
        with self._lock:
            if info.shard_id in self._shards:
                raise ClusterError(f"duplicate shard id: {info.shard_id!r}")
            self.detector.add_shard(info.shard_id)
            self._register(info)
        return self.rebalance() if rebalance else {"copied": 0, "dropped": 0}

    def remove_shard(self, shard_id: str, rebalance: bool = True) -> Dict[str, int]:
        """Shrink the ring; the departed shard's keys move to successors.

        Teardown mirrors :meth:`add_shard` in reverse — ring first, then
        detector and clients — so a request holding an older ring walk
        degrades into :meth:`_call`'s fail-over path instead of a crash.
        """
        with self._lock:
            if shard_id not in self._shards:
                raise ClusterError(f"unknown shard: {shard_id!r}")
            if len(self._shards) <= self.config.n_copies:
                raise ClusterError(
                    f"cannot drop below {self.config.n_copies} shards "
                    f"(replication={self.config.replication})"
                )
            self.ring.remove(shard_id)
            self.detector.remove_shard(shard_id)
            del self._shards[shard_id]
            del self._clients[shard_id]
            del self._probes[shard_id]
            survivors = [r for r in self._repairs if r[1] != shard_id]
            if len(survivors) != len(self._repairs):
                if self.repair_log is not None:
                    self.repair_log.record_drop_shard(shard_id)
                self._repairs = survivors
                self._repair_set = set(survivors)
        return self.rebalance() if rebalance else {"copied": 0, "dropped": 0}

    def rebalance(self) -> Dict[str, int]:
        """Re-establish ring placement after membership changed.

        For every document: copy it to preferred shards missing it, then
        drop copies from shards outside the preference list — but only
        once every preferred shard is confirmed to hold the document.  If
        any preferred copy could not be placed this pass (shard
        unreachable, repair queued), the extra copies stay: dropping them
        could leave an acked document below ``write_quorum`` copies, where
        one more shard loss loses it.  :meth:`run_repairs` converges
        placement and the next rebalance finishes the drop.  Movement is
        bounded by the ring's consistency property — only documents whose
        preference list actually changed move.
        """
        copied = 0
        dropped = 0
        answers, failed = self._scatter(lambda c: c.list_documents())
        self._check_coverage(failed)
        holders: Dict[str, set] = {}
        for shard_id, docs in answers.items():
            for doc in docs:
                holders.setdefault(doc, set()).add(shard_id)
        for doc_id, holding in sorted(holders.items()):
            preferred = self.ring.preference(doc_id, self.config.n_copies)
            text: Optional[str] = None
            fully_placed = True
            for shard_id in preferred:
                if shard_id in holding:
                    continue
                try:
                    if text is None:
                        text = self.get_document_text(doc_id)
                    self._call(
                        shard_id, lambda c: c.put_document(doc_id, text)
                    )
                    copied += 1
                except (ClusterError,) + _SHARD_DOWN:
                    self._enqueue_repair(doc_id, shard_id)
                    fully_placed = False
            if not fully_placed:
                continue  # keep extra copies until repairs converge
            for shard_id in sorted(holding - set(preferred)):
                if shard_id not in answers:
                    continue  # unreachable: its stale copy waits for heal
                try:
                    self._call(
                        shard_id, lambda c: c.delete_document(doc_id)
                    )
                    dropped += 1
                except (DocumentNotFoundError, TransportError,
                        CircuitOpenError):
                    continue
        return {"copied": copied, "dropped": dropped}

    # ------------------------------------------------------------------
    # self-healing verbs
    # ------------------------------------------------------------------
    def sweep(self) -> Dict[str, Any]:
        """Run one anti-entropy sweep now; returns the sweep report.

        Uses the attached :class:`~repro.yprov.cluster.antientropy.
        AntiEntropy` sweeper when one is wired (CLI/LocalCluster do
        that), creating a thread-less one on first use otherwise — the
        one-shot ``POST /api/v0/cluster/sweep`` verb works on any
        router.
        """
        from repro.yprov.cluster.antientropy import AntiEntropy

        sweeper = self.anti_entropy
        if sweeper is None:
            sweeper = AntiEntropy(
                self, buckets=self.config.digest_buckets
            )
        return sweeper.sweep()

    def scrub(self) -> Dict[str, Any]:
        """Fan a bit-rot scrub out to every reachable shard.

        Every copy a shard quarantined or found missing is re-queued as
        a repair against that same shard, then the queue is drained —
        so a corrupt copy is replaced by a verified one from a healthy
        replica in the same call.
        """
        answers, failed = self._scatter(lambda c: c.scrub())
        report: Dict[str, Any] = {
            "shards": {},
            "failed_shards": sorted(failed),
            "repairs_enqueued": 0,
        }
        for shard_id, shard_report in sorted(answers.items()):
            report["shards"][shard_id] = shard_report
            losses = list(shard_report.get("quarantined", ())) + list(
                shard_report.get("missing", ())
            )
            for doc_id in losses:
                self._enqueue_repair(doc_id, shard_id)
                report["repairs_enqueued"] += 1
        report["repaired"] = self.run_repairs()
        return report

    def close(self) -> None:
        """Release the repair journal (and stop an attached sweeper)."""
        sweeper = self.anti_entropy
        if sweeper is not None and hasattr(sweeper, "stop"):
            sweeper.stop()
        if self.repair_log is not None:
            self.repair_log.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def shard_infos(self) -> List[ShardInfo]:
        with self._lock:
            return [self._shards[s] for s in sorted(self._shards)]

    def cluster_health(self) -> Dict[str, Any]:
        """Router-side health payload merged into ``GET /health``."""
        payload: Dict[str, Any] = {
            "replication_lag": self.replication_lag,
            "replication": self.config.replication,
            "shards": self.detector.states(),
        }
        log = self.repair_log
        if log is not None:
            payload["repair_journal"] = {
                "path": str(log.path),
                "pending": len(log),
                "bad_records": log.bad_records,
            }
        sweeper = self.anti_entropy
        if sweeper is not None:
            payload["anti_entropy"] = sweeper.status()
        return payload
