"""Failure detection for the shard cluster: alive → suspect → dead.

The router must not treat one lost packet as a dead shard (that would
thrash replica promotion) nor keep routing writes at a crashed one (that
would burn the write quorum's latency budget on guaranteed timeouts).
The classic answer is a consecutive-failure state machine per shard:

* **ALIVE** — last probe/request succeeded; failures reset to zero.
* **SUSPECT** — ``suspect_after`` consecutive failures.  Reads skip
  suspects when an alive replica exists; writes still try them (they may
  just be slow, and a write that lands keeps replication full).
* **DEAD** — ``dead_after`` consecutive failures.  The shard is skipped
  entirely and its keys are served by replicas until it heals.  One
  success from any path returns it straight to ALIVE.

Evidence arrives on two paths and both feed the same counters:

* **Active probing** — :class:`Heartbeater` runs :meth:`FailureDetector.
  probe_all` on an interval from a daemon thread; each probe is an HTTP
  ``GET /health`` with a short hard deadline and *zero retries*.  Probing
  the HTTP layer (not just TCP connect) is what distinguishes a half-open
  hung socket — the chaos proxy's ``accept_hang`` fault — from a healthy
  shard: the connection succeeds, the response never comes, the deadline
  fires, and the failure is recorded.
* **Passive observation** — the router reports the outcome of every real
  request via :meth:`record_success` / :meth:`record_failure`, so a shard
  that dies between heartbeats is demoted by the very traffic it fails.

The probe function and detector are injectable everywhere they are used,
so tests drive state transitions without sockets or sleeping.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import ClusterError

__all__ = [
    "ALIVE",
    "DEAD",
    "SUSPECT",
    "FailureDetector",
    "Heartbeater",
]

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"

#: Probe callback: ``probe(shard_id) -> bool`` (True = healthy).  It must
#: not raise — transport errors are a False, not an exception.


class FailureDetector:
    """Per-shard consecutive-failure counters with threshold states.

    ``probe`` is optional; without it :meth:`probe_all` is an error and
    the detector runs purely on passive evidence (unit tests, or a router
    embedded where something else supplies health signals).
    """

    def __init__(
        self,
        shard_ids: Iterable[str],
        suspect_after: int = 2,
        dead_after: int = 4,
        probe: Optional[Callable[[str], bool]] = None,
    ) -> None:
        if suspect_after < 1:
            raise ClusterError(f"suspect_after must be >= 1, got {suspect_after}")
        if dead_after < suspect_after:
            raise ClusterError(
                f"dead_after ({dead_after}) must be >= suspect_after "
                f"({suspect_after})"
            )
        self.suspect_after = int(suspect_after)
        self.dead_after = int(dead_after)
        self._probe = probe
        self._lock = threading.Lock()
        self._failures: Dict[str, int] = {shard: 0 for shard in shard_ids}
        if not self._failures:
            raise ClusterError("failure detector needs at least one shard")

    # -- evidence --------------------------------------------------------
    def record_success(self, shard_id: str) -> None:
        """One successful probe or request: straight back to ALIVE."""
        with self._lock:
            self._check_known(shard_id)
            self._failures[shard_id] = 0

    def record_failure(self, shard_id: str) -> str:
        """One failed probe or request; returns the resulting state."""
        with self._lock:
            self._check_known(shard_id)
            self._failures[shard_id] += 1
            return self._state_locked(shard_id)

    def probe_all(self) -> Dict[str, str]:
        """Probe every shard once; returns the post-probe state map."""
        if self._probe is None:
            raise ClusterError("failure detector has no probe configured")
        for shard_id in self.shard_ids():
            if self._probe(shard_id):
                self.record_success(shard_id)
            else:
                self.record_failure(shard_id)
        return self.states()

    # -- state -----------------------------------------------------------
    def state(self, shard_id: str) -> str:
        with self._lock:
            self._check_known(shard_id)
            return self._state_locked(shard_id)

    def states(self) -> Dict[str, str]:
        with self._lock:
            return {s: self._state_locked(s) for s in self._failures}

    def shard_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._failures)

    def alive(self) -> List[str]:
        """Shards not DEAD (SUSPECT still counts for writes), sorted."""
        return [s for s, st in sorted(self.states().items()) if st != DEAD]

    def healthy(self) -> List[str]:
        """Strictly ALIVE shards (preferred read targets), sorted."""
        return [s for s, st in sorted(self.states().items()) if st == ALIVE]

    def add_shard(self, shard_id: str) -> None:
        with self._lock:
            if shard_id in self._failures:
                raise ClusterError(f"shard already tracked: {shard_id!r}")
            self._failures[shard_id] = 0

    def remove_shard(self, shard_id: str) -> None:
        with self._lock:
            self._check_known(shard_id)
            del self._failures[shard_id]

    def _state_locked(self, shard_id: str) -> str:
        failures = self._failures[shard_id]
        if failures >= self.dead_after:
            return DEAD
        if failures >= self.suspect_after:
            return SUSPECT
        return ALIVE

    def _check_known(self, shard_id: str) -> None:
        if shard_id not in self._failures:
            raise ClusterError(f"unknown shard: {shard_id!r}")


class Heartbeater:
    """Background thread driving :meth:`FailureDetector.probe_all`.

    A plain daemon thread on an ``Event``-based timer: ``stop()`` wakes
    the wait immediately, so shutdown never blocks for ``interval_s``.
    ``on_change`` (optional) is called with the new state map whenever a
    probe round changes any shard's state — the router hooks replication
    repair onto it.
    """

    def __init__(
        self,
        detector: FailureDetector,
        interval_s: float = 1.0,
        on_change: Optional[Callable[[Dict[str, str]], None]] = None,
    ) -> None:
        if interval_s <= 0:
            raise ClusterError(f"interval_s must be > 0, got {interval_s}")
        self.detector = detector
        self.interval_s = float(interval_s)
        self.on_change = on_change
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "Heartbeater":
        """Launch the probe thread; returns self for chaining."""
        if self._thread is not None:
            raise ClusterError("heartbeater already started")
        self._thread = threading.Thread(
            target=self._run, name="yprov-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def tick(self) -> Dict[str, str]:
        """One synchronous probe round (tests drive this directly).

        The before/after comparison brackets the probe itself, so state
        changes that arrived *passively* since the last round (the router
        demoting a shard on request failures) still trigger ``on_change``
        when the probe confirms the new state.
        """
        before = self.detector.states()
        states = self.detector.probe_all()
        if states != before and self.on_change is not None:
            self.on_change(states)
        return states

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.tick()
            except ClusterError:
                # a probe round must never kill the heartbeat thread;
                # the next tick retries with fresh state
                continue
