"""Replicated shard cluster for the provenance service.

One :class:`~repro.yprov.service.ProvenanceService` behind one HTTP
server is a single point of failure and caps out far below campaign
scale.  This package grows it into a cluster without changing the API
surface clients see:

* :mod:`repro.yprov.cluster.ring` — consistent-hash document placement
  with virtual nodes; adding or removing a shard moves ~K/N keys, not K;
* :mod:`repro.yprov.cluster.membership` — heartbeat failure detection
  over the shards' ``/health`` endpoints (alive → suspect → dead state
  machine, passive demotion on request failures, replica promotion);
* :mod:`repro.yprov.cluster.router` — the coordinator: quorum-replicated
  writes, replica-failover reads, scatter-gather PROVQL
  (:mod:`repro.query.merge`), rebalancing, and repair of
  under-replicated documents;
* :mod:`repro.yprov.cluster.local` — spin up router + N shards in one
  process (tests, the CLI quickstart) and the on-disk ``cluster.json``
  manifest the PL113 lint rule audits;
* :mod:`repro.yprov.cluster.repairlog` — the durable repair journal: a
  crc-checked WAL of the router's pending re-replications, replayed on
  construction so acked-but-under-replicated documents survive a router
  SIGKILL;
* :mod:`repro.yprov.cluster.antientropy` — self-healing: the bucketed
  digest-comparison sweeper that converges replicas which drifted apart
  behind the router's back, and the shard-side bit-rot scrubber.

The router duck-types the :class:`ProvenanceService` verb surface, so
:mod:`repro.yprov.rest` serves it unchanged — a client cannot tell a
router from a single node except by ``GET /health``'s ``role`` field.
"""

from repro.yprov.cluster.antientropy import AntiEntropy, Scrubber, sweep_once
from repro.yprov.cluster.local import LocalCluster, write_manifest
from repro.yprov.cluster.membership import (
    ALIVE,
    DEAD,
    SUSPECT,
    FailureDetector,
    Heartbeater,
)
from repro.yprov.cluster.repairlog import RepairLog
from repro.yprov.cluster.ring import HashRing
from repro.yprov.cluster.router import ClusterRouter, RouterConfig, ShardInfo

__all__ = [
    "ALIVE",
    "AntiEntropy",
    "ClusterRouter",
    "DEAD",
    "FailureDetector",
    "HashRing",
    "Heartbeater",
    "LocalCluster",
    "RepairLog",
    "RouterConfig",
    "SUSPECT",
    "Scrubber",
    "ShardInfo",
    "sweep_once",
    "write_manifest",
]
