"""Consistent-hash ring: document placement with bounded key movement.

Documents are placed on shards by hashing both onto one circle: each
shard contributes ``vnodes`` points (virtual nodes smooth the load across
heterogeneous hash gaps), and a document belongs to the first shard point
clockwise from its own hash.  The properties the cluster relies on:

* **Determinism** — placement is a pure function of (shard ids, document
  id); every router instance computes the same owner with no coordination
  and no persisted placement table.
* **Bounded movement** — adding a shard to an N-shard ring reassigns only
  the keys that now fall in the new shard's arcs: ~K/(N+1) of K keys in
  expectation, not K.  Removing a shard moves *exactly* the keys it
  owned (everyone else's first point is untouched).  The property test in
  ``tests/property/test_ring_props.py`` pins both.
* **Replica placement** — a document's preference list is the ring walk
  from its hash: the first ``n`` *distinct* shards encountered.  Replicas
  are therefore spread deterministically, and when a shard dies the next
  shard on the walk is the natural promotion target.

Hashing is ``sha256`` (stable across processes and Python versions —
``hash()`` is salted and useless here).  Standard library only.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

from repro.errors import ClusterError

#: Virtual nodes per shard.  128 keeps the max/min arc ratio low enough
#: that a 3-shard ring stays within ~±20% of even load.
DEFAULT_VNODES = 128


def _point(data: str) -> int:
    """A stable 64-bit position on the ring."""
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring over named shards with virtual nodes."""

    def __init__(self, shards: Iterable[str] = (), vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ClusterError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._points: List[Tuple[int, str]] = []  # sorted (position, shard)
        self._keys: List[int] = []  # positions only, for bisect
        self._shards: Dict[str, bool] = {}
        for shard in shards:
            self.add(shard)

    # -- membership ------------------------------------------------------
    def add(self, shard_id: str) -> None:
        """Add a shard's virtual nodes (error if already present)."""
        if not shard_id:
            raise ClusterError("shard id must be non-empty")
        if shard_id in self._shards:
            raise ClusterError(f"shard already on the ring: {shard_id!r}")
        self._shards[shard_id] = True
        for i in range(self.vnodes):
            pos = _point(f"{shard_id}#{i}")
            index = bisect.bisect_left(self._points, (pos, shard_id))
            self._points.insert(index, (pos, shard_id))
            self._keys.insert(index, pos)

    def remove(self, shard_id: str) -> None:
        """Remove a shard's virtual nodes (error if absent)."""
        if shard_id not in self._shards:
            raise ClusterError(f"shard not on the ring: {shard_id!r}")
        del self._shards[shard_id]
        self._points = [p for p in self._points if p[1] != shard_id]
        self._keys = [pos for pos, _ in self._points]

    @property
    def shards(self) -> List[str]:
        """Shard ids on the ring, sorted."""
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    # -- placement -------------------------------------------------------
    def primary(self, key: str) -> str:
        """The shard owning *key* (first ring point clockwise)."""
        return self.preference(key, 1)[0]

    def preference(self, key: str, n: int) -> List[str]:
        """The first *n* distinct shards on the ring walk from *key*.

        This is the key's replica placement: index 0 is the primary, the
        rest are replicas in promotion order.  Asking for more shards
        than the ring holds is an error — the caller must choose its
        replication factor to fit the cluster.
        """
        if not self._shards:
            raise ClusterError("ring has no shards")
        if n < 1:
            raise ClusterError(f"preference list size must be >= 1, got {n}")
        if n > len(self._shards):
            raise ClusterError(
                f"cannot place {n} replicas on {len(self._shards)} shard(s)"
            )
        start = bisect.bisect_right(self._keys, _point(key))
        chosen: List[str] = []
        seen = set()
        total = len(self._points)
        for step in range(total):
            _, shard = self._points[(start + step) % total]
            if shard not in seen:
                seen.add(shard)
                chosen.append(shard)
                if len(chosen) == n:
                    break
        return chosen

    def walk(self, key: str) -> List[str]:
        """Every shard in ring order from *key* (full promotion order)."""
        return self.preference(key, len(self._shards))

    def placement(self, keys: Iterable[str]) -> Dict[str, str]:
        """``{key: primary shard}`` for many keys (tests, rebalancing)."""
        return {key: self.primary(key) for key in keys}
