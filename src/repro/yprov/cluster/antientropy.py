"""Anti-entropy: background convergence of replicas that drifted apart.

Quorum writes and the repair queue handle the failures the router
*witnesses*.  Everything else — a replica wiped by an operator, bytes
rotted on disk, a repair the journal lost to corruption, a shard
restored from an old backup — leaves replicas silently disagreeing with
no event to hook.  Anti-entropy is the classic answer (Dynamo-style):
periodically *compare* what the replicas actually hold and repair the
differences, so convergence is a property the cluster re-establishes
continuously rather than one it merely never intends to violate.

The protocol is a two-phase bucketed digest comparison, so a sweep over
an unchanged cluster costs O(buckets), not O(documents):

1. **Roll-up phase** — every reachable shard answers ``GET /api/v0/
   digest?buckets=N`` with one hash per non-empty bucket (documents are
   assigned to buckets by ``crc32(doc_id) % N``, identically on every
   node).  Buckets whose per-shard roll-ups match the memo of the last
   clean sweep are skipped outright.
2. **Expansion phase** — changed buckets are expanded to full
   ``doc_id → sha256`` maps and compared per document against the ring's
   preference placement: a live preferred shard *missing* a document, or
   any holder whose hash disagrees with the majority (ties broken by the
   earliest holder in the ring walk), is queued on the router's durable
   repair journal.  Draining the queue copies from the winner replica,
   never a stale loser.

:class:`AntiEntropy` wraps the sweep in a daemon thread (same shape as
the membership :class:`~repro.yprov.cluster.membership.Heartbeater`) and
feeds ``last_sweep`` / ``divergences_found`` into the router's
``/health`` payload.  :class:`Scrubber` is the shard-side counterpart:
a slow loop re-running :meth:`~repro.yprov.service.ProvenanceService.
scrub` so bit rot is *found* locally; the router's sweep then restores
the quarantined copies from healthy replicas.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ClusterError, ReproError
from repro.yprov.cluster.membership import DEAD

__all__ = ["AntiEntropy", "Scrubber", "SweepReport", "sweep_once"]

#: Default anti-entropy bucket count (must match on every node).
DEFAULT_BUCKETS = 64


@dataclass
class SweepReport:
    """Outcome of one anti-entropy sweep, for /health and CI artifacts."""

    buckets: int
    changed_buckets: int = 0
    docs_checked: int = 0
    missing: int = 0
    divergent: int = 0
    repairs_enqueued: int = 0
    failed_shards: List[str] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def clean(self) -> bool:
        """True when the sweep found nothing to repair."""
        return self.missing == 0 and self.divergent == 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (health payloads, sweep-stats artifacts)."""
        return {
            "buckets": self.buckets,
            "changed_buckets": self.changed_buckets,
            "docs_checked": self.docs_checked,
            "missing": self.missing,
            "divergent": self.divergent,
            "repairs_enqueued": self.repairs_enqueued,
            "failed_shards": list(self.failed_shards),
            "duration_s": self.duration_s,
            "clean": self.clean,
        }


def sweep_once(
    router: Any,
    buckets: int = DEFAULT_BUCKETS,
    memo: Optional[Dict[int, Dict[str, str]]] = None,
) -> SweepReport:
    """One anti-entropy pass over *router*'s shards; enqueues repairs.

    *memo* (bucket → per-shard roll-up of the last clean examination) is
    mutated in place: buckets whose roll-ups are unchanged since they
    were last seen clean are skipped, buckets with problems stay
    un-memoized so they are re-expanded every sweep until they converge.
    Unreachable shards are reported, never guessed about — their copies
    are examined on the next sweep that can see them.
    """
    if buckets < 1:
        raise ClusterError(f"buckets must be >= 1, got {buckets}")
    start = time.monotonic()
    report = SweepReport(buckets=buckets)
    # phase 1: per-shard bucket roll-ups
    rollups: Dict[str, Dict[str, str]] = {}
    states = router.detector.states()
    for shard_id in list(router.ring.shards):
        if states.get(shard_id) == DEAD:
            report.failed_shards.append(shard_id)
            continue
        try:
            payload = router._call(
                shard_id, lambda c: c.digest(buckets=buckets)
            )
        except ReproError:
            report.failed_shards.append(shard_id)
            continue
        if payload.get("buckets") != buckets:
            # a node configured with a different bucket count produces
            # incomparable roll-ups; treat it as unreachable this sweep
            report.failed_shards.append(shard_id)
            continue
        rollups[shard_id] = dict(payload.get("digests", {}))
    report.failed_shards.sort()
    if not rollups:
        report.duration_s = time.monotonic() - start
        return report

    # which buckets need expansion?
    touched = sorted(
        {int(b) for per_shard in rollups.values() for b in per_shard}
    )
    to_expand: List[int] = []
    current: Dict[int, Dict[str, str]] = {}
    for bucket in touched:
        mapping = {
            shard_id: per_shard[str(bucket)]
            for shard_id, per_shard in rollups.items()
            if str(bucket) in per_shard
        }
        current[bucket] = mapping
        if memo is not None and memo.get(bucket) == mapping:
            continue  # unchanged since last clean look
        to_expand.append(bucket)
    report.changed_buckets = len(to_expand)

    # phase 2: expand changed buckets to doc → hash and compare
    n_copies = router.config.n_copies
    for bucket in to_expand:
        holders: Dict[str, Dict[str, str]] = {}
        expansion_failed = False
        for shard_id in current[bucket]:
            try:
                payload = router._call(
                    shard_id,
                    lambda c: c.digest(buckets=buckets, bucket=bucket),
                )
            except ReproError:
                if shard_id not in report.failed_shards:
                    report.failed_shards.append(shard_id)
                expansion_failed = True
                continue
            for doc_id, digest in payload.get("documents", {}).items():
                holders.setdefault(doc_id, {})[shard_id] = digest
        bucket_clean = True
        for doc_id, copies in sorted(holders.items()):
            report.docs_checked += 1
            walk = router.ring.walk(doc_id)
            preferred = walk[:n_copies]
            for shard_id in preferred:
                if (
                    shard_id in copies
                    or states.get(shard_id) == DEAD
                    or shard_id in report.failed_shards
                ):
                    continue
                report.missing += 1
                report.repairs_enqueued += 1
                bucket_clean = False
                router._enqueue_repair(doc_id, shard_id)
            if len(set(copies.values())) > 1:
                winner = router._majority_digest(copies, walk)
                report.divergent += 1
                for shard_id, digest in sorted(copies.items()):
                    if digest == winner:
                        continue
                    report.repairs_enqueued += 1
                    bucket_clean = False
                    router._enqueue_repair(doc_id, shard_id)
        if (
            memo is not None
            and bucket_clean
            and not expansion_failed
            and not report.failed_shards
        ):
            memo[bucket] = current[bucket]
        elif memo is not None:
            memo.pop(bucket, None)
    # buckets that disappeared entirely (last doc deleted) must not pin
    # stale memo entries forever
    if memo is not None:
        for bucket in [b for b in memo if b not in current]:
            del memo[bucket]
    report.failed_shards.sort()
    report.duration_s = time.monotonic() - start
    return report


class AntiEntropy:
    """Background sweeper: periodic digest comparison + repair drain.

    Construction registers the sweeper on the router (``router.
    anti_entropy``), which is how ``/health`` learns ``last_sweep`` and
    ``divergences_found`` and how ``POST /cluster/sweep`` finds the memo
    to reuse.  ``start()`` launches the daemon thread; tests (and the
    one-shot REST verb) call :meth:`sweep` directly instead.
    """

    def __init__(
        self,
        router: Any,
        buckets: int = DEFAULT_BUCKETS,
        interval_s: float = 30.0,
    ) -> None:
        if buckets < 1:
            raise ClusterError(f"buckets must be >= 1, got {buckets}")
        if interval_s <= 0:
            raise ClusterError(f"interval_s must be > 0, got {interval_s}")
        self.router = router
        self.buckets = int(buckets)
        self.interval_s = float(interval_s)
        self._memo: Dict[int, Dict[str, str]] = {}
        self._lock = threading.Lock()
        self._sweep_gate = threading.Lock()
        self._sweeps = 0
        self._divergences_total = 0
        self._last_sweep: Optional[Dict[str, Any]] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        router.anti_entropy = self

    def sweep(self) -> Dict[str, Any]:
        """One sweep + repair drain; returns the JSON-ready report.

        Serialized: concurrent callers (daemon thread vs REST verb) run
        one after the other rather than double-enqueueing repairs.
        """
        with self._sweep_gate:
            report = sweep_once(
                self.router, buckets=self.buckets, memo=self._memo
            )
            payload = report.to_dict()
            payload["repaired"] = self.router.run_repairs()
        with self._lock:
            self._sweeps += 1
            self._divergences_total += report.missing + report.divergent
            self._last_sweep = payload
        return payload

    def status(self) -> Dict[str, Any]:
        """Health-payload fragment: sweep counters and the last report."""
        with self._lock:
            return {
                "sweeps": self._sweeps,
                "divergences_found": self._divergences_total,
                "last_sweep": self._last_sweep,
            }

    def start(self) -> "AntiEntropy":
        """Launch the sweep thread; returns self for chaining."""
        if self._thread is not None:
            raise ClusterError("anti-entropy sweeper already started")
        self._thread = threading.Thread(
            target=self._run, name="yprov-antientropy", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sweep thread (immediate, never waits a full interval)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sweep()
            except ReproError:
                # a degraded cluster must not kill the sweeper; the next
                # interval retries with fresh membership
                continue


class Scrubber:
    """Slow background bit-rot pass over one shard's stored documents.

    Each tick calls the service's :meth:`~repro.yprov.service.
    ProvenanceService.scrub`, which re-hashes every stored copy against
    its checksum sidecar and quarantines (never serves) anything that
    disagrees.  The cluster's anti-entropy sweep then notices the
    quarantined copy is missing and restores a verified one from a
    healthy replica — local detection, global repair.
    """

    def __init__(self, service: Any, interval_s: float = 60.0) -> None:
        if interval_s <= 0:
            raise ClusterError(f"interval_s must be > 0, got {interval_s}")
        self.service = service
        self.interval_s = float(interval_s)
        self.last_report: Optional[Dict[str, Any]] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def tick(self) -> Dict[str, Any]:
        """One synchronous scrub pass (tests drive this directly)."""
        self.last_report = self.service.scrub()
        return self.last_report

    def start(self) -> "Scrubber":
        """Launch the scrub thread; returns self for chaining."""
        if self._thread is not None:
            raise ClusterError("scrubber already started")
        self._thread = threading.Thread(
            target=self._run, name="yprov-scrubber", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the scrub thread without waiting out the interval."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.tick()
            except ReproError:
                # scrubbing must never kill the thread; next tick retries
                continue
