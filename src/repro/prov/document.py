"""Provenance documents and bundles.

A :class:`ProvDocument` owns a namespace registry plus a flat set of records,
and may contain named :class:`ProvBundle` sub-documents (PROV bundles are
themselves entities whose content is a set of records — yProv uses them to
nest run-level provenance inside workflow-level documents).

The constructor helpers (:meth:`ProvDocument.entity`,
:meth:`ProvDocument.was_generated_by`, ...) mirror the PROV-DM relation
vocabulary and are the only API the rest of the library uses to build
provenance.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Union

from repro.errors import DuplicateRecordError, ProvError
from repro.prov.identifiers import Namespace, NamespaceRegistry, QualifiedName
from repro.prov.model import (
    ELEMENT_CLASSES,
    PROV,
    PROV_REL_ARGS,
    XSD_NS,
    ProvActivity,
    ProvAgent,
    ProvElement,
    ProvEntity,
    ProvRelation,
    relation_sort_key,
)

Identifier = Union[QualifiedName, str]


class ProvBundle:
    """A named set of PROV records sharing the parent document's namespaces."""

    def __init__(
        self,
        namespaces: Optional[NamespaceRegistry] = None,
        identifier: Optional[QualifiedName] = None,
    ) -> None:
        self.identifier = identifier
        self.namespaces = namespaces if namespaces is not None else NamespaceRegistry()
        self.namespaces.register(PROV)
        self.namespaces.register(XSD_NS)
        self._elements: Dict[str, Dict[QualifiedName, ProvElement]] = {
            "entity": {},
            "activity": {},
            "agent": {},
        }
        self._relations: List[ProvRelation] = []

    # ------------------------------------------------------------------
    # namespaces & identifier coercion
    # ------------------------------------------------------------------
    def add_namespace(self, prefix_or_ns: Union[str, Namespace], uri: str = "") -> Namespace:
        """Register a namespace, given either a Namespace or (prefix, uri)."""
        ns = prefix_or_ns if isinstance(prefix_or_ns, Namespace) else Namespace(prefix_or_ns, uri)
        return self.namespaces.register(ns)

    def set_default_namespace(self, uri: str) -> Namespace:
        return self.namespaces.set_default(uri)

    def qname(self, identifier: Identifier) -> QualifiedName:
        """Coerce ``"pfx:name"`` strings to qualified names."""
        if isinstance(identifier, QualifiedName):
            return identifier
        return self.namespaces.qname(identifier)

    # ------------------------------------------------------------------
    # element constructors
    # ------------------------------------------------------------------
    def _add_element(self, kind: str, element: ProvElement) -> ProvElement:
        table = self._elements[kind]
        existing = table.get(element.identifier)
        if existing is not None:
            # PROV allows repeated assertions about the same element; merge
            # attributes instead of erroring, but reject cross-kind clashes.
            for key, value in element.attributes.items():
                if key not in existing.attributes:
                    existing.attributes[key] = value
                elif existing.attributes[key] != value:
                    existing.add_attribute(key, value)
            if isinstance(element, ProvActivity) and isinstance(existing, ProvActivity):
                existing.start_time = existing.start_time or element.start_time
                existing.end_time = existing.end_time or element.end_time
            return existing
        for other_kind, other_table in self._elements.items():
            if other_kind != kind and element.identifier in other_table:
                raise DuplicateRecordError(
                    f"{element.identifier} already declared as {other_kind}"
                )
        table[element.identifier] = element
        return element

    def entity(
        self, identifier: Identifier, attributes: Optional[Mapping[str, Any]] = None
    ) -> ProvEntity:
        """Declare (or extend) an entity."""
        ent = ProvEntity(self.qname(identifier), attributes)
        return self._add_element("entity", ent)  # type: ignore[return-value]

    def activity(
        self,
        identifier: Identifier,
        start_time: Optional[_dt.datetime] = None,
        end_time: Optional[_dt.datetime] = None,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> ProvActivity:
        """Declare (or extend) an activity with optional start/end times."""
        act = ProvActivity(self.qname(identifier), start_time, end_time, attributes)
        return self._add_element("activity", act)  # type: ignore[return-value]

    def agent(
        self, identifier: Identifier, attributes: Optional[Mapping[str, Any]] = None
    ) -> ProvAgent:
        """Declare (or extend) an agent."""
        ag = ProvAgent(self.qname(identifier), attributes)
        return self._add_element("agent", ag)  # type: ignore[return-value]

    def collection(
        self, identifier: Identifier, attributes: Optional[Mapping[str, Any]] = None
    ) -> ProvEntity:
        """Declare an entity typed as ``prov:Collection``."""
        attrs = dict(attributes or {})
        attrs.setdefault("prov:type", PROV("Collection"))
        return self.entity(identifier, attrs)

    # ------------------------------------------------------------------
    # relation constructors (PROV-DM vocabulary)
    # ------------------------------------------------------------------
    def _add_relation(
        self,
        kind: str,
        args: Mapping[str, Any],
        attributes: Optional[Mapping[str, Any]] = None,
        identifier: Optional[Identifier] = None,
    ) -> ProvRelation:
        coerced: Dict[str, Any] = {}
        for key, value in args.items():
            if value is None:
                continue
            if key in ("prov:time", "prov:startTime", "prov:endTime"):
                coerced[key] = value
            else:
                coerced[key] = self.qname(value)
        rel = ProvRelation(
            kind,
            coerced,
            identifier=self.qname(identifier) if identifier is not None else None,
            attributes=attributes,
        )
        self._relations.append(rel)
        return rel

    def was_generated_by(
        self,
        entity: Identifier,
        activity: Optional[Identifier] = None,
        time: Optional[_dt.datetime] = None,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> ProvRelation:
        """Assert a ``used`` relation (activity consumed entity)."""
        """Assert a ``wasGeneratedBy`` relation (entity produced by activity)."""
        return self._add_relation(
            "wasGeneratedBy",
            {"prov:entity": entity, "prov:activity": activity, "prov:time": time},
            attributes,
        )

    def used(
        self,
        activity: Identifier,
        entity: Optional[Identifier] = None,
        time: Optional[_dt.datetime] = None,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> ProvRelation:
        """Assert a ``wasInformedBy`` relation between activities."""
        return self._add_relation(
            "used",
            {"prov:activity": activity, "prov:entity": entity, "prov:time": time},
            attributes,
        )

    def was_informed_by(
        self, informed: Identifier, informant: Identifier,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> ProvRelation:
        """Assert a ``wasStartedBy`` relation (trigger entity / starter activity)."""
        return self._add_relation(
            "wasInformedBy",
            {"prov:informed": informed, "prov:informant": informant},
            attributes,
        )

    def was_started_by(
        self,
        activity: Identifier,
        trigger: Optional[Identifier] = None,
        starter: Optional[Identifier] = None,
        time: Optional[_dt.datetime] = None,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> ProvRelation:
        """Assert a ``wasEndedBy`` relation (trigger entity / ender activity)."""
        return self._add_relation(
            "wasStartedBy",
            {
                "prov:activity": activity,
                "prov:trigger": trigger,
                "prov:starter": starter,
                "prov:time": time,
            },
            attributes,
        )

    def was_ended_by(
        self,
        activity: Identifier,
        trigger: Optional[Identifier] = None,
        ender: Optional[Identifier] = None,
        time: Optional[_dt.datetime] = None,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> ProvRelation:
        """Assert a ``wasInvalidatedBy`` relation."""
        return self._add_relation(
            "wasEndedBy",
            {
                "prov:activity": activity,
                "prov:trigger": trigger,
                "prov:ender": ender,
                "prov:time": time,
            },
            attributes,
        )

    def was_invalidated_by(
        self,
        entity: Identifier,
        activity: Optional[Identifier] = None,
        time: Optional[_dt.datetime] = None,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> ProvRelation:
        """Assert a ``wasDerivedFrom`` relation (optionally via an activity)."""
        return self._add_relation(
            "wasInvalidatedBy",
            {"prov:entity": entity, "prov:activity": activity, "prov:time": time},
            attributes,
        )

    def was_derived_from(
        self,
        generated: Identifier,
        used: Identifier,
        activity: Optional[Identifier] = None,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> ProvRelation:
        """Assert a ``wasDerivedFrom`` relation (optionally via an activity)."""
        return self._add_relation(
            "wasDerivedFrom",
            {
                "prov:generatedEntity": generated,
                "prov:usedEntity": used,
                "prov:activity": activity,
            },
            attributes,
        )

    def was_attributed_to(
        self, entity: Identifier, agent: Identifier,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> ProvRelation:
        """Assert a ``wasAssociatedWith`` relation (activity to agent, optional plan)."""
        return self._add_relation(
            "wasAttributedTo", {"prov:entity": entity, "prov:agent": agent}, attributes
        )

    def was_associated_with(
        self,
        activity: Identifier,
        agent: Identifier,
        plan: Optional[Identifier] = None,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> ProvRelation:
        """Assert an ``actedOnBehalfOf`` delegation between agents."""
        return self._add_relation(
            "wasAssociatedWith",
            {"prov:activity": activity, "prov:agent": agent, "prov:plan": plan},
            attributes,
        )

    def acted_on_behalf_of(
        self,
        delegate: Identifier,
        responsible: Identifier,
        activity: Optional[Identifier] = None,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> ProvRelation:
        """Assert a generic ``wasInfluencedBy`` relation."""
        return self._add_relation(
            "actedOnBehalfOf",
            {
                "prov:delegate": delegate,
                "prov:responsible": responsible,
                "prov:activity": activity,
            },
            attributes,
        )

    def was_influenced_by(
        self, influencee: Identifier, influencer: Identifier,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> ProvRelation:
        """Assert a generic ``wasInfluencedBy`` relation."""
        return self._add_relation(
            "wasInfluencedBy",
            {"prov:influencee": influencee, "prov:influencer": influencer},
            attributes,
        )

    def specialization_of(
        self, specific: Identifier, general: Identifier
    ) -> ProvRelation:
        """Assert a ``specializationOf`` relation between entities."""
        return self._add_relation(
            "specializationOf",
            {"prov:specificEntity": specific, "prov:generalEntity": general},
        )

    def alternate_of(self, alt1: Identifier, alt2: Identifier) -> ProvRelation:
        return self._add_relation(
            "alternateOf", {"prov:alternate1": alt1, "prov:alternate2": alt2}
        )

    def had_member(self, collection: Identifier, entity: Identifier) -> ProvRelation:
        return self._add_relation(
            "hadMember", {"prov:collection": collection, "prov:entity": entity}
        )

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def entities(self) -> Dict[QualifiedName, ProvEntity]:
        return self._elements["entity"]  # type: ignore[return-value]

    @property
    def activities(self) -> Dict[QualifiedName, ProvActivity]:
        return self._elements["activity"]  # type: ignore[return-value]

    @property
    def agents(self) -> Dict[QualifiedName, ProvAgent]:
        return self._elements["agent"]  # type: ignore[return-value]

    @property
    def relations(self) -> List[ProvRelation]:
        return self._relations

    def get_element(self, identifier: Identifier) -> Optional[ProvElement]:
        qn = self.qname(identifier)
        for table in self._elements.values():
            if qn in table:
                return table[qn]
        return None

    def relations_of_kind(self, kind: str) -> List[ProvRelation]:
        if kind not in PROV_REL_ARGS:
            raise ProvError(f"unknown relation kind: {kind!r}")
        return [r for r in self._relations if r.kind == kind]

    def iter_records(self) -> Iterator[Union[ProvElement, ProvRelation]]:
        for table in self._elements.values():
            yield from table.values()
        yield from self._relations

    def __len__(self) -> int:
        return sum(len(t) for t in self._elements.values()) + len(self._relations)

    def sorted_relations(self) -> List[ProvRelation]:
        """Deterministic relation order for serialization."""
        return sorted(self._relations, key=relation_sort_key)

    # ------------------------------------------------------------------
    # set-like operations
    # ------------------------------------------------------------------
    def update(self, other: "ProvBundle") -> None:
        """Merge all records of *other* into this bundle."""
        for ns in other.namespaces:
            self.namespaces.register(ns)
        if other.namespaces.default is not None and self.namespaces.default is None:
            self.namespaces.default = other.namespaces.default
        for kind, table in other._elements.items():
            for element in table.values():
                clone = ELEMENT_CLASSES[kind](
                    element.identifier, attributes=dict(element.attributes)
                )
                if isinstance(element, ProvActivity) and isinstance(clone, ProvActivity):
                    clone.start_time = element.start_time
                    clone.end_time = element.end_time
                self._add_element(kind, clone)
        known = {hash(r) for r in self._relations}
        for rel in other._relations:
            if hash(rel) not in known:
                self._relations.append(rel)


class ProvDocument(ProvBundle):
    """Top-level provenance document: a bundle that can hold named bundles."""

    def __init__(self, namespaces: Optional[NamespaceRegistry] = None) -> None:
        super().__init__(namespaces)
        self.bundles: Dict[QualifiedName, ProvBundle] = {}

    def bundle(self, identifier: Identifier) -> ProvBundle:
        """Create (or return) a named bundle sharing this document's namespaces."""
        qn = self.qname(identifier)
        if qn not in self.bundles:
            self.bundles[qn] = ProvBundle(self.namespaces, identifier=qn)
        return self.bundles[qn]

    def __len__(self) -> int:
        return super().__len__() + sum(len(b) for b in self.bundles.values())

    def flattened(self) -> "ProvDocument":
        """A new document with all bundle contents merged into the top level."""
        out = ProvDocument(self.namespaces.copy())
        ProvBundle.update(out, self)  # top-level records only, no bundle copy
        for bundle in self.bundles.values():
            out.update(bundle)
        return out

    def update(self, other: ProvBundle) -> None:
        super().update(other)
        if isinstance(other, ProvDocument):
            for qn, bundle in other.bundles.items():
                mine = self.bundle(qn)
                mine.update(bundle)

    # Convenience I/O ----------------------------------------------------
    def to_json(self, indent: Optional[int] = 2) -> str:
        from repro.prov.provjson import to_provjson

        return to_provjson(self, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ProvDocument":
        from repro.prov.provjson import from_provjson

        return from_provjson(text)

    def save(self, path: Any, indent: Optional[int] = 2) -> None:
        """Write PROV-JSON to *path* atomically (temp file + rename).

        A crash mid-save can never leave a torn provenance file: readers
        observe either the previous complete document or the new one.
        """
        from repro.atomicio import atomic_write_text

        atomic_write_text(path, self.to_json(indent=indent))

    @classmethod
    def load(cls, path: Any) -> "ProvDocument":
        import pathlib

        return cls.from_json(pathlib.Path(path).read_text(encoding="utf-8"))
