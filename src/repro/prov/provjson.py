"""PROV-JSON serialization (W3C member submission format).

The layout is::

    {
      "prefix":   {"ex": "http://example.org/", "default": "..."},
      "entity":   {"ex:e1": { ...attributes... }, ...},
      "activity": {"ex:a1": {"prov:startTime": "...", ...}, ...},
      "agent":    {...},
      "used":     {"_:u1": {"prov:activity": "ex:a1", "prov:entity": "ex:e1"}},
      ...,
      "bundle":   {"ex:b1": { ...same structure, minus prefix/bundle... }}
    }

Relation instances get stable generated keys (``_:<kind><n>``) unless they
carry an explicit identifier.  Serialization is deterministic: elements are
sorted by identifier and relations by their argument signature, so two
structurally equal documents produce byte-identical JSON — a property the
test suite and the Table 1 size benchmark both rely on.
"""

from __future__ import annotations

import datetime as _dt
import json
from typing import Any, Dict, Optional

from repro.errors import SerializationError
from repro.prov.document import ProvBundle, ProvDocument
from repro.prov.identifiers import Namespace, NamespaceRegistry, QualifiedName
from repro.prov.literals import (
    format_datetime,
    parse_datetime,
    value_from_json,
    value_to_json,
)
from repro.prov.model import (
    PROV_REL_ARGS,
    PROV_TIME_ARGS,
    ProvActivity,
    ProvRelation,
)

_RESERVED_KEYS = frozenset(PROV_REL_ARGS) | {"prefix", "entity", "activity", "agent", "bundle"}


def _attributes_to_json(attributes: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key in sorted(attributes):
        value = attributes[key]
        if isinstance(value, list):
            out[key] = [value_to_json(v) for v in value]
        else:
            out[key] = value_to_json(value)
    return out


def _bundle_to_dict(bundle: ProvBundle) -> Dict[str, Any]:
    doc: Dict[str, Any] = {}

    for kind, table_name in (("entity", "entities"), ("activity", "activities"), ("agent", "agents")):
        table = getattr(bundle, table_name)
        if not table:
            continue
        section: Dict[str, Any] = {}
        for qn in sorted(table, key=lambda q: q.provjson()):
            element = table[qn]
            attrs = _attributes_to_json(element.attributes)
            if isinstance(element, ProvActivity):
                if element.start_time is not None:
                    attrs["prov:startTime"] = format_datetime(element.start_time)
                if element.end_time is not None:
                    attrs["prov:endTime"] = format_datetime(element.end_time)
            section[qn.provjson()] = attrs
        doc[kind] = section

    counters: Dict[str, int] = {}
    for rel in bundle.sorted_relations():
        kind = rel.kind
        section = doc.setdefault(kind, {})
        if rel.identifier is not None:
            key = rel.identifier.provjson()
        else:
            counters[kind] = counters.get(kind, 0) + 1
            key = f"_:{kind}{counters[kind]}"
        body: Dict[str, Any] = {}
        for arg in PROV_REL_ARGS[kind]:
            if arg not in rel.args:
                continue
            value = rel.args[arg]
            if arg in PROV_TIME_ARGS:
                body[arg] = format_datetime(value)
            else:
                body[arg] = value.provjson()
        body.update(_attributes_to_json(rel.attributes))
        section[key] = body

    return doc


def to_provjson(document: ProvDocument, indent: Optional[int] = 2) -> str:
    """Serialize *document* (including bundles) to a PROV-JSON string."""
    doc = _bundle_to_dict(document)

    prefix: Dict[str, str] = {}
    for ns in sorted(document.namespaces, key=lambda n: n.prefix):
        prefix[ns.prefix] = ns.uri
    if document.namespaces.default is not None:
        prefix["default"] = document.namespaces.default.uri
    out: Dict[str, Any] = {"prefix": prefix}
    out.update(doc)

    if document.bundles:
        bundles: Dict[str, Any] = {}
        for qn in sorted(document.bundles, key=lambda q: q.provjson()):
            bundles[qn.provjson()] = _bundle_to_dict(document.bundles[qn])
        out["bundle"] = bundles

    return json.dumps(out, indent=indent, separators=None if indent else (",", ":"))


def _parse_attr_value(raw: Any, registry: NamespaceRegistry) -> Any:
    return value_from_json(raw, registry)


def _load_bundle(body: Dict[str, Any], bundle: ProvBundle) -> None:
    registry = bundle.namespaces

    for kind, ctor in (("entity", bundle.entity), ("agent", bundle.agent)):
        for ident, attrs in (body.get(kind) or {}).items():
            parsed = {
                k: (
                    [_parse_attr_value(v, registry) for v in val]
                    if isinstance(val, list)
                    else _parse_attr_value(val, registry)
                )
                for k, val in (attrs or {}).items()
            }
            ctor(registry.qname(ident), parsed)

    for ident, attrs in (body.get("activity") or {}).items():
        attrs = dict(attrs or {})
        start = attrs.pop("prov:startTime", None)
        end = attrs.pop("prov:endTime", None)
        parsed = {
            k: (
                [_parse_attr_value(v, registry) for v in val]
                if isinstance(val, list)
                else _parse_attr_value(val, registry)
            )
            for k, val in attrs.items()
        }
        bundle.activity(
            registry.qname(ident),
            start_time=parse_datetime(start) if isinstance(start, str) else start,
            end_time=parse_datetime(end) if isinstance(end, str) else end,
            attributes=parsed,
        )

    for kind in PROV_REL_ARGS:
        for key, spec in (body.get(kind) or {}).items():
            if not isinstance(spec, dict):
                raise SerializationError(f"malformed {kind} record {key!r}")
            args: Dict[str, Any] = {}
            attrs: Dict[str, Any] = {}
            for field, value in spec.items():
                if field in PROV_REL_ARGS[kind]:
                    if field in PROV_TIME_ARGS:
                        args[field] = parse_datetime(str(value))
                    else:
                        args[field] = registry.qname(str(value))
                else:
                    attrs[field] = (
                        [_parse_attr_value(v, registry) for v in value]
                        if isinstance(value, list)
                        else _parse_attr_value(value, registry)
                    )
            identifier = None if key.startswith("_:") else registry.qname(key)
            bundle._add_relation(kind, args, attrs or None, identifier)


def from_provjson(text: str) -> ProvDocument:
    """Parse a PROV-JSON string into a :class:`ProvDocument`."""
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise SerializationError("PROV-JSON top level must be an object")

    document = ProvDocument()
    for prefix, uri in (raw.get("prefix") or {}).items():
        if prefix == "default":
            document.set_default_namespace(uri)
        else:
            document.add_namespace(Namespace(prefix, uri))

    unknown = set(raw) - _RESERVED_KEYS
    if unknown:
        raise SerializationError(f"unknown PROV-JSON sections: {sorted(unknown)}")

    _load_bundle(raw, document)

    for ident, body in (raw.get("bundle") or {}).items():
        sub = document.bundle(document.namespaces.qname(ident))
        _load_bundle(body, sub)

    return document


def documents_equal(a: ProvDocument, b: ProvDocument) -> bool:
    """Structural equality via canonical serialization."""
    return to_provjson(a, indent=None) == to_provjson(b, indent=None)
