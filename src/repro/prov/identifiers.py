"""Qualified names and namespaces for PROV records.

W3C PROV identifies every record with a *qualified name*: a namespace
(declared once per document under a short prefix) plus a local part.
PROV-JSON writes them as ``prefix:localpart`` strings, so this module is the
single place where prefix resolution and validation live.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, Optional

from repro.errors import InvalidQualifiedNameError, UnknownNamespaceError

# Prefixes follow XML NCName rules, pragmatically restricted to the safe set.
_PREFIX_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")
# Local parts may contain most URI path characters; forbid whitespace and the
# prefix separator so round-tripping through "prefix:local" stays unambiguous.
_LOCAL_RE = re.compile(r"^[^\s]+$")


class Namespace:
    """A PROV namespace: a short ``prefix`` bound to a base ``uri``.

    Instances are callables that mint :class:`QualifiedName` objects::

        ex = Namespace("ex", "http://example.org/")
        ex("run_1")    # -> QualifiedName ex:run_1
    """

    __slots__ = ("prefix", "uri")

    def __init__(self, prefix: str, uri: str) -> None:
        if not _PREFIX_RE.match(prefix):
            raise InvalidQualifiedNameError(f"invalid namespace prefix: {prefix!r}")
        if not uri:
            raise InvalidQualifiedNameError("namespace uri must be non-empty")
        self.prefix = prefix
        self.uri = uri

    def __call__(self, localpart: str) -> "QualifiedName":
        return QualifiedName(self, localpart)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Namespace)
            and self.prefix == other.prefix
            and self.uri == other.uri
        )

    def __hash__(self) -> int:
        return hash((self.prefix, self.uri))

    def __repr__(self) -> str:
        return f"Namespace({self.prefix!r}, {self.uri!r})"


class QualifiedName:
    """An identifier of the form ``prefix:localpart`` inside a namespace."""

    __slots__ = ("namespace", "localpart")

    def __init__(self, namespace: Namespace, localpart: str) -> None:
        if not isinstance(namespace, Namespace):
            raise InvalidQualifiedNameError("namespace must be a Namespace instance")
        if not localpart or not _LOCAL_RE.match(localpart):
            raise InvalidQualifiedNameError(f"invalid local part: {localpart!r}")
        self.namespace = namespace
        self.localpart = localpart

    @property
    def uri(self) -> str:
        """Fully expanded URI of this name."""
        return self.namespace.uri + self.localpart

    def provjson(self) -> str:
        """The ``prefix:localpart`` string used in PROV-JSON keys/values."""
        return f"{self.namespace.prefix}:{self.localpart}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, QualifiedName):
            return self.uri == other.uri
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.uri)

    def __str__(self) -> str:
        return self.provjson()

    def __repr__(self) -> str:
        return f"QualifiedName({self.provjson()!r})"


class NamespaceRegistry:
    """Per-document registry mapping prefixes to namespaces.

    The registry enforces that a prefix is bound to at most one URI within a
    document (re-registration with the same URI is a no-op) and parses
    ``prefix:localpart`` strings back into :class:`QualifiedName`.
    """

    def __init__(self, namespaces: Optional[Iterable[Namespace]] = None) -> None:
        self._by_prefix: Dict[str, Namespace] = {}
        self.default: Optional[Namespace] = None
        for ns in namespaces or ():
            self.register(ns)

    def register(self, namespace: Namespace) -> Namespace:
        """Add *namespace*; returns the registered (possibly existing) one."""
        existing = self._by_prefix.get(namespace.prefix)
        if existing is not None:
            if existing.uri != namespace.uri:
                raise InvalidQualifiedNameError(
                    f"prefix {namespace.prefix!r} already bound to {existing.uri!r}"
                )
            return existing
        self._by_prefix[namespace.prefix] = namespace
        return namespace

    def set_default(self, uri: str) -> Namespace:
        """Declare the document's default namespace (PROV-JSON ``default``)."""
        self.default = Namespace("default", uri)
        return self.default

    def get(self, prefix: str) -> Namespace:
        try:
            return self._by_prefix[prefix]
        except KeyError:
            raise UnknownNamespaceError(f"unknown namespace prefix: {prefix!r}") from None

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._by_prefix

    def __iter__(self) -> Iterator[Namespace]:
        return iter(self._by_prefix.values())

    def __len__(self) -> int:
        return len(self._by_prefix)

    def qname(self, text: str) -> QualifiedName:
        """Parse ``prefix:localpart`` into a :class:`QualifiedName`.

        A bare name (no colon) resolves against the default namespace when
        one is declared.
        """
        prefix, sep, local = text.partition(":")
        if not sep:
            if self.default is None:
                raise UnknownNamespaceError(
                    f"{text!r} has no prefix and no default namespace is declared"
                )
            return QualifiedName(self.default, text)
        return QualifiedName(self.get(prefix), local)

    def copy(self) -> "NamespaceRegistry":
        out = NamespaceRegistry(self._by_prefix.values())
        out.default = self.default
        return out
