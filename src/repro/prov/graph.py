"""Graph views of PROV documents.

Converts documents to :class:`networkx.MultiDiGraph` and provides the
closure queries the yProv Explorer builds on: lineage (both directions),
ancestors (what a node depends on) and descendants (what was derived from
it).  Edge direction follows PROV's "points back in time" convention, so
*ancestors* of a model checkpoint are the datasets/activities it came from.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

import networkx as nx

from repro.errors import ProvError
from repro.prov.document import ProvDocument
from repro.prov.identifiers import QualifiedName
from repro.prov.model import ProvActivity


def to_networkx(document: ProvDocument, flatten: bool = True) -> nx.MultiDiGraph:
    """Build a MultiDiGraph whose nodes are element ids (``pfx:name`` strings).

    Node attributes: ``kind`` (entity/activity/agent), ``label``,
    ``prov_type`` and the element's attribute dict under ``attributes``.
    Edge attributes: ``relation`` (the PROV relation kind).

    With ``flatten=True`` (default), bundle contents are merged in.
    """
    doc = document.flattened() if flatten else document
    graph = nx.MultiDiGraph()

    for kind, table in (
        ("entity", doc.entities),
        ("activity", doc.activities),
        ("agent", doc.agents),
    ):
        for qn, element in table.items():
            attrs = {
                "kind": kind,
                "label": element.label or qn.localpart,
                "prov_type": str(element.prov_type) if element.prov_type is not None else None,
                "attributes": dict(element.attributes),
            }
            if isinstance(element, ProvActivity):
                attrs["start_time"] = element.start_time
                attrs["end_time"] = element.end_time
            graph.add_node(qn.provjson(), **attrs)

    for rel in doc.relations:
        target = rel.target
        if target is None:
            continue
        src = rel.source.provjson()
        dst = target.provjson()
        for node in (src, dst):
            if node not in graph:
                # Reference to an undeclared element: keep it visible rather
                # than dropping the edge (validation flags these separately).
                graph.add_node(node, kind="unknown", label=node, prov_type=None,
                               attributes={})
        graph.add_edge(src, dst, relation=rel.kind)

    return graph


def _as_node(identifier) -> str:
    if isinstance(identifier, QualifiedName):
        return identifier.provjson()
    return str(identifier)


def ancestors(
    document: ProvDocument,
    identifier,
    relations: Optional[Iterable[str]] = None,
    max_depth: Optional[int] = None,
) -> Set[str]:
    """All nodes reachable *from* ``identifier`` following relation edges.

    Because PROV edges point back in time, these are the things the node
    depends on (its upstream lineage).  ``relations`` restricts the edge
    kinds followed; ``max_depth`` bounds the traversal.
    """
    graph = to_networkx(document)
    return _closure(graph, _as_node(identifier), forward=True,
                    relations=relations, max_depth=max_depth)


def descendants(
    document: ProvDocument,
    identifier,
    relations: Optional[Iterable[str]] = None,
    max_depth: Optional[int] = None,
) -> Set[str]:
    """All nodes that (transitively) depend on ``identifier`` (downstream)."""
    graph = to_networkx(document)
    return _closure(graph, _as_node(identifier), forward=False,
                    relations=relations, max_depth=max_depth)


def lineage(
    document: ProvDocument,
    identifier,
    relations: Optional[Iterable[str]] = None,
) -> nx.MultiDiGraph:
    """Subgraph induced by the node plus its full upstream & downstream closure."""
    graph = to_networkx(document)
    node = _as_node(identifier)
    if node not in graph:
        raise ProvError(f"unknown element: {node}")
    keep = {node}
    keep |= _closure(graph, node, forward=True, relations=relations, max_depth=None)
    keep |= _closure(graph, node, forward=False, relations=relations, max_depth=None)
    return graph.subgraph(keep).copy()


def _closure(
    graph: nx.MultiDiGraph,
    start: str,
    forward: bool,
    relations: Optional[Iterable[str]],
    max_depth: Optional[int],
) -> Set[str]:
    if start not in graph:
        raise ProvError(f"unknown element: {start}")
    allowed = set(relations) if relations is not None else None
    seen: Set[str] = set()
    frontier = {start}
    depth = 0
    while frontier and (max_depth is None or depth < max_depth):
        nxt: Set[str] = set()
        for node in frontier:
            edges = graph.out_edges(node, data=True) if forward else graph.in_edges(node, data=True)
            for u, v, data in edges:
                if allowed is not None and data.get("relation") not in allowed:
                    continue
                other = v if forward else u
                if other not in seen and other != start:
                    nxt.add(other)
        seen |= nxt
        frontier = nxt
        depth += 1
    return seen


def degree_stats(document: ProvDocument, flatten: bool = True) -> Dict[str, float]:
    """Simple structural statistics used by the Explorer's summary view.

    Pass ``flatten=False`` when *document* is already a flattened view.
    """
    graph = to_networkx(document, flatten=flatten)
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    kinds: Dict[str, int] = {}
    for _, data in graph.nodes(data=True):
        kinds[data["kind"]] = kinds.get(data["kind"], 0) + 1
    return {
        "nodes": n,
        "edges": m,
        "entities": kinds.get("entity", 0),
        "activities": kinds.get("activity", 0),
        "agents": kinds.get("agent", 0),
        "mean_degree": (2.0 * m / n) if n else 0.0,
    }
