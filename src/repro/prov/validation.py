"""Pragmatic PROV-CONSTRAINTS validation.

Full PROV-CONSTRAINTS is a large inference system; this module implements the
checks that matter for catching real bugs in generated provenance:

* **referential integrity** — every identifier used in a relation should be
  declared as an element (warning, since PROV technically allows dangling
  references);
* **typing** — relation endpoints must have the expected element kind when
  declared (e.g. ``used`` must point activity -> entity);
* **event ordering** — a usage/generation time must fall inside the declared
  interval of its activity; an activity's end must not precede its start;
* **derivation acyclicity** — ``wasDerivedFrom`` must not form a cycle;
* **uniqueness** — at most one generation per (entity, activity) pair.

Results are collected in a :class:`ValidationReport` rather than raised, so
callers can choose strictness.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.errors import ValidationError
from repro.prov.document import ProvDocument
from repro.prov.identifiers import QualifiedName
from repro.prov.model import PROV_TIME_ARGS

#: relation kind -> required element kind per formal argument (when declared)
_EXPECTED_KINDS: Dict[str, Dict[str, str]] = {
    "wasGeneratedBy": {"prov:entity": "entity", "prov:activity": "activity"},
    "used": {"prov:activity": "activity", "prov:entity": "entity"},
    "wasInformedBy": {"prov:informed": "activity", "prov:informant": "activity"},
    "wasStartedBy": {"prov:activity": "activity", "prov:trigger": "entity",
                     "prov:starter": "activity"},
    "wasEndedBy": {"prov:activity": "activity", "prov:trigger": "entity",
                   "prov:ender": "activity"},
    "wasInvalidatedBy": {"prov:entity": "entity", "prov:activity": "activity"},
    "wasDerivedFrom": {"prov:generatedEntity": "entity", "prov:usedEntity": "entity",
                       "prov:activity": "activity"},
    "wasAttributedTo": {"prov:entity": "entity", "prov:agent": "agent"},
    "wasAssociatedWith": {"prov:activity": "activity", "prov:agent": "agent",
                          "prov:plan": "entity"},
    "actedOnBehalfOf": {"prov:delegate": "agent", "prov:responsible": "agent",
                        "prov:activity": "activity"},
    "specializationOf": {"prov:specificEntity": "entity", "prov:generalEntity": "entity"},
    "alternateOf": {"prov:alternate1": "entity", "prov:alternate2": "entity"},
    "hadMember": {"prov:collection": "entity", "prov:entity": "entity"},
    "wasInfluencedBy": {},
}


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_document`."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        """True when no hard errors were found (warnings allowed)."""
        return not self.errors

    def raise_if_invalid(self) -> None:
        """Raise :class:`~repro.errors.ValidationError` on any hard error."""
        if self.errors:
            raise ValidationError("; ".join(self.errors))

    def summary(self) -> str:
        return (
            f"valid={self.is_valid} "
            f"errors={len(self.errors)} warnings={len(self.warnings)}"
        )


def _element_kinds(document: ProvDocument) -> Dict[QualifiedName, str]:
    kinds: Dict[QualifiedName, str] = {}
    for qn in document.entities:
        kinds[qn] = "entity"
    for qn in document.activities:
        kinds[qn] = "activity"
    for qn in document.agents:
        kinds[qn] = "agent"
    return kinds


def validate_document(
    document: ProvDocument,
    require_declared: bool = False,
    flatten: bool = True,
) -> ValidationReport:
    """Validate *document*; see module docstring for the checks performed.

    With ``require_declared=True`` dangling references become hard errors
    instead of warnings (yProv4ML's own output always declares everything,
    so its tests run in strict mode).
    """
    doc = document.flattened() if flatten else document
    report = ValidationReport()
    kinds = _element_kinds(doc)

    # --- referential integrity & typing ---------------------------------
    for rel in doc.relations:
        expected = _EXPECTED_KINDS.get(rel.kind, {})
        for arg, value in rel.args.items():
            if arg in PROV_TIME_ARGS:
                continue
            if not isinstance(value, QualifiedName):
                report.errors.append(
                    f"{rel.kind}: argument {arg} is not an identifier: {value!r}"
                )
                continue
            declared = kinds.get(value)
            if declared is None:
                msg = f"{rel.kind}: {arg} references undeclared element {value}"
                (report.errors if require_declared else report.warnings).append(msg)
            else:
                want = expected.get(arg)
                if want is not None and declared != want:
                    report.errors.append(
                        f"{rel.kind}: {arg} must be a {want}, "
                        f"but {value} is declared as a {declared}"
                    )

    # --- activity interval sanity ----------------------------------------
    for qn, act in doc.activities.items():
        if act.start_time and act.end_time and act.end_time < act.start_time:
            report.errors.append(
                f"activity {qn}: endTime {act.end_time.isoformat()} precedes "
                f"startTime {act.start_time.isoformat()}"
            )

    # --- event ordering: usage/generation inside activity interval -------
    for rel in doc.relations:
        if rel.kind not in ("used", "wasGeneratedBy", "wasInvalidatedBy"):
            continue
        time = rel.args.get("prov:time")
        activity_id = rel.args.get("prov:activity")
        if time is None or activity_id is None:
            continue
        act = doc.activities.get(activity_id)
        if act is None:
            continue
        if act.start_time and time < act.start_time:
            report.errors.append(
                f"{rel.kind} at {time.isoformat()} precedes start of activity {activity_id}"
            )
        if act.end_time and time > act.end_time:
            report.errors.append(
                f"{rel.kind} at {time.isoformat()} follows end of activity {activity_id}"
            )

    # --- derivation acyclicity -------------------------------------------
    deriv = nx.DiGraph()
    for rel in doc.relations_of_kind("wasDerivedFrom"):
        gen = rel.args.get("prov:generatedEntity")
        use = rel.args.get("prov:usedEntity")
        if gen is not None and use is not None and gen != use:
            deriv.add_edge(gen.provjson(), use.provjson())
        elif gen is not None and gen == use:
            report.errors.append(f"wasDerivedFrom: {gen} derived from itself")
    try:
        cycle = nx.find_cycle(deriv)
    except nx.NetworkXNoCycle:
        cycle = None
    if cycle:
        path = " -> ".join(edge[0] for edge in cycle)
        report.errors.append(f"derivation cycle detected: {path}")

    # --- generation uniqueness --------------------------------------------
    seen: Set[Tuple[str, str]] = set()
    for rel in doc.relations_of_kind("wasGeneratedBy"):
        ent = rel.args.get("prov:entity")
        act = rel.args.get("prov:activity")
        if ent is None or act is None:
            continue
        key = (ent.provjson(), act.provjson())
        if key in seen:
            report.warnings.append(
                f"duplicate generation of {key[0]} by {key[1]}"
            )
        seen.add(key)

    return report
