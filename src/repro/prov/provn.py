"""PROV-N writer (human-readable provenance notation).

Writer-only: yProv4ML emits PROV-JSON as its interchange format and PROV-N
purely for human inspection, so no parser is needed.  Output follows the
PROV-N grammar closely enough for eyeballing and documentation snippets.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, List

from repro.prov.document import ProvBundle, ProvDocument
from repro.prov.identifiers import QualifiedName
from repro.prov.literals import Literal, format_datetime, infer_datatype
from repro.prov.model import PROV_REL_ARGS, PROV_TIME_ARGS, ProvActivity, ProvRelation

#: relation kind -> PROV-N keyword
_PROVN_NAMES = {
    "wasGeneratedBy": "wasGeneratedBy",
    "used": "used",
    "wasInformedBy": "wasInformedBy",
    "wasStartedBy": "wasStartedBy",
    "wasEndedBy": "wasEndedBy",
    "wasInvalidatedBy": "wasInvalidatedBy",
    "wasDerivedFrom": "wasDerivedFrom",
    "wasAttributedTo": "wasAttributedTo",
    "wasAssociatedWith": "wasAssociatedWith",
    "actedOnBehalfOf": "actedOnBehalfOf",
    "wasInfluencedBy": "wasInfluencedBy",
    "specializationOf": "specializationOf",
    "alternateOf": "alternateOf",
    "hadMember": "hadMember",
}


def _format_value(value: Any) -> str:
    if isinstance(value, QualifiedName):
        return f"'{value.provjson()}'"
    if isinstance(value, Literal):
        return f'"{value.value}" %% {value.datatype}'
    if isinstance(value, _dt.datetime):
        return f'"{format_datetime(value)}" %% xsd:dateTime'
    if isinstance(value, bool):
        return f'"{str(value).lower()}" %% xsd:boolean'
    if isinstance(value, (int, float)):
        return f'"{value}" %% {infer_datatype(value)}'
    text = str(value).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{text}"'


def _format_attrs(attributes: dict) -> str:
    if not attributes:
        return ""
    parts: List[str] = []
    for key in sorted(attributes):
        value = attributes[key]
        values = value if isinstance(value, list) else [value]
        for v in values:
            parts.append(f"{key}={_format_value(v)}")
    return "[" + ", ".join(parts) + "]"


def _bundle_lines(bundle: ProvBundle, indent: str) -> List[str]:
    lines: List[str] = []

    for qn in sorted(bundle.entities, key=lambda q: q.provjson()):
        ent = bundle.entities[qn]
        attrs = _format_attrs(ent.attributes)
        lines.append(f"{indent}entity({qn.provjson()}{', ' + attrs if attrs else ''})")

    for qn in sorted(bundle.activities, key=lambda q: q.provjson()):
        act = bundle.activities[qn]
        start = format_datetime(act.start_time) if act.start_time else "-"
        end = format_datetime(act.end_time) if act.end_time else "-"
        attrs = _format_attrs(act.attributes)
        time_part = f", {start}, {end}" if (act.start_time or act.end_time) else ""
        lines.append(
            f"{indent}activity({qn.provjson()}{time_part}{', ' + attrs if attrs else ''})"
        )

    for qn in sorted(bundle.agents, key=lambda q: q.provjson()):
        ag = bundle.agents[qn]
        attrs = _format_attrs(ag.attributes)
        lines.append(f"{indent}agent({qn.provjson()}{', ' + attrs if attrs else ''})")

    for rel in bundle.sorted_relations():
        lines.append(indent + _relation_line(rel))

    return lines


def _relation_line(rel: ProvRelation) -> str:
    name = _PROVN_NAMES[rel.kind]
    parts: List[str] = []
    if rel.identifier is not None:
        parts.append(f"{rel.identifier.provjson()};")
    for arg in PROV_REL_ARGS[rel.kind]:
        value = rel.args.get(arg)
        if value is None:
            parts.append("-")
        elif arg in PROV_TIME_ARGS:
            parts.append(format_datetime(value))
        else:
            parts.append(value.provjson())
    # trim trailing optional "-" placeholders (the subject always stays)
    while len(parts) > 1 and parts[-1] == "-":
        parts.pop()
    attrs = _format_attrs(rel.attributes)
    if attrs:
        parts.append(attrs)
    inner = ", ".join(parts).replace("; ,", ";")
    return f"{name}({inner})"


def to_provn(document: ProvDocument) -> str:
    """Render *document* as a PROV-N string."""
    lines: List[str] = ["document"]
    for ns in sorted(document.namespaces, key=lambda n: n.prefix):
        lines.append(f"  prefix {ns.prefix} <{ns.uri}>")
    if document.namespaces.default is not None:
        lines.append(f"  default <{document.namespaces.default.uri}>")
    lines.append("")
    lines.extend(_bundle_lines(document, "  "))
    for qn in sorted(document.bundles, key=lambda q: q.provjson()):
        lines.append(f"  bundle {qn.provjson()}")
        lines.extend(_bundle_lines(document.bundles[qn], "    "))
        lines.append("  endBundle")
    lines.append("endDocument")
    return "\n".join(lines) + "\n"
