"""PROV-O serialization: RDF in Turtle syntax.

Table 2 lists three W3C PROV serializations — PROV-N, PROV-JSON and
"PROV-O (RDF)".  This module maps documents onto the PROV ontology and
writes Turtle:

* elements become subjects typed ``prov:Entity`` / ``prov:Activity`` /
  ``prov:Agent``; attributes become data properties (``prov:type`` /
  ``rdfs:label`` get their standard terms);
* binary relations use the PROV-O object properties
  (``prov:wasGeneratedBy``, ``prov:used``, ...);
* relation instances carrying extra information (a time, an activity on a
  derivation, attributes) are written as *qualified* patterns
  (``prov:qualifiedGeneration`` with a ``prov:Generation`` blank node etc.),
  per the PROV-O qualified-terms design.

A small Turtle parser for the subset this writer emits provides round-trip
capability for interchange tests; it is not a general RDF parser.
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SerializationError
from repro.prov.document import ProvDocument
from repro.prov.identifiers import Namespace, QualifiedName
from repro.prov.literals import Literal, format_datetime, parse_datetime
from repro.prov.model import PROV_REL_ARGS, ProvActivity, ProvRelation

#: relation kind -> (direct object property, qualified property, qualified
#: class, role property of the "other" participant in the qualified node)
_PROVO_TERMS: Dict[str, Tuple[str, Optional[str], Optional[str], Optional[str]]] = {
    "wasGeneratedBy": ("prov:wasGeneratedBy", "prov:qualifiedGeneration",
                       "prov:Generation", "prov:activity"),
    "used": ("prov:used", "prov:qualifiedUsage", "prov:Usage", "prov:entity"),
    "wasInformedBy": ("prov:wasInformedBy", "prov:qualifiedCommunication",
                      "prov:Communication", "prov:activity"),
    "wasStartedBy": ("prov:wasStartedBy", "prov:qualifiedStart", "prov:Start",
                     "prov:entity"),
    "wasEndedBy": ("prov:wasEndedBy", "prov:qualifiedEnd", "prov:End",
                   "prov:entity"),
    "wasInvalidatedBy": ("prov:wasInvalidatedBy", "prov:qualifiedInvalidation",
                         "prov:Invalidation", "prov:activity"),
    "wasDerivedFrom": ("prov:wasDerivedFrom", "prov:qualifiedDerivation",
                       "prov:Derivation", "prov:entity"),
    "wasAttributedTo": ("prov:wasAttributedTo", "prov:qualifiedAttribution",
                        "prov:Attribution", "prov:agent"),
    "wasAssociatedWith": ("prov:wasAssociatedWith", "prov:qualifiedAssociation",
                          "prov:Association", "prov:agent"),
    "actedOnBehalfOf": ("prov:actedOnBehalfOf", "prov:qualifiedDelegation",
                        "prov:Delegation", "prov:agent"),
    "wasInfluencedBy": ("prov:wasInfluencedBy", "prov:qualifiedInfluence",
                        "prov:Influence", "prov:influencer"),
    "specializationOf": ("prov:specializationOf", None, None, None),
    "alternateOf": ("prov:alternateOf", None, None, None),
    "hadMember": ("prov:hadMember", None, None, None),
}

_ELEMENT_CLASSES = {
    "entity": "prov:Entity",
    "activity": "prov:Activity",
    "agent": "prov:Agent",
}


def _escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"')
        .replace("\n", "\\n").replace("\r", "\\r").replace("\t", "\\t")
    )


def _literal_ttl(value: Any) -> str:
    if isinstance(value, QualifiedName):
        return value.provjson()
    if isinstance(value, Literal):
        body = f'"{_escape(str(value.value))}"'
        if value.langtag:
            return f"{body}@{value.langtag}"
        return f"{body}^^{value.datatype}"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return f'"{value!r}"^^xsd:double'
        return f'"{value!r}"^^xsd:double'
    if isinstance(value, _dt.datetime):
        return f'"{format_datetime(value)}"^^xsd:dateTime'
    return f'"{_escape(str(value))}"'


def _attr_predicate(key: str) -> str:
    if key == "prov:label":
        return "rdfs:label"
    return key


def to_provo(document: ProvDocument) -> str:
    """Serialize *document* (flattened) as PROV-O Turtle."""
    doc = document.flattened()
    lines: List[str] = []
    lines.append("@prefix prov: <http://www.w3.org/ns/prov#> .")
    lines.append("@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .")
    lines.append("@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .")
    for ns in sorted(doc.namespaces, key=lambda n: n.prefix):
        if ns.prefix in ("prov", "xsd", "rdfs"):
            continue
        lines.append(f"@prefix {ns.prefix}: <{ns.uri}> .")
    lines.append("")

    for kind, table_name in (("entity", "entities"), ("activity", "activities"),
                             ("agent", "agents")):
        for qn in sorted(getattr(doc, table_name), key=lambda q: q.provjson()):
            element = getattr(doc, table_name)[qn]
            triples = [f"a {_ELEMENT_CLASSES[kind]}"]
            if isinstance(element, ProvActivity):
                if element.start_time is not None:
                    triples.append(
                        f'prov:startedAtTime "{format_datetime(element.start_time)}"'
                        f"^^xsd:dateTime"
                    )
                if element.end_time is not None:
                    triples.append(
                        f'prov:endedAtTime "{format_datetime(element.end_time)}"'
                        f"^^xsd:dateTime"
                    )
            for key in sorted(element.attributes):
                value = element.attributes[key]
                values = value if isinstance(value, list) else [value]
                for v in values:
                    triples.append(f"{_attr_predicate(key)} {_literal_ttl(v)}")
            body = " ;\n    ".join(triples)
            lines.append(f"{qn.provjson()} {body} .")
            lines.append("")

    blank_counter = 0
    for rel in doc.sorted_relations():
        terms = _PROVO_TERMS[rel.kind]
        direct, qualified, qclass, role = terms
        args = PROV_REL_ARGS[rel.kind]
        subject = rel.args.get(args[0])
        obj = rel.args.get(args[1])
        if subject is None:
            continue
        needs_qualified = (
            qualified is not None
            and (
                "prov:time" in rel.args
                or rel.attributes
                or any(a in rel.args for a in args[2:])
            )
        )
        if obj is not None:
            lines.append(f"{subject.provjson()} {direct} {obj.provjson()} .")
        if needs_qualified:
            blank_counter += 1
            node = f"_:q{blank_counter}"
            triples = [f"a {qclass}"]
            if obj is not None and role is not None:
                triples.append(f"{role} {obj.provjson()}")
            time = rel.args.get("prov:time")
            if time is not None:
                triples.append(
                    f'prov:atTime "{format_datetime(time)}"^^xsd:dateTime'
                )
            # extra formal args (e.g. derivation activity) as hadActivity
            for extra in args[2:]:
                value = rel.args.get(extra)
                if value is not None and extra != "prov:time":
                    triples.append(f"prov:hadActivity {value.provjson()}")
            for key in sorted(rel.attributes):
                triples.append(
                    f"{_attr_predicate(key)} {_literal_ttl(rel.attributes[key])}"
                )
            body = " ;\n    ".join(triples)
            lines.append(f"{subject.provjson()} {qualified} {node} .")
            lines.append(f"{node} {body} .")
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"


# ---------------------------------------------------------------------------
# minimal Turtle reader (subset emitted by the writer)
# ---------------------------------------------------------------------------

_PREFIX_RE = re.compile(r"^@prefix\s+([A-Za-z_][\w.\-]*):\s+<([^>]*)>\s*\.\s*$")
_DIRECT_BY_PROPERTY = {
    terms[0]: kind for kind, terms in _PROVO_TERMS.items()
}
_KIND_BY_CLASS = {v: k for k, v in _ELEMENT_CLASSES.items()}


def _split_statements(text: str) -> List[str]:
    """Split Turtle into '.'-terminated statements, respecting strings."""
    statements: List[str] = []
    buf: List[str] = []
    in_string = False
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == '"' and (i == 0 or text[i - 1] != "\\"):
            in_string = not in_string
        if ch == "." and not in_string and (i + 1 == len(text) or text[i + 1] in " \n\r\t"):
            statement = "".join(buf).strip()
            if statement:
                statements.append(statement)
            buf = []
        else:
            buf.append(ch)
        i += 1
    tail = "".join(buf).strip()
    if tail:
        statements.append(tail)
    return statements


def _parse_object(token: str):
    token = token.strip()
    match = re.match(r'^"(.*)"\^\^(\S+)$', token, re.DOTALL)
    if match:
        raw, dtype = match.groups()
        raw = raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        if dtype == "xsd:dateTime":
            return parse_datetime(raw)
        if dtype == "xsd:double":
            return float(raw)
        return Literal(raw, dtype)
    match = re.match(r'^"(.*)"(?:@([A-Za-z\-]+))?$', token, re.DOTALL)
    if match:
        raw, lang = match.groups()
        raw = raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        return Literal(raw, "xsd:string", lang) if lang else raw
    if token == "true":
        return True
    if token == "false":
        return False
    if re.match(r"^-?\d+$", token):
        return int(token)
    if re.match(r"^-?\d*\.\d+(e-?\d+)?$", token, re.IGNORECASE):
        return float(token)
    return ("qname", token)


def from_provo(text: str) -> ProvDocument:
    """Parse Turtle emitted by :func:`to_provo` back into a document.

    Supports the writer's subset: prefixed names, ``a`` typing,
    ``;``-chained predicates, datatyped literals and blank-node qualified
    patterns (which are folded back into relation times/attributes).
    """
    doc = ProvDocument()
    subjects: Dict[str, List[Tuple[str, Any]]] = {}

    for line in text.splitlines():
        match = _PREFIX_RE.match(line.strip())
        if match:
            prefix, uri = match.groups()
            if prefix not in ("prov", "xsd", "rdfs"):
                doc.add_namespace(Namespace(prefix, uri))

    body = "\n".join(
        l for l in text.splitlines() if not l.strip().startswith("@prefix")
    )
    for statement in _split_statements(body):
        tokens = statement.split(None, 1)
        if len(tokens) != 2:
            raise SerializationError(f"malformed turtle statement: {statement!r}")
        subject, rest = tokens
        predicate_objects = []
        for chunk in _split_semicolons(rest):
            parts = chunk.strip().split(None, 1)
            if len(parts) != 2:
                raise SerializationError(f"malformed predicate-object: {chunk!r}")
            predicate_objects.append((parts[0], parts[1].strip()))
        subjects.setdefault(subject, []).extend(predicate_objects)

    # first pass: declare elements
    for subject, pairs in subjects.items():
        if subject.startswith("_:"):
            continue
        kinds = [obj for pred, obj in pairs if pred == "a" and obj in _KIND_BY_CLASS]
        if not kinds:
            continue
        kind = _KIND_BY_CLASS[kinds[0]]
        attrs: Dict[str, Any] = {}
        start = end = None
        for pred, obj in pairs:
            if pred == "a":
                if obj not in _KIND_BY_CLASS:
                    attrs.setdefault("prov:type", []).append(_parse_object(obj))
                continue
            if pred == "prov:startedAtTime":
                start = _parse_object(obj)
                continue
            if pred == "prov:endedAtTime":
                end = _parse_object(obj)
                continue
            if pred in _DIRECT_BY_PROPERTY or pred.startswith("prov:qualified"):
                continue
            key = "prov:label" if pred == "rdfs:label" else pred
            value = _parse_object(obj)
            if isinstance(value, tuple) and value[0] == "qname":
                value = doc.namespaces.qname(value[1])
            if key in attrs:
                existing = attrs[key]
                attrs[key] = existing + [value] if isinstance(existing, list) else [existing, value]
            else:
                attrs[key] = value
        for key, value in list(attrs.items()):
            if isinstance(value, list) and len(value) == 1:
                attrs[key] = value[0]
        if kind == "entity":
            doc.entity(subject, attrs)
        elif kind == "agent":
            doc.agent(subject, attrs)
        else:
            doc.activity(subject, start_time=start, end_time=end, attributes=attrs)

    # second pass: qualified blank nodes (times keyed by (subject, class, object))
    qualified_info: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for subject, pairs in subjects.items():
        for pred, obj in pairs:
            if pred.startswith("prov:qualified") and obj.startswith("_:"):
                qpairs = subjects.get(obj, [])
                info: Dict[str, Any] = {}
                for qpred, qobj in qpairs:
                    if qpred == "prov:atTime":
                        info["time"] = _parse_object(qobj)
                    elif qpred in ("prov:entity", "prov:activity", "prov:agent",
                                   "prov:influencer"):
                        info["other"] = qobj
                qualified_info[(subject, pred)] = info

    # third pass: relations
    for subject, pairs in subjects.items():
        if subject.startswith("_:"):
            continue
        for pred, obj in pairs:
            kind = _DIRECT_BY_PROPERTY.get(pred)
            if kind is None:
                continue
            args = PROV_REL_ARGS[kind]
            rel_args: Dict[str, Any] = {args[0]: subject, args[1]: obj}
            qualified_prop = _PROVO_TERMS[kind][1]
            info = qualified_info.get((subject, qualified_prop)) if qualified_prop else None
            if info and "time" in info and "prov:time" in args:
                rel_args["prov:time"] = info["time"]
            doc._add_relation(kind, rel_args)

    return doc


def _split_semicolons(text: str) -> List[str]:
    out: List[str] = []
    buf: List[str] = []
    in_string = False
    for i, ch in enumerate(text):
        if ch == '"' and (i == 0 or text[i - 1] != "\\"):
            in_string = not in_string
        if ch == ";" and not in_string:
            out.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    if "".join(buf).strip():
        out.append("".join(buf))
    return out
