"""PROV-DM record types: elements, relations, and their PROV-JSON argument maps.

The model follows the W3C PROV-DM recommendation.  Three *element* types
(Entity, Activity, Agent) carry an identifier plus attributes; fourteen
*relation* types link elements through named formal arguments (e.g. a
``used`` relation has ``prov:activity``, ``prov:entity`` and ``prov:time``).

Records are intentionally dumb containers — all cross-record logic (lookup,
merging, validation) lives in :mod:`repro.prov.document` and
:mod:`repro.prov.validation`.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ProvError
from repro.prov.identifiers import Namespace, QualifiedName

#: The PROV namespace itself, used for reserved attributes like ``prov:type``.
PROV = Namespace("prov", "http://www.w3.org/ns/prov#")

#: The XSD namespace (datatypes).
XSD_NS = Namespace("xsd", "http://www.w3.org/2001/XMLSchema#")

# ---------------------------------------------------------------------------
# PROV-JSON structure tables
# ---------------------------------------------------------------------------

#: element kind -> PROV-JSON top-level key
PROV_ELEMENT_KEYS = {
    "entity": "entity",
    "activity": "activity",
    "agent": "agent",
}

#: relation kind -> ordered formal argument names, per the PROV-JSON schema.
#: The first two arguments are the required subject/object of the relation;
#: the rest are optional.
PROV_REL_ARGS: Dict[str, Tuple[str, ...]] = {
    "wasGeneratedBy": ("prov:entity", "prov:activity", "prov:time"),
    "used": ("prov:activity", "prov:entity", "prov:time"),
    "wasInformedBy": ("prov:informed", "prov:informant"),
    "wasStartedBy": ("prov:activity", "prov:trigger", "prov:starter", "prov:time"),
    "wasEndedBy": ("prov:activity", "prov:trigger", "prov:ender", "prov:time"),
    "wasInvalidatedBy": ("prov:entity", "prov:activity", "prov:time"),
    "wasDerivedFrom": (
        "prov:generatedEntity",
        "prov:usedEntity",
        "prov:activity",
        "prov:generation",
        "prov:usage",
    ),
    "wasAttributedTo": ("prov:entity", "prov:agent"),
    "wasAssociatedWith": ("prov:activity", "prov:agent", "prov:plan"),
    "actedOnBehalfOf": ("prov:delegate", "prov:responsible", "prov:activity"),
    "wasInfluencedBy": ("prov:influencee", "prov:influencer"),
    "specializationOf": ("prov:specificEntity", "prov:generalEntity"),
    "alternateOf": ("prov:alternate1", "prov:alternate2"),
    "hadMember": ("prov:collection", "prov:entity"),
}

#: relation kind -> (source argument, target argument) for graph export.
#: Edges point from the *subject* of the assertion to the thing it depends on
#: (e.g. wasGeneratedBy: entity -> activity), matching PROV's convention that
#: relations point "back in time".
PROV_REL_ENDPOINTS: Dict[str, Tuple[str, str]] = {
    "wasGeneratedBy": ("prov:entity", "prov:activity"),
    "used": ("prov:activity", "prov:entity"),
    "wasInformedBy": ("prov:informed", "prov:informant"),
    "wasStartedBy": ("prov:activity", "prov:trigger"),
    "wasEndedBy": ("prov:activity", "prov:trigger"),
    "wasInvalidatedBy": ("prov:entity", "prov:activity"),
    "wasDerivedFrom": ("prov:generatedEntity", "prov:usedEntity"),
    "wasAttributedTo": ("prov:entity", "prov:agent"),
    "wasAssociatedWith": ("prov:activity", "prov:agent"),
    "actedOnBehalfOf": ("prov:delegate", "prov:responsible"),
    "wasInfluencedBy": ("prov:influencee", "prov:influencer"),
    "specializationOf": ("prov:specificEntity", "prov:generalEntity"),
    "alternateOf": ("prov:alternate1", "prov:alternate2"),
    "hadMember": ("prov:collection", "prov:entity"),
}

#: Which formal arguments hold datetimes rather than identifiers.
PROV_TIME_ARGS = frozenset({"prov:time", "prov:startTime", "prov:endTime"})

AttributeValue = Any
Attributes = Mapping[str, AttributeValue]


class ProvRecord:
    """Common base for all PROV records (elements and relations)."""

    kind: str = "record"

    def __init__(self, attributes: Optional[Attributes] = None) -> None:
        # Attribute keys are "prefix:local" strings; values are scalars,
        # Literals, QualifiedNames or datetimes.  A key may map to a list
        # when asserted multiple times (PROV allows repeated attributes).
        self.attributes: Dict[str, Any] = dict(attributes or {})

    # -- attribute helpers -------------------------------------------------
    def add_attribute(self, key: str, value: AttributeValue) -> None:
        """Assert *key* = *value*; repeated assertions accumulate in a list."""
        if key in self.attributes:
            existing = self.attributes[key]
            if isinstance(existing, list):
                existing.append(value)
            else:
                self.attributes[key] = [existing, value]
        else:
            self.attributes[key] = value

    def get_attribute(self, key: str, default: Any = None) -> Any:
        return self.attributes.get(key, default)

    @property
    def prov_type(self) -> Any:
        """The ``prov:type`` attribute, if asserted (first value when multiple)."""
        value = self.attributes.get("prov:type")
        if isinstance(value, list):
            return value[0] if value else None
        return value

    @property
    def label(self) -> Optional[str]:
        value = self.attributes.get("prov:label")
        if isinstance(value, list):
            value = value[0] if value else None
        return None if value is None else str(value)


class ProvElement(ProvRecord):
    """An identified element: Entity, Activity or Agent."""

    def __init__(
        self, identifier: QualifiedName, attributes: Optional[Attributes] = None
    ) -> None:
        if not isinstance(identifier, QualifiedName):
            raise ProvError(f"element identifier must be a QualifiedName: {identifier!r}")
        super().__init__(attributes)
        self.identifier = identifier

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.identifier.provjson()!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProvElement):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.identifier == other.identifier
            and self.attributes == other.attributes
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.identifier))


class ProvEntity(ProvElement):
    """A physical, digital or conceptual thing (dataset, checkpoint, metric)."""

    kind = "entity"


class ProvActivity(ProvElement):
    """Something that occurs over a period of time (a run, an epoch, a stage)."""

    kind = "activity"

    def __init__(
        self,
        identifier: QualifiedName,
        start_time: Optional[_dt.datetime] = None,
        end_time: Optional[_dt.datetime] = None,
        attributes: Optional[Attributes] = None,
    ) -> None:
        super().__init__(identifier, attributes)
        self.start_time = start_time
        self.end_time = end_time

    def __eq__(self, other: object) -> bool:
        base = super().__eq__(other)
        if base is NotImplemented or not base:
            return base
        assert isinstance(other, ProvActivity)
        return self.start_time == other.start_time and self.end_time == other.end_time

    def __hash__(self) -> int:  # attributes may mutate; hash on identity fields
        return hash((self.kind, self.identifier))


class ProvAgent(ProvElement):
    """Something bearing responsibility (a user, the library, a scheduler)."""

    kind = "agent"


class ProvRelation(ProvRecord):
    """A qualified relation between elements.

    ``args`` maps formal argument names (``prov:entity``, ``prov:activity``,
    ...) to :class:`QualifiedName` values or datetimes, following
    :data:`PROV_REL_ARGS` for the relation's ``kind``.
    """

    def __init__(
        self,
        kind: str,
        args: Mapping[str, Any],
        identifier: Optional[QualifiedName] = None,
        attributes: Optional[Attributes] = None,
    ) -> None:
        if kind not in PROV_REL_ARGS:
            raise ProvError(f"unknown relation kind: {kind!r}")
        allowed = set(PROV_REL_ARGS[kind])
        bad = set(args) - allowed
        if bad:
            raise ProvError(f"invalid arguments for {kind}: {sorted(bad)}")
        required = PROV_REL_ARGS[kind][0]
        if required not in args or args[required] is None:
            raise ProvError(f"{kind} requires argument {required}")
        super().__init__(attributes)
        self.kind = kind
        self.identifier = identifier
        self.args: Dict[str, Any] = {k: v for k, v in args.items() if v is not None}

    @property
    def source(self) -> QualifiedName:
        """The subject endpoint (for graph export)."""
        return self.args[PROV_REL_ENDPOINTS[self.kind][0]]

    @property
    def target(self) -> Optional[QualifiedName]:
        """The object endpoint; may be absent (e.g. generation w/o activity)."""
        return self.args.get(PROV_REL_ENDPOINTS[self.kind][1])

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.args.items())
        return f"ProvRelation({self.kind}: {parts})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProvRelation):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.identifier == other.identifier
            and self.args == other.args
            and self.attributes == other.attributes
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.identifier, tuple(sorted(
            (k, str(v)) for k, v in self.args.items()
        ))))


def relation_sort_key(rel: ProvRelation) -> Tuple[str, str]:
    """Stable ordering for deterministic serialization."""
    return (rel.kind, ";".join(f"{k}={v}" for k, v in sorted(
        (k, str(v)) for k, v in rel.args.items()
    )))


def iter_identifier_args(rel: ProvRelation) -> Iterable[Tuple[str, QualifiedName]]:
    """Yield (argname, QualifiedName) pairs, skipping time arguments."""
    for key, value in rel.args.items():
        if key in PROV_TIME_ARGS:
            continue
        if isinstance(value, QualifiedName):
            yield key, value


ELEMENT_CLASSES = {
    "entity": ProvEntity,
    "activity": ProvActivity,
    "agent": ProvAgent,
}
