"""Typed literal values for PROV attributes.

PROV-JSON represents attribute values either as plain JSON scalars or as
``{"$": "...", "type": "xsd:..."}`` objects.  This module provides the
:class:`Literal` wrapper plus conversion between Python values and that
representation, including ISO-8601 datetimes (``xsd:dateTime``).
"""

from __future__ import annotations

import datetime as _dt
import math
from typing import Any, Optional, Union

from repro.errors import SerializationError


class XSD:
    """String constants for the XML Schema datatypes PROV uses."""

    STRING = "xsd:string"
    INT = "xsd:int"
    LONG = "xsd:long"
    DOUBLE = "xsd:double"
    FLOAT = "xsd:float"
    BOOLEAN = "xsd:boolean"
    DATETIME = "xsd:dateTime"
    ANY_URI = "xsd:anyURI"
    QNAME = "prov:QUALIFIED_NAME"


class Literal:
    """A value paired with an explicit XSD datatype (and optional language).

    Plain Python scalars may be logged directly; a :class:`Literal` is only
    needed when the datatype must be pinned (e.g. force ``xsd:anyURI``).
    """

    __slots__ = ("value", "datatype", "langtag")

    def __init__(self, value: Any, datatype: str, langtag: Optional[str] = None) -> None:
        self.value = value
        self.datatype = datatype
        self.langtag = langtag

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Literal):
            return (
                self.value == other.value
                and self.datatype == other.datatype
                and self.langtag == other.langtag
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((str(self.value), self.datatype, self.langtag))

    def __repr__(self) -> str:
        return f"Literal({self.value!r}, {self.datatype!r})"


def format_datetime(value: _dt.datetime) -> str:
    """Render a datetime as the ISO-8601 string PROV-JSON expects.

    Naive datetimes are interpreted as UTC, matching how the tracking layer
    records simulated timestamps.
    """
    if value.tzinfo is None:
        value = value.replace(tzinfo=_dt.timezone.utc)
    return value.isoformat().replace("+00:00", "Z")


def parse_datetime(text: str) -> _dt.datetime:
    """Parse an ISO-8601 string (accepting a trailing ``Z``)."""
    if text.endswith("Z"):
        text = text[:-1] + "+00:00"
    try:
        return _dt.datetime.fromisoformat(text)
    except ValueError as exc:
        raise SerializationError(f"invalid xsd:dateTime value: {text!r}") from exc


def value_to_json(value: Any) -> Any:
    """Convert a Python attribute value to its PROV-JSON form.

    QualifiedName-like objects (anything with a ``provjson`` method) become
    ``{"$": "pfx:name", "type": "prov:QUALIFIED_NAME"}`` so they survive a
    round trip without being confused with plain strings.
    """
    from repro.prov.identifiers import QualifiedName  # local import: avoid cycle

    if isinstance(value, Literal):
        out = {"$": _scalar_to_json(value.value), "type": value.datatype}
        if value.langtag:
            out["lang"] = value.langtag
        return out
    if isinstance(value, QualifiedName):
        return {"$": value.provjson(), "type": XSD.QNAME}
    if isinstance(value, _dt.datetime):
        return {"$": format_datetime(value), "type": XSD.DATETIME}
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            # JSON has no NaN/Inf; pin the type so readers can restore it.
            return {"$": repr(value), "type": XSD.DOUBLE}
        return value
    if isinstance(value, (int, str)):
        return value
    raise SerializationError(
        f"cannot serialize attribute value of type {type(value).__name__}: {value!r}"
    )


def _scalar_to_json(value: Any) -> Union[str, int, float, bool]:
    if isinstance(value, _dt.datetime):
        return format_datetime(value)
    if isinstance(value, (str, int, float, bool)):
        return value
    return str(value)


def value_from_json(raw: Any, registry: Any = None) -> Any:
    """Inverse of :func:`value_to_json`.

    *registry* (a :class:`~repro.prov.identifiers.NamespaceRegistry`) is used
    to resolve qualified-name literals; when omitted, qualified names stay as
    :class:`Literal` with the ``prov:QUALIFIED_NAME`` datatype.
    """
    if not isinstance(raw, dict):
        return raw
    if "$" not in raw:
        return raw
    value = raw["$"]
    datatype = raw.get("type", XSD.STRING)
    lang = raw.get("lang")
    if datatype == XSD.DATETIME:
        return parse_datetime(str(value))
    if datatype == XSD.QNAME and registry is not None:
        return registry.qname(str(value))
    if datatype == XSD.DOUBLE and isinstance(value, str):
        lowered = value.lower()
        if lowered == "nan":
            return float("nan")
        if lowered in ("inf", "infinity"):
            return float("inf")
        if lowered in ("-inf", "-infinity"):
            return float("-inf")
        return float(value)
    if datatype in (XSD.INT, XSD.LONG) and isinstance(value, str):
        return int(value)
    if datatype == XSD.BOOLEAN and isinstance(value, str):
        return value.strip().lower() == "true"
    if datatype == XSD.STRING and lang is None and isinstance(value, str):
        return value
    return Literal(value, datatype, lang)


def infer_datatype(value: Any) -> str:
    """Best-effort XSD datatype for a Python scalar (used by PROV-N output)."""
    if isinstance(value, bool):
        return XSD.BOOLEAN
    if isinstance(value, int):
        return XSD.INT
    if isinstance(value, float):
        return XSD.DOUBLE
    if isinstance(value, _dt.datetime):
        return XSD.DATETIME
    return XSD.STRING
