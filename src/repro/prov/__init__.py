"""W3C PROV substrate: data model, PROV-JSON / PROV-N serialization, graphs.

This package is a from-scratch implementation of the parts of the W3C PROV
family of standards that the yProv4ML paper relies on:

* **PROV-DM** (:mod:`repro.prov.model`, :mod:`repro.prov.document`) — the
  relational data model: entities, activities, agents and the full set of
  qualified relations (``used``, ``wasGeneratedBy``, ``wasDerivedFrom``, ...).
* **PROV-JSON** (:mod:`repro.prov.provjson`) — the interoperable JSON
  serialization used for every provenance file the library writes.
* **PROV-N** (:mod:`repro.prov.provn`) — the human-readable notation,
  writer-only, for debugging and documentation.
* **Graph export** (:mod:`repro.prov.graph`) — conversion to
  :class:`networkx.MultiDiGraph` plus lineage-closure helpers used by the
  Explorer.
* **Validation** (:mod:`repro.prov.validation`) — a pragmatic subset of
  PROV-CONSTRAINTS (referential integrity, event ordering, derivation
  acyclicity).
"""

from repro.prov.identifiers import Namespace, QualifiedName
from repro.prov.literals import Literal, XSD
from repro.prov.model import (
    PROV,
    PROV_REL_ARGS,
    ProvActivity,
    ProvAgent,
    ProvElement,
    ProvEntity,
    ProvRecord,
    ProvRelation,
)
from repro.prov.document import ProvBundle, ProvDocument
from repro.prov.provjson import from_provjson, to_provjson
from repro.prov.provn import to_provn
from repro.prov.provo import from_provo, to_provo
from repro.prov.graph import to_networkx, lineage, ancestors, descendants
from repro.prov.validation import validate_document, ValidationReport

__all__ = [
    "Namespace",
    "QualifiedName",
    "Literal",
    "XSD",
    "PROV",
    "PROV_REL_ARGS",
    "ProvRecord",
    "ProvElement",
    "ProvEntity",
    "ProvActivity",
    "ProvAgent",
    "ProvRelation",
    "ProvDocument",
    "ProvBundle",
    "to_provjson",
    "from_provjson",
    "to_provn",
    "to_provo",
    "from_provo",
    "to_networkx",
    "lineage",
    "ancestors",
    "descendants",
    "validate_document",
    "ValidationReport",
]
