"""Atomic, durable file writes — the crash-consistency primitive.

Every *final* file the library persists (PROV-JSON documents, metric-store
metadata and payloads, handle registries, RO-Crate metadata) goes through
:func:`atomic_write_bytes`: the data is written to a temporary file in the
same directory, flushed and (optionally) fsynced, then moved over the
destination with :func:`os.replace`.  ``os.replace`` is atomic on POSIX and
Windows, so a reader — or a process restarted after a crash — observes
either the complete old file or the complete new file, never a torn mix.

A best-effort fsync of the parent directory makes the rename itself durable
on POSIX filesystems; platforms that refuse to open directories (Windows)
silently skip that step.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union

PathLike = Union[str, Path]


def fsync_dir(path: PathLike) -> bool:
    """Best-effort fsync of a directory; returns whether it succeeded.

    Needed on POSIX so a rename survives power loss; harmless elsewhere.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return False
    try:
        os.fsync(fd)
        return True
    except OSError:
        return False
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes, fsync: bool = True) -> Path:
    """Write *data* to *path* atomically (temp file → fsync → ``os.replace``).

    With ``fsync=False`` the rename is still atomic (no torn files) but
    durability is left to the OS writeback — appropriate for bulk payloads
    whose integrity is separately protected by checksums.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=f".{path.name}.", suffix=".tmp",
                               dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(path.parent)
    return path


def atomic_write_text(
    path: PathLike, text: str, encoding: str = "utf-8", fsync: bool = True
) -> Path:
    """Text counterpart of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def atomic_write_json(
    path: PathLike,
    obj: Any,
    indent: Union[int, None] = None,
    sort_keys: bool = False,
    fsync: bool = True,
) -> Path:
    """Serialize *obj* as JSON and write it atomically."""
    return atomic_write_text(
        path, json.dumps(obj, indent=indent, sort_keys=sort_keys), fsync=fsync
    )
