"""NetCDF-architecture single-file container (offline substitute for netCDF4).

The file is a self-describing binary container::

    bytes 0..3    magic  b"RNC1"
    bytes 4..11   header length H (little-endian uint64)
    bytes 12..12+H  JSON header: version, series -> columns -> {dtype,
                    length, codec, offset, nbytes}, attrs
    12+H..        concatenated variable payloads (each codec-encoded)

Variable payload offsets in the header are relative to the start of the data
section, so the header can be rewritten without touching payloads only when
sizes are unchanged; in practice the store buffers series in memory and
rewrites the whole file on :meth:`flush` (provenance stores are
write-once/read-many, matching how yProv4ML emits them at ``end_run``).
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.atomicio import atomic_write_bytes
from repro.errors import StoreFormatError
from repro.storage.base import MetricStore, PathLike, SeriesData, register_format
from repro.storage.codecs import Codec, DeltaZlibCodec, ZlibCodec, get_codec

_VERSION = 1
_HEADER_STRUCT = struct.Struct("<Q")


@register_format
class NetCDFLikeStore(MetricStore):
    """Single-file store with named compressed variables."""

    format_name = "netcdflike"
    MAGIC = b"RNC1"

    def __init__(
        self,
        path: PathLike,
        codec: Any = None,
        delta_columns: Optional[List[str]] = None,
    ) -> None:
        super().__init__(path)
        self.codec: Codec = get_codec(codec) if codec is not None else ZlibCodec()
        self.delta_columns = set(
            delta_columns if delta_columns is not None else ("steps", "times")
        )
        # series buffered in memory; persisted on flush()
        self._series: Dict[str, SeriesData] = {}
        if self.path.exists() and self.path.stat().st_size > 0:
            self._series = self._load_all()

    # -- file I/O -------------------------------------------------------------
    def _load_header(self) -> Dict[str, Any]:
        file_size = self.path.stat().st_size
        with self.path.open("rb") as fh:
            magic = fh.read(4)
            if magic != self.MAGIC:
                raise StoreFormatError(f"{self.path} is not a netcdflike store")
            length_bytes = fh.read(_HEADER_STRUCT.size)
            if len(length_bytes) != _HEADER_STRUCT.size:
                raise StoreFormatError(f"{self.path}: truncated header length")
            (hlen,) = _HEADER_STRUCT.unpack(length_bytes)
            # the length is attacker-controlled input: bound it by the file
            if hlen > file_size - 4 - _HEADER_STRUCT.size:
                raise StoreFormatError(
                    f"{self.path}: header length {hlen} exceeds file size"
                )
            try:
                header = json.loads(fh.read(hlen).decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise StoreFormatError(
                    f"{self.path}: corrupt header ({exc})"
                ) from exc
        if not isinstance(header, dict) or header.get("version") != _VERSION:
            raise StoreFormatError(
                f"unsupported netcdflike version: "
                f"{header.get('version') if isinstance(header, dict) else header!r}"
            )
        return header

    def _load_all(self) -> Dict[str, SeriesData]:
        header = self._load_header()
        data_start = 4 + _HEADER_STRUCT.size + header["header_bytes"]
        out: Dict[str, SeriesData] = {}
        with self.path.open("rb") as fh:
            for name, entry in header["series"].items():
                columns: Dict[str, np.ndarray] = {}
                for cname, var in entry["columns"].items():
                    fh.seek(data_start + var["offset"])
                    payload = fh.read(var["nbytes"])
                    if len(payload) != var["nbytes"]:
                        raise StoreFormatError(
                            f"truncated variable {name}/{cname} in {self.path}"
                        )
                    codec = get_codec(var["codec"])
                    columns[cname] = codec.decode(
                        payload, np.dtype(var["dtype"]), int(var["length"])
                    )
                out[name] = SeriesData(columns, dict(entry.get("attrs", {})))
        return out

    def _column_codec(self, column: str) -> Codec:
        if column in self.delta_columns:
            level = getattr(self.codec, "level", 6)
            return DeltaZlibCodec(level=level)
        return self.codec

    def flush(self) -> None:
        """Serialize all buffered series into the container file."""
        payloads: List[bytes] = []
        series_meta: Dict[str, Any] = {}
        offset = 0
        for name in sorted(self._series):
            series = self._series[name]
            cols_meta: Dict[str, Any] = {}
            for cname in sorted(series.columns):
                arr = series.columns[cname]
                codec = self._column_codec(cname)
                blob = codec.encode(arr)
                cols_meta[cname] = {
                    "dtype": np.dtype(arr.dtype).str,
                    "length": int(arr.shape[0]),
                    "codec": codec.config(),
                    "offset": offset,
                    "nbytes": len(blob),
                }
                payloads.append(blob)
                offset += len(blob)
            series_meta[name] = {"columns": cols_meta, "attrs": dict(series.attrs)}

        header = {"version": _VERSION, "series": series_meta, "header_bytes": 0}
        # Two-pass: the header records its own encoded size so readers can
        # locate the data section; size the JSON with the final value inlined.
        encoded = json.dumps(header, separators=(",", ":")).encode("utf-8")
        # replacing 0 with the real size can change the length (more digits);
        # iterate until stable (converges in <=2 rounds).
        while True:
            header["header_bytes"] = len(encoded)
            candidate = json.dumps(header, separators=(",", ":")).encode("utf-8")
            if len(candidate) == len(encoded):
                encoded = candidate
                break
            encoded = candidate

        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Assemble the whole container in memory, then swap it in atomically:
        # readers never observe a half-written file even if flush() is killed.
        blob = b"".join(
            [self.MAGIC, _HEADER_STRUCT.pack(len(encoded)), encoded, *payloads]
        )
        atomic_write_bytes(self.path, blob)

    # -- MetricStore API ----------------------------------------------------
    def write_series(self, name: str, series: SeriesData) -> None:
        self._series[name] = series
        self.flush()

    def read_series(self, name: str) -> SeriesData:
        if name not in self._series:
            raise StoreFormatError(f"series not found: {name!r}")
        return self._series[name]

    def list_series(self) -> List[str]:
        return sorted(self._series)
