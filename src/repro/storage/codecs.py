"""Compression codecs for metric arrays.

A codec turns a 1-D NumPy array into bytes and back.  Codecs are registered
by name so store metadata can reference them portably (the same pattern Zarr
uses with numcodecs).

Implemented codecs:

* ``raw`` — no compression; the little-endian bytes of the array.
* ``zlib`` — DEFLATE over the raw bytes.
* ``delta-zlib`` — first-order delta transform, then DEFLATE.  Monotone
  series (step counters, timestamps) become near-constant after the delta,
  which DEFLATE then collapses; this is where most of Table 1's gain on
  integer columns comes from.
* ``scale-offset`` — lossy linear packing of floats into ``int16`` (the
  classic NetCDF ``scale_factor``/``add_offset`` scheme), then DEFLATE.

All transforms are vectorized; no Python-level loops over samples.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Tuple, Type

import numpy as np

from repro.errors import CodecError

_LE = "<"  # stores are always little-endian on disk


def _to_le(arr: np.ndarray) -> np.ndarray:
    """Return *arr* as a contiguous little-endian 1-D array (view if possible)."""
    arr = np.ascontiguousarray(arr)
    if arr.dtype.byteorder == ">":
        arr = arr.astype(arr.dtype.newbyteorder("<"))
    return arr


class Codec:
    """Base codec: subclasses implement :meth:`encode` / :meth:`decode`."""

    #: registry name; subclasses must override
    name: str = ""

    def encode(self, arr: np.ndarray) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes, dtype: np.dtype, length: int) -> np.ndarray:
        raise NotImplementedError

    def config(self) -> Dict[str, Any]:
        """JSON-serializable configuration (inverse of :func:`codec_from_config`)."""
        return {"id": self.name}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Codec) and self.config() == other.config()

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.config().items())))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.config()})"


class RawCodec(Codec):
    """Identity codec — raw little-endian bytes."""

    name = "raw"

    def encode(self, arr: np.ndarray) -> bytes:
        return _to_le(arr).tobytes()

    def decode(self, data: bytes, dtype: np.dtype, length: int) -> np.ndarray:
        out = np.frombuffer(data, dtype=np.dtype(dtype).newbyteorder("<"), count=length)
        return out.astype(dtype, copy=False)


class ZlibCodec(Codec):
    """DEFLATE compression of the raw bytes."""

    name = "zlib"

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise CodecError(f"zlib level must be in [0, 9], got {level}")
        self.level = level

    def encode(self, arr: np.ndarray) -> bytes:
        return zlib.compress(_to_le(arr).tobytes(), self.level)

    def decode(self, data: bytes, dtype: np.dtype, length: int) -> np.ndarray:
        """DEFLATE-decompress and reinterpret as the requested dtype."""
        try:
            raw = zlib.decompress(data)
        except zlib.error as exc:
            raise CodecError(f"zlib decompression failed: {exc}") from exc
        out = np.frombuffer(raw, dtype=np.dtype(dtype).newbyteorder("<"), count=length)
        return out.astype(dtype, copy=False)

    def config(self) -> Dict[str, Any]:
        return {"id": self.name, "level": self.level}


class DeltaZlibCodec(Codec):
    """First-order delta transform + DEFLATE, lossless for every dtype.

    The delta is taken on the *raw bit pattern* (the array viewed as
    unsigned integers of the same width, with wraparound subtraction), so
    decoding via wrapping cumulative sum restores the exact original bytes —
    including floats, NaNs and infinities.  For monotone series (step
    counters, timestamps) consecutive bit patterns are close, the deltas are
    tiny, and DEFLATE collapses them; this is where most of Table 1's gain
    on integer/time columns comes from.
    """

    name = "delta-zlib"

    _UINT_BY_ITEMSIZE = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise CodecError(f"zlib level must be in [0, 9], got {level}")
        self.level = level

    def _uint_dtype(self, dtype: np.dtype) -> np.dtype:
        itemsize = np.dtype(dtype).itemsize
        uint = self._UINT_BY_ITEMSIZE.get(itemsize)
        if uint is None:
            raise CodecError(f"delta-zlib does not support itemsize {itemsize}")
        return np.dtype(uint).newbyteorder("<")

    def encode(self, arr: np.ndarray) -> bytes:
        """Invert the bit-pattern delta via wrapping cumulative sum, exactly."""
        """Delta the raw bit pattern (uint wraparound), then DEFLATE."""
        arr = _to_le(arr)
        bits = arr.view(self._uint_dtype(arr.dtype))
        if bits.size == 0:
            delta = bits
        else:
            delta = np.empty_like(bits)
            delta[0] = bits[0]
            np.subtract(bits[1:], bits[:-1], out=delta[1:])  # uint wraparound
        return zlib.compress(delta.tobytes(), self.level)

    def decode(self, data: bytes, dtype: np.dtype, length: int) -> np.ndarray:
        """Invert the bit-pattern delta via wrapping cumulative sum, exactly."""
        try:
            raw = zlib.decompress(data)
        except zlib.error as exc:
            raise CodecError(f"zlib decompression failed: {exc}") from exc
        dtype = np.dtype(dtype)
        uint = self._uint_dtype(dtype)
        delta = np.frombuffer(raw, dtype=uint, count=length)
        if delta.size == 0:
            return delta.view(dtype.newbyteorder("<")).astype(dtype, copy=False)
        bits = np.cumsum(delta, dtype=uint)  # wrapping sum undoes the delta
        out = bits.view(dtype.newbyteorder("<"))
        return out.astype(dtype, copy=False)

    def config(self) -> Dict[str, Any]:
        return {"id": self.name, "level": self.level}


class ScaleOffsetCodec(Codec):
    """Lossy linear packing of floats into int16 + DEFLATE.

    ``packed = round((x - offset) / scale)`` with scale/offset chosen per
    buffer from the data range.  NaNs are mapped to the int16 sentinel
    ``-32768`` and restored on decode.  Maximum absolute error is
    ``scale / 2`` (i.e. range / 2^16 per chunk).
    """

    name = "scale-offset"
    _SENTINEL = np.int16(-32768)

    def __init__(self, level: int = 6) -> None:
        """Pack floats into int16 with per-buffer scale/offset, then DEFLATE."""
        self.level = level

    def encode(self, arr: np.ndarray) -> bytes:
        """Unpack int16 data back to floats, restoring NaN sentinels."""
        arr = np.asarray(arr, dtype=np.float64)
        finite = np.isfinite(arr)
        if not finite.any():
            lo, hi = 0.0, 0.0
        else:
            lo = float(arr[finite].min())
            hi = float(arr[finite].max())
        scale = (hi - lo) / 65000.0 if hi > lo else 1.0
        if scale == 0.0:  # subnormal range: the division underflowed to zero
            scale = 1.0
        packed = np.full(arr.shape, self._SENTINEL, dtype=np.int16)
        if finite.any():
            quant = np.rint((arr[finite] - lo) / scale) - 32500
            packed[finite] = quant.astype(np.int16)
        header = np.array([lo, scale], dtype="<f8").tobytes()
        return header + zlib.compress(packed.astype("<i2").tobytes(), self.level)

    def decode(self, data: bytes, dtype: np.dtype, length: int) -> np.ndarray:
        """Unpack int16 data back to floats, restoring NaN sentinels."""
        if len(data) < 16:
            raise CodecError("scale-offset payload too short")
        lo, scale = np.frombuffer(data[:16], dtype="<f8")
        packed = np.frombuffer(zlib.decompress(data[16:]), dtype="<i2", count=length)
        out = (packed.astype(np.float64) + 32500.0) * scale + lo
        out[packed == self._SENTINEL] = np.nan
        return out.astype(dtype, copy=False)

    def config(self) -> Dict[str, Any]:
        return {"id": self.name, "level": self.level}


_REGISTRY: Dict[str, Type[Codec]] = {}


def register_codec(cls: Type[Codec]) -> Type[Codec]:
    """Register a codec class under ``cls.name`` (usable as a decorator)."""
    if not cls.name:
        raise CodecError("codec class must define a non-empty name")
    _REGISTRY[cls.name] = cls
    return cls


for _cls in (RawCodec, ZlibCodec, DeltaZlibCodec, ScaleOffsetCodec):
    register_codec(_cls)


def get_codec(config: Any) -> Codec:
    """Instantiate a codec from a name string or a ``config()`` dict."""
    if isinstance(config, Codec):
        return config
    if isinstance(config, str):
        config = {"id": config}
    if not isinstance(config, dict) or "id" not in config:
        raise CodecError(f"invalid codec config: {config!r}")
    name = config["id"]
    cls = _REGISTRY.get(name)
    if cls is None:
        raise CodecError(f"unknown codec: {name!r}")
    kwargs = {k: v for k, v in config.items() if k != "id"}
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise CodecError(f"bad arguments for codec {name!r}: {kwargs}") from exc
