"""Store conversion and the Table 1 size report.

:func:`convert_store` copies every series from one backend to another —
the operation the paper describes as "Converted_to.zarr" /
"Converted_to.nc".  :func:`size_report` measures normal and gzip-compressed
sizes for a set of stores and formats them like Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.storage.base import MetricStore


def convert_store(source: MetricStore, target: MetricStore) -> int:
    """Copy all series from *source* into *target*; returns series count."""
    count = 0
    for name in source.list_series():
        target.write_series(name, source.read_series(name))
        count += 1
    target.flush()
    return count


@dataclass
class SizeRow:
    """One row of the Table 1 report."""

    label: str
    normal_bytes: int
    compressed_bytes: int

    @property
    def normal_mb(self) -> float:
        return self.normal_bytes / 1e6

    @property
    def compressed_mb(self) -> float:
        return self.compressed_bytes / 1e6


def size_report(stores: Sequence[Tuple[str, MetricStore]]) -> List[SizeRow]:
    """Measure each (label, store) pair; order preserved."""
    rows: List[SizeRow] = []
    for label, store in stores:
        rows.append(
            SizeRow(
                label=label,
                normal_bytes=store.size_bytes(),
                compressed_bytes=store.compressed_size_bytes(),
            )
        )
    return rows


def format_size_table(rows: Sequence[SizeRow]) -> str:
    """Render rows in the paper's Table 1 layout."""
    lines = [
        f"{'File':<24} {'Normal Size':>12} {'Compressed Size':>16}",
        "-" * 54,
    ]
    for row in rows:
        lines.append(
            f"{row.label:<24} {row.normal_mb:>9.2f} MB {row.compressed_mb:>13.2f} MB"
        )
    return "\n".join(lines)


def gains_vs_baseline(rows: Sequence[SizeRow]) -> Dict[str, float]:
    """Size gain of every non-first row vs. the first (baseline) row."""
    if not rows:
        return {}
    base = rows[0].normal_bytes
    return {
        row.label: 1.0 - row.normal_bytes / base
        for row in rows[1:]
        if base > 0
    }
