"""Inline-JSON metric store — the Table 1 baseline.

Every sample is written as JSON text, exactly the way a monolithic
PROV-JSON provenance file inlines metric time-series.  This is deliberately
the *inefficient* representation the paper measures against: a float64 costs
~18 text bytes plus separators instead of 8 binary bytes, and repeated
structure (column names) is duplicated per series.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

import numpy as np

from repro.atomicio import atomic_write_text
from repro.errors import StoreFormatError
from repro.storage.base import MetricStore, PathLike, SeriesData, register_format

_VERSION = 1

_DTYPE_TAGS = {
    "f8": np.float64, "f4": np.float32,
    "i8": np.int64, "i4": np.int32, "u8": np.uint64, "u4": np.uint32,
    "b1": np.bool_,
}


def _dtype_tag(dtype: np.dtype) -> str:
    tag = np.dtype(dtype).str.lstrip("<>=|")
    if tag not in _DTYPE_TAGS:
        raise StoreFormatError(f"unsupported column dtype: {dtype}")
    return tag


@register_format
class JsonMetricStore(MetricStore):
    """A single ``.json`` file holding all series as JSON arrays of numbers."""

    format_name = "json"

    def __init__(self, path: PathLike) -> None:
        super().__init__(path)
        self._cache: Dict[str, Any] = self._load() if self.path.exists() else {
            "format": self.format_name,
            "version": _VERSION,
            "series": {},
        }

    def _load(self) -> Dict[str, Any]:
        try:
            doc = json.loads(self.path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError) as exc:
            raise StoreFormatError(f"cannot read json store {self.path}: {exc}") from exc
        if doc.get("format") != self.format_name:
            raise StoreFormatError(f"{self.path} is not a json metric store")
        if doc.get("version") != _VERSION:
            raise StoreFormatError(f"unsupported json store version: {doc.get('version')}")
        return doc

    def _save(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic replace: a crash mid-save leaves the previous complete file.
        atomic_write_text(self.path, json.dumps(self._cache, indent=1))

    # -- MetricStore API ----------------------------------------------------
    def write_series(self, name: str, series: SeriesData) -> None:
        cols: Dict[str, Any] = {}
        for cname, arr in series.columns.items():
            tag = _dtype_tag(arr.dtype)
            if arr.dtype.kind == "f":
                # JSON has no NaN/Inf: encode them as strings in-place.
                values: List[Any] = [
                    float(v) if np.isfinite(v) else repr(float(v)) for v in arr
                ]
            elif arr.dtype.kind == "b":
                values = [bool(v) for v in arr]
            else:
                values = [int(v) for v in arr]
            cols[cname] = {"dtype": tag, "data": values}
        self._cache["series"][name] = {"columns": cols, "attrs": dict(series.attrs)}
        self._save()

    def read_series(self, name: str) -> SeriesData:
        entry = self._cache["series"].get(name)
        if entry is None:
            raise StoreFormatError(f"series not found: {name!r}")
        columns: Dict[str, np.ndarray] = {}
        for cname, col in entry["columns"].items():
            dtype = _DTYPE_TAGS[col["dtype"]]
            raw = col["data"]
            if np.dtype(dtype).kind == "f":
                raw = [float(v) for v in raw]  # handles "nan"/"inf" strings
            columns[cname] = np.asarray(raw, dtype=dtype)
        return SeriesData(columns, dict(entry.get("attrs", {})))

    def list_series(self) -> List[str]:
        return sorted(self._cache["series"])

    def flush(self) -> None:
        self._save()
