"""Common interface for metric stores.

A *metric store* persists named series.  Each series holds a set of parallel
1-D arrays (columns) of equal length — typically ``values`` (float64),
``steps`` (int64) and ``times`` (float64 seconds) — plus a small attribute
dict (context name, metric name, units...).

Stores also expose size accounting (:meth:`MetricStore.size_bytes` and
:meth:`MetricStore.compressed_size_bytes`), which is exactly what the
Table 1 benchmark measures: the "Normal Size" column is bytes on disk and
the "Compressed Size" column is the gzip of the whole store.
"""

from __future__ import annotations

import gzip
import io
import json
import tarfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

import numpy as np

from repro.errors import StorageError, StoreFormatError

PathLike = Union[str, Path]


@dataclass
class SeriesData:
    """One named series: parallel columns + attributes.

    All columns must be 1-D and share the same length.
    """

    columns: Dict[str, np.ndarray]
    attrs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {name: arr.shape for name, arr in self.columns.items()}
        sizes = set()
        for name, arr in self.columns.items():
            arr = np.asarray(arr)
            if arr.ndim != 1:
                raise StorageError(f"column {name!r} must be 1-D, got shape {arr.shape}")
            self.columns[name] = arr
            sizes.add(arr.shape[0])
        if len(sizes) > 1:
            raise StorageError(f"columns have mismatched lengths: {lengths}")

    def __len__(self) -> int:
        for arr in self.columns.values():
            return int(arr.shape[0])
        return 0

    def equals(self, other: "SeriesData", exact: bool = True) -> bool:
        """Column-wise comparison; ``exact=False`` allows float tolerance."""
        if set(self.columns) != set(other.columns):
            return False
        for name, arr in self.columns.items():
            brr = other.columns[name]
            if arr.shape != brr.shape:
                return False
            if exact:
                if not np.array_equal(arr, brr, equal_nan=True):
                    return False
            else:
                if not np.allclose(arr, brr, rtol=1e-3, atol=1e-6, equal_nan=True):
                    return False
        return True


class MetricStore:
    """Abstract metric store.  Concrete backends implement the I/O methods."""

    #: registry name of the backend ("json", "zarrlike", "netcdflike")
    format_name: str = ""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)

    # -- backend API -------------------------------------------------------
    def write_series(self, name: str, series: SeriesData) -> None:
        """Persist *series* under *name* (replacing any existing series)."""
        raise NotImplementedError

    def read_series(self, name: str) -> SeriesData:
        """Load the series stored under *name*."""
        raise NotImplementedError

    def list_series(self) -> List[str]:
        """Sorted names of all stored series."""
        raise NotImplementedError

    def flush(self) -> None:
        """Ensure everything is on disk (no-op for eager backends)."""

    # -- generic helpers -----------------------------------------------------
    def write_all(self, series: Mapping[str, SeriesData]) -> None:
        for name, data in series.items():
            self.write_series(name, data)
        self.flush()

    def read_all(self, errors: str = "raise") -> Dict[str, SeriesData]:
        """Load every stored series.

        ``errors="raise"`` (default) propagates the first read failure;
        ``errors="skip"`` degrades gracefully — corrupt/unreadable series are
        dropped from the result and collected in :attr:`last_read_issues`, so
        one torn chunk cannot take down the rest of the run's metrics.
        """
        if errors not in ("raise", "skip"):
            raise StorageError(f"errors must be 'raise' or 'skip', got {errors!r}")
        self.last_read_issues: List[str] = []
        out: Dict[str, SeriesData] = {}
        for name in self.list_series():
            try:
                out[name] = self.read_series(name)
            except (StoreFormatError, OSError) as exc:
                if errors == "raise":
                    raise
                self.last_read_issues.append(f"{name}: {type(exc).__name__}: {exc}")
        return out

    def __contains__(self, name: str) -> bool:
        return name in self.list_series()

    def __iter__(self) -> Iterator[str]:
        return iter(self.list_series())

    # -- size accounting -----------------------------------------------------
    def _iter_files(self) -> Iterator[Path]:
        if self.path.is_file():
            yield self.path
        elif self.path.is_dir():
            yield from sorted(p for p in self.path.rglob("*") if p.is_file())

    def size_bytes(self) -> int:
        """Total bytes of the store on disk ("Normal Size" in Table 1)."""
        return sum(p.stat().st_size for p in self._iter_files())

    def compressed_size_bytes(self, level: int = 6) -> int:
        """Size of the whole store gzipped ("Compressed Size" in Table 1).

        A single-file store is gzipped directly; a directory store is packed
        into an uncompressed tar first (mirroring how users would ship it),
        then gzipped.
        """
        if self.path.is_file():
            data = self.path.read_bytes()
            return len(gzip.compress(data, compresslevel=level))
        buf = io.BytesIO()
        with tarfile.open(fileobj=buf, mode="w") as tar:  # lint: disable=SL201 -- writes to an in-memory buffer, nothing touches disk
            for p in self._iter_files():
                tar.add(p, arcname=str(p.relative_to(self.path)))
        return len(gzip.compress(buf.getvalue(), compresslevel=level))


def store_gain(baseline: MetricStore, candidate: MetricStore) -> float:
    """Fractional size reduction of *candidate* relative to *baseline*.

    ``0.9`` means the candidate is 90 % smaller — the paper's ">90 % on
    average" claim is this number for the zarr/nc stores vs inline JSON.
    """
    base = baseline.size_bytes()
    if base == 0:
        raise StorageError("baseline store is empty")
    return 1.0 - candidate.size_bytes() / base


_FORMATS: Dict[str, type] = {}


def register_format(cls: type) -> type:
    """Register a MetricStore subclass under its ``format_name``."""
    _FORMATS[cls.format_name] = cls
    return cls


def open_store(path: PathLike, fmt: Optional[str] = None, **kwargs: Any) -> MetricStore:
    """Open (or create) a metric store.

    When *fmt* is omitted it is sniffed: an existing ``.json`` file or a file
    starting with the NetCDF-like magic is recognised; a directory containing
    ``.zgroup`` is a zarr-like store; otherwise the file suffix decides
    (``.json`` / ``.nc`` / anything else → zarr-like directory).
    """
    from repro.storage.jsonstore import JsonMetricStore
    from repro.storage.netcdflike import NetCDFLikeStore
    from repro.storage.zarrlike import ZarrLikeStore

    path = Path(path)
    if fmt is None:
        if path.is_dir() and (path / ".zgroup").exists():
            fmt = "zarrlike"
        elif path.is_file():
            with path.open("rb") as fh:
                head = fh.read(4)
            if head == NetCDFLikeStore.MAGIC:
                fmt = "netcdflike"
            else:
                fmt = "json"
        elif path.suffix == ".json":
            fmt = "json"
        elif path.suffix == ".nc":
            fmt = "netcdflike"
        else:
            fmt = "zarrlike"
    cls = _FORMATS.get(fmt)
    if cls is None:
        raise StoreFormatError(f"unknown store format: {fmt!r}")
    return cls(path, **kwargs)
