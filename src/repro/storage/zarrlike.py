"""Zarr-architecture chunked array store (offline substitute for ``zarr``).

Layout on disk::

    store/
      .zgroup                      {"store_format": "repro-zarrlike", ...}
      <series>/.zattrs             series attribute dict (JSON)
      <series>/<column>/.zarray    {"length", "chunks", "dtype", "codec"}
      <series>/<column>/0          compressed chunk 0
      <series>/<column>/1          compressed chunk 1 ...

Series and column names are percent-encoded into single path segments, so
arbitrary metric names (``loss/TRAINING``) are safe.  Chunking and codecs
follow the Zarr v2 design; the default codec is ``zlib`` and callers can pick
``delta-zlib`` for monotone columns.
"""

from __future__ import annotations

import json
import shutil
import urllib.parse
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.atomicio import atomic_write_bytes, atomic_write_text
from repro.errors import ChecksumError, StoreFormatError
from repro.storage.base import MetricStore, PathLike, SeriesData, register_format
from repro.storage.codecs import Codec, DeltaZlibCodec, ZlibCodec, get_codec

_VERSION = 1
_DEFAULT_CHUNK = 16384


def _quote(name: str) -> str:
    return urllib.parse.quote(name, safe="")


def _unquote(segment: str) -> str:
    return urllib.parse.unquote(segment)


@register_format
class ZarrLikeStore(MetricStore):
    """Directory store with per-chunk compression and JSON metadata."""

    format_name = "zarrlike"

    def __init__(
        self,
        path: PathLike,
        chunk_size: int = _DEFAULT_CHUNK,
        codec: Any = None,
        delta_columns: Optional[List[str]] = None,
    ) -> None:
        """Create/open a store at *path*.

        ``codec`` is the default codec for all columns (``zlib`` level 6 when
        omitted).  Columns named in ``delta_columns`` (default: ``steps``,
        ``times`` — the monotone ones) use ``delta-zlib`` instead.
        """
        super().__init__(path)
        if chunk_size <= 0:
            raise StoreFormatError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = int(chunk_size)
        self.codec: Codec = get_codec(codec) if codec is not None else ZlibCodec()
        self.delta_columns = set(
            delta_columns if delta_columns is not None else ("steps", "times")
        )
        self.path.mkdir(parents=True, exist_ok=True)
        marker = self.path / ".zgroup"
        if marker.exists():
            meta = json.loads(marker.read_text(encoding="utf-8"))
            if meta.get("store_format") != "repro-zarrlike":
                raise StoreFormatError(f"{self.path} is not a zarrlike store")
            if meta.get("version") != _VERSION:
                raise StoreFormatError(f"unsupported zarrlike version {meta.get('version')}")
        else:
            atomic_write_text(
                marker,
                json.dumps({"store_format": "repro-zarrlike", "version": _VERSION}),
            )

    # -- internals -----------------------------------------------------------
    def _series_dir(self, name: str) -> Path:
        return self.path / _quote(name)

    def _column_codec(self, column: str) -> Codec:
        if column in self.delta_columns:
            level = getattr(self.codec, "level", 6)
            return DeltaZlibCodec(level=level)
        return self.codec

    def _write_column(self, cdir: Path, arr: np.ndarray, codec: Codec) -> None:
        cdir.mkdir(parents=True, exist_ok=True)
        n = int(arr.shape[0])
        n_chunks = max(1, -(-n // self.chunk_size))
        checksums: List[int] = []
        for i in range(n_chunks):
            chunk = arr[i * self.chunk_size : (i + 1) * self.chunk_size]
            payload = codec.encode(chunk)
            checksums.append(zlib.crc32(payload))
            # Chunk integrity is guarded by the checksum in .zarray, so a
            # per-chunk fsync would only cost write latency.
            atomic_write_bytes(cdir / str(i), payload, fsync=False)
        meta = {
            "length": n,
            "chunks": self.chunk_size,
            "dtype": np.dtype(arr.dtype).str,
            "codec": codec.config(),
            "n_chunks": n_chunks,
            "checksums": checksums,
        }
        # Metadata written (durably) last: it references only complete chunks.
        atomic_write_text(cdir / ".zarray", json.dumps(meta))

    def _chunk_payload(self, cdir: Path, meta: Dict[str, Any], i: int) -> bytes:
        """Read chunk *i*'s bytes and verify its recorded crc32 (if present)."""
        chunk_path = cdir / str(i)
        try:
            payload = chunk_path.read_bytes()
        except OSError as exc:
            raise StoreFormatError(f"missing chunk: {chunk_path}") from exc
        checksums = meta.get("checksums")
        if checksums is not None and i < len(checksums):
            if zlib.crc32(payload) != int(checksums[i]):
                raise ChecksumError(
                    f"chunk {chunk_path} failed its crc32 check (torn/corrupt write)"
                )
        return payload

    def _read_column(self, cdir: Path) -> np.ndarray:
        meta_path = cdir / ".zarray"
        if not meta_path.exists():
            raise StoreFormatError(f"missing column metadata: {meta_path}")
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        dtype = np.dtype(meta["dtype"])
        codec = get_codec(meta["codec"])
        length = int(meta["length"])
        chunk_size = int(meta["chunks"])
        n_chunks = int(meta["n_chunks"])
        out = np.empty(length, dtype=dtype)
        pos = 0
        for i in range(n_chunks):
            payload = self._chunk_payload(cdir, meta, i)
            want = min(chunk_size, length - pos) if length else 0
            chunk = codec.decode(payload, dtype, want)
            out[pos : pos + chunk.shape[0]] = chunk
            pos += chunk.shape[0]
        if pos != length:
            raise StoreFormatError(
                f"column {cdir} truncated: expected {length} values, read {pos}"
            )
        return out

    # -- MetricStore API ----------------------------------------------------
    def write_series(self, name: str, series: SeriesData) -> None:
        sdir = self._series_dir(name)
        if sdir.exists():
            shutil.rmtree(sdir)
        sdir.mkdir(parents=True)
        atomic_write_text(sdir / ".zattrs", json.dumps(dict(series.attrs)))
        for cname, arr in series.columns.items():
            self._write_column(sdir / _quote(cname), arr, self._column_codec(cname))

    def read_series(self, name: str) -> SeriesData:
        sdir = self._series_dir(name)
        if not sdir.is_dir():
            raise StoreFormatError(f"series not found: {name!r}")
        attrs_path = sdir / ".zattrs"
        attrs = (
            json.loads(attrs_path.read_text(encoding="utf-8")) if attrs_path.exists() else {}
        )
        columns: Dict[str, np.ndarray] = {}
        for cdir in sorted(p for p in sdir.iterdir() if p.is_dir()):
            columns[_unquote(cdir.name)] = self._read_column(cdir)
        return SeriesData(columns, attrs)

    def list_series(self) -> List[str]:
        if not self.path.is_dir():
            return []
        return sorted(
            _unquote(p.name) for p in self.path.iterdir() if p.is_dir()
        )

    # -- partial access (the chunked layout's raison d'être) ------------------
    def series_length(self, name: str) -> int:
        """Sample count of a series without reading any chunk payloads."""
        sdir = self._series_dir(name)
        if not sdir.is_dir():
            raise StoreFormatError(f"series not found: {name!r}")
        for cdir in sorted(p for p in sdir.iterdir() if p.is_dir()):
            meta = json.loads((cdir / ".zarray").read_text(encoding="utf-8"))
            return int(meta["length"])
        return 0

    def read_column_slice(
        self, name: str, column: str, start: int, stop: int
    ) -> np.ndarray:
        """Read ``[start, stop)`` of one column, touching only the chunks
        that overlap the range (O(range) I/O, not O(series))."""
        if start < 0 or stop < start:
            raise StoreFormatError(f"invalid slice [{start}, {stop})")
        cdir = self._series_dir(name) / _quote(column)
        meta_path = cdir / ".zarray"
        if not meta_path.exists():
            raise StoreFormatError(f"column not found: {name}/{column}")
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        dtype = np.dtype(meta["dtype"])
        codec = get_codec(meta["codec"])
        length = int(meta["length"])
        chunk_size = int(meta["chunks"])
        stop = min(stop, length)
        if start >= stop:
            return np.empty(0, dtype=dtype)
        first = start // chunk_size
        last = (stop - 1) // chunk_size
        parts: List[np.ndarray] = []
        for i in range(first, last + 1):
            chunk_start = i * chunk_size
            want = min(chunk_size, length - chunk_start)
            chunk = codec.decode(self._chunk_payload(cdir, meta, i), dtype, want)
            lo = max(start - chunk_start, 0)
            hi = min(stop - chunk_start, want)
            parts.append(chunk[lo:hi])
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def verify_integrity(self) -> List[str]:
        """Check every chunk's crc32 against its column metadata.

        Returns human-readable issue strings (empty list = store intact);
        never raises, so it is safe to run on a damaged store.
        """
        issues: List[str] = []
        for series in self.list_series():
            sdir = self._series_dir(series)
            for cdir in sorted(p for p in sdir.iterdir() if p.is_dir()):
                meta_path = cdir / ".zarray"
                try:
                    meta = json.loads(meta_path.read_text(encoding="utf-8"))
                except (OSError, ValueError) as exc:
                    issues.append(f"{series}/{_unquote(cdir.name)}: bad metadata ({exc})")
                    continue
                for i in range(int(meta.get("n_chunks", 0))):
                    try:
                        self._chunk_payload(cdir, meta, i)
                    except StoreFormatError as exc:
                        issues.append(
                            f"{series}/{_unquote(cdir.name)}/{i}: {exc}"
                        )
        return issues
