"""Metric storage backends for provenance offloading.

The paper's Table 1 compares a monolithic PROV-JSON file (metric samples
inlined as JSON text) against offloading the numeric time-series into
chunked/compressed array containers (Zarr, NetCDF).  Neither ``zarr`` nor
``netCDF4`` is available offline, so this package implements the same storage
*architectures* from scratch:

* :mod:`repro.storage.jsonstore` — inline JSON text (the baseline);
* :mod:`repro.storage.zarrlike` — a directory of per-chunk compressed binary
  files with JSON array metadata (Zarr architecture);
* :mod:`repro.storage.netcdflike` — a single self-describing binary container
  with named variables and attributes (NetCDF architecture);
* :mod:`repro.storage.codecs` — the compression layer (raw / zlib /
  delta+zlib / scale-offset packing).

All backends share the :class:`repro.storage.base.MetricStore` interface and
round-trip byte-exactly (except the explicitly lossy scale-offset codec).
"""

from repro.storage.base import MetricStore, SeriesData, open_store, store_gain
from repro.storage.codecs import (
    Codec,
    DeltaZlibCodec,
    RawCodec,
    ScaleOffsetCodec,
    ZlibCodec,
    get_codec,
    register_codec,
)
from repro.storage.jsonstore import JsonMetricStore
from repro.storage.zarrlike import ZarrLikeStore
from repro.storage.netcdflike import NetCDFLikeStore
from repro.storage.convert import convert_store, size_report

__all__ = [
    "MetricStore",
    "SeriesData",
    "open_store",
    "store_gain",
    "Codec",
    "RawCodec",
    "ZlibCodec",
    "DeltaZlibCodec",
    "ScaleOffsetCodec",
    "get_codec",
    "register_codec",
    "JsonMetricStore",
    "ZarrLikeStore",
    "NetCDFLikeStore",
    "convert_store",
    "size_report",
]
