"""Fault-tolerant job fleet: durable queue, fair-share scheduler, workers.

The fleet is the platform's answer to ROADMAP item 4 (the MORF
direction): many tenants submit workflow jobs concurrently, and the
system must survive a SIGKILL of any participant with zero acked-job
loss.  It is deliberately *composed* from robustness machinery the
repository already trusts:

- :mod:`repro.fleet.queue` journals every job transition to a
  crc-checked WAL (the :mod:`repro.core.journal` wire format) with
  fsync-before-ack, so a submission the caller saw acknowledged is
  durable by construction.
- :mod:`repro.fleet.scheduler` dispatches fairly across tenants
  (deficit round-robin over configurable weights) and bounds the queue
  with admission control mirroring the REST tier's ``TenantQuotas``.
- :mod:`repro.fleet.worker` executes each job through the durable
  workflow engine (:meth:`repro.workflow.dag.Workflow.resume`) under a
  heartbeat-renewed lease, so a crashed worker's successor *resumes*
  the job's journal instead of re-executing completed tasks.
- :mod:`repro.fleet.provenance` turns every attempt into PROV
  activities so PROVQL can answer "which jobs burned the most retries
  and why".
- :mod:`repro.fleet.manager` binds the pieces into the object the REST
  tier serves.
"""

from repro.fleet.manager import FleetManager
from repro.fleet.queue import (
    FLEET_QUEUE_NAME,
    FleetQueue,
    Job,
    JobLease,
    JobState,
    replay_queue,
)
from repro.fleet.scheduler import AdmissionControl, FairShareScheduler
from repro.fleet.worker import FleetWorker, JobContext, RemoteQueue

__all__ = [
    "AdmissionControl",
    "FLEET_QUEUE_NAME",
    "FairShareScheduler",
    "FleetManager",
    "FleetQueue",
    "FleetWorker",
    "Job",
    "JobContext",
    "JobLease",
    "JobState",
    "RemoteQueue",
    "replay_queue",
]
