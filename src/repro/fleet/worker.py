"""Lease-based fleet worker: runs jobs through the durable workflow engine.

A worker's contract with the queue is a *lease*: it may run a job only
while it holds the current lease, renewed by a background heartbeat at
a third of the lease duration.  Everything else follows from crashes:

- A worker that dies silently stops renewing; the queue reclaims the
  expired lease and offers the job to a successor.
- The successor runs the job with :meth:`Workflow.resume
  <repro.workflow.dag.Workflow.resume>` over the *same* per-job state
  directory, so tasks whose results reached the workflow journal are
  replayed, never re-executed.
- A worker that was merely *suspected* dead (network partition, long
  GC pause) finds its renew/complete fenced out with
  :class:`~repro.errors.LeaseExpiredError` and abandons the attempt —
  it cannot double-report a job another worker now owns.  Job code can
  call :meth:`JobContext.check_lease` before committing non-resumable
  side effects to get the same fencing mid-run.

The worker talks to anything that quacks like a queue
(``lease``/``renew``/``complete``/``fail``): the in-process
:class:`~repro.fleet.queue.FleetQueue` in tests, or
:class:`RemoteQueue` — a thin adapter over the resilient
``ProvenanceClient`` job verbs — when the scheduler runs in another
process.
"""

from __future__ import annotations

import os
import threading
import time as _time
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Union

from repro.errors import (
    FleetError,
    JobNotFoundError,
    JobStateError,
    LeaseExpiredError,
    ReproError,
)
from repro.fleet.queue import JobLease
from repro.workflow.loader import load_workflow_file

__all__ = ["FleetWorker", "JobContext", "RemoteQueue", "workflow_runner"]

#: A runner executes one leased job and returns its JSON-able result.
Runner = Callable[[JobLease, "JobContext"], Optional[Mapping[str, Any]]]


class JobContext:
    """What a runner sees while executing one leased attempt."""

    def __init__(self, lease: JobLease,
                 clock: Callable[[], float] = _time.time) -> None:
        self.lease = lease
        self.clock = clock
        self._lost = threading.Event()

    @property
    def lease_lost(self) -> bool:
        """True once the lease was fenced out (renewal failed terminally)."""
        return self._lost.is_set()

    def mark_lost(self) -> None:
        """Record that the lease is gone (called by the renewal thread)."""
        self._lost.set()

    def check_lease(self) -> None:
        """Raise :class:`~repro.errors.LeaseExpiredError` if the lease is gone.

        Job code should call this immediately before committing a
        non-resumable side effect: a worker that was suspected dead and
        then revived learns here — not after the damage — that another
        worker now owns the job.
        """
        if self._lost.is_set():
            raise LeaseExpiredError(
                f"job {self.lease.job_id!r}: lease lost "
                f"(worker {self.lease.worker!r}, attempt {self.lease.attempt})")


class RemoteQueue:
    """Queue facade over the ``ProvenanceClient`` job verbs.

    Lets :class:`FleetWorker` run against a scheduler in another process:
    the client maps the coded REST errors back to the same typed fleet
    exceptions the in-process queue raises, so the worker cannot tell
    the difference.
    """

    def __init__(self, client: Any) -> None:
        self.client = client

    def lease(self, worker_id: str,
              now: Optional[float] = None) -> Optional[JobLease]:
        """Request the next fair-share job; ``None`` when nothing is ready."""
        payload = self.client.lease_job(worker_id)
        if not payload:
            return None
        return JobLease.from_payload(payload)

    def renew(self, job_id: str, worker_id: str, attempt: int,
              now: Optional[float] = None) -> float:
        """Extend the held lease; returns the new expiry timestamp."""
        payload = self.client.renew_job(job_id, worker_id, attempt)
        return float(payload.get("expires") or 0.0)

    def complete(self, job_id: str, worker_id: str, attempt: int,
                 result: Optional[Mapping[str, Any]] = None,
                 now: Optional[float] = None) -> None:
        """Report success for the held lease."""
        self.client.complete_job(job_id, worker_id, attempt, result=result)

    def fail(self, job_id: str, worker_id: str, attempt: int, error: str,
             now: Optional[float] = None) -> None:
        """Report a clean failure for the held lease."""
        self.client.fail_job(job_id, worker_id, attempt, error)


def workflow_runner(
    state_root: Union[str, Path],
    clock: Optional[Callable[[], float]] = None,
    sleep: Optional[Callable[[float], None]] = None,
    heartbeat_interval_s: Optional[float] = 1.0,
) -> Runner:
    """The default runner: execute the job's workflow file durably.

    The job spec names a workflow definition file (``workflow_file``, a
    module exposing ``build_workflow()``) plus optional ``inputs``,
    ``max_workers`` and ``quarantine_after``.  Each job owns the state
    directory ``<state_root>/<job_id>``; the runner always *resumes* it,
    which runs fresh on a first attempt and replays completed tasks on
    any retry — a crashed predecessor's work is never re-executed.
    """
    root = Path(state_root)

    def run(lease: JobLease, ctx: JobContext) -> Dict[str, Any]:
        """Execute one leased attempt of a workflow job."""
        spec = lease.spec
        wf_file = spec.get("workflow_file")
        if not wf_file:
            raise FleetError(
                f"job {lease.job_id!r}: spec has no 'workflow_file'")
        workflow = load_workflow_file(wf_file)
        state_dir = root / lease.job_id
        result = workflow.resume(
            state_dir,
            clock=clock,
            sleep=sleep,
            inputs=spec.get("inputs") or None,
            max_workers=int(spec.get("max_workers") or 1),
            quarantine_after=int(spec.get("quarantine_after") or 3),
            heartbeat_interval_s=heartbeat_interval_s,
        )
        payload = {
            "succeeded": result.succeeded,
            "segments": result.segments,
            "tasks": result.to_comparable(),
            # tasks whose results were replayed from a prior attempt's
            # journal rather than executed by this attempt
            "replayed_tasks": sorted(
                name for name, r in result.tasks.items() if r.replayed),
        }
        if not result.succeeded:
            bad = sorted(
                name for name, r in result.tasks.items()
                if r.state.value != "succeeded"
            )
            raise FleetError(
                f"workflow {workflow.name!r} finished with "
                f"non-succeeded tasks: {', '.join(bad)}")
        return payload

    return run


class FleetWorker:
    """Pulls leases from a queue and executes one job at a time."""

    def __init__(
        self,
        queue: Any,
        worker_id: Optional[str] = None,
        runner: Optional[Runner] = None,
        state_root: Optional[Union[str, Path]] = None,
        poll_interval_s: float = 0.5,
        renew_fraction: float = 1.0 / 3.0,
        clock: Callable[[], float] = _time.time,
        sleep: Callable[[float], None] = _time.sleep,
    ) -> None:
        if runner is None:
            if state_root is None:
                raise FleetError(
                    "FleetWorker needs either a runner or a state_root "
                    "for the default workflow runner")
            runner = workflow_runner(state_root)
        self.queue = queue
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self.runner = runner
        self.poll_interval_s = float(poll_interval_s)
        self.renew_fraction = float(renew_fraction)
        self.clock = clock
        self.sleep = sleep
        #: terminal outcomes this worker reported (observability/tests)
        self.completed = 0
        self.failed = 0
        self.abandoned = 0

    # ------------------------------------------------------------------
    def run_once(self) -> bool:
        """Lease and fully process one job; False when nothing was ready."""
        lease = self.queue.lease(self.worker_id)
        if lease is None:
            return False
        self._execute(lease)
        return True

    def run_forever(self, stop: threading.Event) -> None:
        """Process jobs until *stop* is set; transient errors are retried.

        A queue that is temporarily unreachable (scheduler restarting)
        must not kill the worker — the lease call's transport errors are
        swallowed and retried after the poll interval.
        """
        while not stop.is_set():
            try:
                busy = self.run_once()
            except ReproError:
                busy = False
            if not busy and not stop.is_set():
                self.sleep(self.poll_interval_s)

    # ------------------------------------------------------------------
    def _execute(self, lease: JobLease) -> None:
        ctx = JobContext(lease, clock=self.clock)
        stop_renewal = threading.Event()
        renewer: Optional[threading.Thread] = None
        if lease.lease_duration_s > 0:
            renewer = threading.Thread(
                target=self._renew_loop, args=(lease, ctx, stop_renewal),
                name=f"{self.worker_id}-renew", daemon=True)
            renewer.start()
        try:
            try:
                result = self.runner(lease, ctx)
            except LeaseExpiredError:
                self.abandoned += 1
                return
            except Exception as exc:  # job code may raise anything
                self._report_fail(lease, ctx, f"{type(exc).__name__}: {exc}")
                return
            self._report_complete(lease, ctx, result)
        finally:
            stop_renewal.set()
            if renewer is not None:
                renewer.join(timeout=5.0)

    def _renew_loop(self, lease: JobLease, ctx: JobContext,
                    stop: threading.Event) -> None:
        interval = max(0.05, lease.lease_duration_s * self.renew_fraction)
        while not stop.wait(interval):
            try:
                self.queue.renew(lease.job_id, lease.worker, lease.attempt)
            except (LeaseExpiredError, JobNotFoundError, JobStateError):
                ctx.mark_lost()
                return
            except ReproError:
                # transient (scheduler restarting): keep trying until the
                # lease actually expires — the queue is the arbiter
                continue

    def _report_complete(self, lease: JobLease, ctx: JobContext,
                         result: Optional[Mapping[str, Any]]) -> None:
        if ctx.lease_lost:
            self.abandoned += 1
            return
        try:
            self.queue.complete(lease.job_id, lease.worker, lease.attempt,
                                result=result)
            self.completed += 1
        except (LeaseExpiredError, JobNotFoundError, JobStateError):
            self.abandoned += 1
        except ReproError:
            # unreachable scheduler: the lease will expire and a
            # successor will resume the journal — nothing re-executes
            self.abandoned += 1

    def _report_fail(self, lease: JobLease, ctx: JobContext,
                     error: str) -> None:
        if ctx.lease_lost:
            self.abandoned += 1
            return
        try:
            self.queue.fail(lease.job_id, lease.worker, lease.attempt, error)
            self.failed += 1
        except (LeaseExpiredError, JobNotFoundError, JobStateError):
            self.abandoned += 1
        except ReproError:
            self.abandoned += 1

    def __repr__(self) -> str:
        return (f"FleetWorker({self.worker_id!r}, completed={self.completed}, "
                f"failed={self.failed}, abandoned={self.abandoned})")
