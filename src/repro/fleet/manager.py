"""FleetManager: the object the REST tier serves for ``/api/v0/jobs``.

Binds the durable queue, the fair-share scheduler, the admission policy
and the provenance publisher into one duck-typed verb surface — exactly
the pattern the REST handler already uses for the single-node service
vs. the cluster router.  The manager also owns the fleet's on-disk
layout::

    <root>/queue.wal     the job-queue WAL (crc-checked, fsync-per-record)
    <root>/jobs/<id>/    one workflow state dir per job (the workers'
                         journals; preserved for dead-lettered jobs so
                         their last attempt is inspectable)

Purging a settled job removes its state dir too, so the PL116 lint's
orphan check stays quiet on a well-run fleet.
"""

from __future__ import annotations

import shutil
import time as _time
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.errors import FleetError
from repro.fleet.provenance import JobProvenancePublisher
from repro.fleet.queue import FleetQueue, JobState
from repro.fleet.scheduler import AdmissionControl, FairShareScheduler
from repro.retry import ExponentialBackoff
from repro.workflow.journal import workflow_journal_path

__all__ = ["FleetManager", "JOBS_DIR_NAME"]

#: Subdirectory of the fleet root holding per-job workflow state dirs.
JOBS_DIR_NAME = "jobs"


def _brief(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The list-view projection of a job status payload."""
    return {
        "job_id": payload["job_id"],
        "tenant": payload["tenant"],
        "state": payload["state"],
        "attempts": payload["attempts"],
        "crashes": payload["crashes"],
        "failures": payload["failures"],
        "submitted_at": payload["submitted_at"],
        "worker": payload["worker"],
        "error": payload["error"],
        "dead_reason": payload["dead_reason"],
    }


class FleetManager:
    """Durable job fleet behind one state directory.

    *service* (optional) is anything with ``put_document(doc_id, doc)``
    — each durable queue transition then publishes the job's PROV
    document there, so the fleet's retry history is PROVQL-queryable on
    the same node that schedules it.
    """

    def __init__(
        self,
        root: Union[str, Path],
        service: Optional[Any] = None,
        *,
        lease_duration_s: float = 30.0,
        max_attempts: int = 3,
        tenant_weights: Optional[Mapping[str, float]] = None,
        max_active_total: int = 1024,
        max_active_per_tenant: int = 64,
        retry_after_s: float = 1.0,
        retry_backoff: Optional[ExponentialBackoff] = None,
        clock: Callable[[], float] = _time.time,
        fsync: bool = True,
    ) -> None:
        self.root = Path(root)
        self.state_root = self.root / JOBS_DIR_NAME
        self.state_root.mkdir(parents=True, exist_ok=True)
        self.publisher: Optional[JobProvenancePublisher] = None
        if service is not None:
            self.publisher = JobProvenancePublisher(
                lambda doc_id, doc: service.put_document(doc_id, doc))
        self.queue = FleetQueue(
            self.root,
            lease_duration_s=lease_duration_s,
            max_attempts=max_attempts,
            scheduler=FairShareScheduler(weights=tenant_weights),
            admission=AdmissionControl(
                max_active_total=max_active_total,
                max_active_per_tenant=max_active_per_tenant,
                retry_after_s=retry_after_s,
            ),
            retry_backoff=retry_backoff,
            clock=clock,
            fsync=fsync,
            on_event=(self.publisher.on_event
                      if self.publisher is not None else None),
        )

    # -- submission / inspection (REST: POST /jobs, GET /jobs[...]) ----
    def submit_job(
        self,
        spec: Mapping[str, Any],
        tenant: str = "default",
        max_attempts: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Durably accept one job; the returned payload is the 201 body."""
        job = self.queue.submit(spec, tenant=tenant, max_attempts=max_attempts)
        return job.status_payload()

    def get_job(self, job_id: str) -> Dict[str, Any]:
        """Full status of one job (the ``GET /jobs/<id>`` body)."""
        return self.queue.get(job_id).status_payload()

    def list_jobs(
        self,
        state: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Brief status rows, optionally filtered by state and tenant."""
        job_state: Optional[JobState] = None
        if state:
            try:
                job_state = JobState(state)
            except ValueError:
                raise FleetError(
                    f"unknown job state {state!r}; one of: "
                    f"{', '.join(s.value for s in JobState)}") from None
        return [
            _brief(job.status_payload())
            for job in self.queue.jobs(state=job_state, tenant=tenant)
        ]

    # -- worker protocol (REST: POST /jobs:lease, /jobs/<id>:verb) -----
    def lease_job(self, worker_id: str) -> Optional[Dict[str, Any]]:
        """Grant the fair-share pick to *worker_id* (None = nothing ready)."""
        lease = self.queue.lease(str(worker_id))
        return lease.to_payload() if lease is not None else None

    def renew_job(self, job_id: str, worker_id: str,
                  attempt: int) -> Dict[str, Any]:
        """Heartbeat-extend a held lease."""
        expires = self.queue.renew(job_id, str(worker_id), int(attempt))
        return {"job_id": job_id, "expires": expires}

    def complete_job(self, job_id: str, worker_id: str, attempt: int,
                     result: Optional[Mapping[str, Any]] = None,
                     ) -> Dict[str, Any]:
        """Report success for a held lease."""
        job = self.queue.complete(job_id, str(worker_id), int(attempt),
                                  result=result)
        return job.status_payload()

    def fail_job(self, job_id: str, worker_id: str, attempt: int,
                 error: str) -> Dict[str, Any]:
        """Report a clean failure (retry with backoff or dead-letter)."""
        job = self.queue.fail(job_id, str(worker_id), int(attempt),
                              str(error))
        return job.status_payload()

    # -- DLQ management (REST: POST /jobs/<id>:requeue, DELETE) --------
    def requeue_job(self, job_id: str) -> Dict[str, Any]:
        """Return a dead-lettered job to the pending queue.

        The dead attempts' workflow journal is archived (renamed in
        place), not resumed: a dead-lettered run has typically reached a
        terminal failed/quarantined state that a resume would replay
        straight back into.  Requeue means *fresh attempts* — counters
        reset and the workflow starts over — while the archived journal
        stays in the job's state dir for post-mortem inspection.
        """
        job = self.queue.requeue(job_id)
        wal = workflow_journal_path(self.state_root / job_id)
        if wal.is_file():
            n = 1
            while (archived := wal.with_name(
                    f"{wal.name}.dead-{n}")).exists():
                n += 1
            wal.rename(archived)
        return job.status_payload()

    def purge_job(self, job_id: str) -> Dict[str, Any]:
        """Drop a settled job and its workflow state dir."""
        job = self.queue.purge(job_id)
        state_dir = self.state_root / job_id
        if state_dir.is_dir():
            shutil.rmtree(state_dir, ignore_errors=True)
        return job.status_payload()

    def reclaim_expired(self) -> List[str]:
        """Reclaim expired leases now (the lease path also does this)."""
        return self.queue.reclaim_expired()

    # -- observability -------------------------------------------------
    def fleet_stats(self) -> Dict[str, Any]:
        """Queue counters plus provenance-publishing health."""
        stats = self.queue.stats()
        stats["state_root"] = str(self.state_root)
        stats["tenant_weights"] = self.queue.scheduler.weights()
        if self.publisher is not None:
            stats["prov_published"] = self.publisher.published
            stats["prov_dropped"] = self.publisher.dropped
        return stats

    def close(self) -> None:
        """Close the queue WAL; further transitions raise."""
        self.queue.close()

    def __enter__(self) -> "FleetManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
