"""Fleet-level provenance: every job attempt becomes a PROV activity.

The scheduler is the one participant that observes every attempt of
every job — leases granted, leases that expired with a dead worker,
clean failures, dead-lettering — so it is the scheduler that narrates
them as PROV.  Each job gets one document (``fleet-job-<id>``) rebuilt
from the queue's folded state on every durable transition:

- ``fleet:job/<id>`` — the job itself, a Activity carrying tenant,
  state, attempt/crash/failure counters, and the
  ``repro:dead_lettered`` marker once quarantined.
- ``fleet:job/<id>/attempt/<k>`` — one Activity per attempt, chained
  ``wasInformedBy`` to its predecessor, so a PROVQL ``TRAVERSE
  upstream VIA wasInformedBy`` from the last attempt walks the job's
  whole retry history — which is how the service answers "which jobs
  burned the most retries and why".
- ``fleet:worker/<id>`` — the worker agent each attempt
  ``wasAssociatedWith``.

Publishing is strictly best-effort: a provenance hiccup must never
fail a queue transition, so errors are counted (``dropped``) rather
than raised.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.core.experiment import utc
from repro.core.provgen import REPRO_NS
from repro.fleet.queue import Job, JobState
from repro.prov.document import ProvDocument
from repro.prov.identifiers import Namespace

__all__ = [
    "FLEET_NS",
    "JobProvenancePublisher",
    "build_job_document",
    "job_document_id",
]

#: fleet vocabulary namespace (domain-agnostic, mirrors the workflow layer)
FLEET_NS = Namespace("fleet", "https://github.com/HPCI-Lab/yProv#fleet/")


def job_document_id(job_id: str) -> str:
    """The service document id holding a job's fleet provenance."""
    return f"fleet-job-{job_id}"


def build_job_document(job: Job) -> ProvDocument:
    """Map one job's folded queue state onto W3C PROV."""
    doc = ProvDocument()
    doc.add_namespace(FLEET_NS)
    doc.add_namespace(REPRO_NS)

    job_attrs: Dict[str, Any] = {
        "prov:type": FLEET_NS("Job"),
        "prov:label": job.job_id,
        "fleet:tenant": job.tenant,
        "fleet:state": job.state.value,
        "fleet:attempts": job.attempts,
        "fleet:crashes": job.crashes,
        "fleet:failures": job.failures,
        "fleet:max_attempts": job.max_attempts,
    }
    if job.error:
        job_attrs["fleet:error"] = job.error
    if job.state is JobState.DEAD_LETTERED:
        job_attrs["repro:dead_lettered"] = True
        if job.dead_reason:
            job_attrs["fleet:dead_reason"] = job.dead_reason
    job_id = FLEET_NS(f"job/{job.job_id}")
    doc.activity(
        job_id,
        start_time=utc(job.submitted_at) if job.submitted_at else None,
        end_time=utc(job.ended_at) if job.ended_at else None,
        attributes=job_attrs,
    )

    spec_id = FLEET_NS(f"job/{job.job_id}/spec")
    doc.entity(spec_id, {
        "prov:type": FLEET_NS("JobSpec"),
        "prov:label": f"{job.job_id} spec",
    })
    doc.used(job_id, spec_id)

    tenant_id = FLEET_NS(f"tenant/{job.tenant}")
    doc.agent(tenant_id, {
        "prov:type": FLEET_NS("Tenant"),
        "prov:label": job.tenant,
    })
    doc.was_associated_with(job_id, tenant_id)

    workers: Dict[str, Any] = {}
    prev_id = None
    attempt_no = 0
    for entry in job.history:
        number = entry.get("attempt")
        if number is None:
            continue  # requeue markers are not attempts
        attempt_no = int(number)
        attempt_id = FLEET_NS(f"job/{job.job_id}/attempt/{attempt_no}")
        outcome = entry.get("outcome") or "running"
        attrs: Dict[str, Any] = {
            "prov:type": FLEET_NS("JobAttempt"),
            "prov:label": f"{job.job_id} attempt {attempt_no}",
            "fleet:attempt": attempt_no,
            "fleet:outcome": outcome,
        }
        if entry.get("error"):
            attrs["fleet:error"] = entry["error"]
        if outcome == "expired":
            attrs["repro:crashed"] = True
        leased_at = entry.get("leased_at")
        ended_at = entry.get("ended_at")
        doc.activity(
            attempt_id,
            start_time=utc(leased_at) if leased_at else None,
            end_time=utc(ended_at) if ended_at else None,
            attributes=attrs,
        )
        doc.was_started_by(attempt_id, starter=job_id)
        worker = entry.get("worker")
        if worker:
            worker_id = workers.get(worker)
            if worker_id is None:
                worker_id = FLEET_NS(f"worker/{worker}")
                doc.agent(worker_id, {
                    "prov:type": FLEET_NS("Worker"),
                    "prov:label": worker,
                })
                workers[worker] = worker_id
            doc.was_associated_with(attempt_id, worker_id)
        if prev_id is not None:
            doc.was_informed_by(attempt_id, prev_id)
        prev_id = attempt_id

    if job.state is JobState.DONE and prev_id is not None:
        result_id = FLEET_NS(f"job/{job.job_id}/result")
        doc.entity(result_id, {
            "prov:type": FLEET_NS("JobResult"),
            "prov:label": f"{job.job_id} result",
        })
        doc.was_generated_by(
            result_id, prev_id,
            time=utc(job.ended_at) if job.ended_at else None)
    return doc


class JobProvenancePublisher:
    """Publishes each job's document on every durable queue transition.

    *publish* is ``(doc_id, document) -> None`` — typically a closure
    over :meth:`ProvenanceService.put_document`.  Failures are swallowed
    and counted in :attr:`dropped`: provenance must never take the
    scheduler down with it.
    """

    #: queue events that change what the document would say
    _EVENTS = frozenset(
        {"submit", "lease", "complete", "fail", "expire",
         "dead_letter", "requeue"})

    def __init__(self, publish: Callable[[str, ProvDocument], None]) -> None:
        self.publish = publish
        self.published = 0
        self.dropped = 0

    def on_event(self, kind: str, job: Job) -> None:
        """Queue ``on_event`` hook: rebuild and publish the job document."""
        if kind not in self._EVENTS:
            return
        try:
            self.publish(job_document_id(job.job_id), build_job_document(job))
            self.published += 1
        except Exception:
            self.dropped += 1
