"""Durable multi-tenant job queue: every transition is a WAL record.

The queue is the fleet's source of truth.  Every lifecycle transition —
``submit``, ``lease``, ``renew``, ``complete``, ``fail``, ``expire``,
``dead_letter``, ``requeue``, ``purge`` — is appended to ``queue.wal``
in the crc-checked wire format of the core write-ahead journal
(:mod:`repro.core.journal`) and fsynced **before** the call returns, so
an acknowledged submission is durable by the time the caller sees it.
On restart the WAL is replayed into the pending/leased/done/dead-letter
sets a crashed predecessor left behind; torn or corrupt tail records
are skipped exactly like the core journal's reader — never fatal.

Replay and live appends fold records through the *same* function
(:func:`_fold`), which is what makes replay idempotent by construction:
the in-memory state after N appends equals the state after replaying
those N records, byte for byte of the journal.

Leases are fenced: each carries the attempt number it was granted for,
and ``renew``/``complete``/``fail`` are rejected with
:class:`~repro.errors.LeaseExpiredError` unless the caller still holds
the *current* lease.  A worker that was suspected dead, lost its lease
to reclaim, and then came back alive therefore cannot double-report a
job — its stale attempt is fenced out at the journal boundary.

The WAL self-compacts: once settled records dominate the live job set,
the whole file is atomically rewritten as one ``snapshot`` record per
surviving job, so a long-lived queue's journal stays proportional to
its population, not its history.
"""

from __future__ import annotations

import os
import threading
import uuid
from dataclasses import dataclass, field, replace
from enum import Enum
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

import time as _time

from repro.atomicio import atomic_write_bytes
from repro.core.journal import JournalError, decode_record, encode_record, to_jsonable
from repro.errors import (
    FleetError,
    JobNotFoundError,
    JobStateError,
    LeaseExpiredError,
)
from repro.fleet.scheduler import AdmissionControl, FairShareScheduler
from repro.retry import ExponentialBackoff, seed_from_name

__all__ = [
    "FLEET_QUEUE_NAME",
    "FleetQueue",
    "Job",
    "JobLease",
    "JobState",
    "replay_queue",
]

#: File name of the job-queue WAL inside a fleet state directory.
FLEET_QUEUE_NAME = "queue.wal"

#: Compact once the journal holds more than ``max(this, 8 * live)`` records.
_COMPACT_MIN = 512

#: Attempt history entries kept per job (older entries are trimmed).
_HISTORY_LIMIT = 32


class JobState(str, Enum):
    """Lifecycle states a job moves through (see DESIGN.md state machine)."""

    PENDING = "pending"
    LEASED = "leased"
    DONE = "done"
    DEAD_LETTERED = "dead_lettered"


@dataclass
class Job:
    """One job's full queue-side state, folded from the WAL."""

    job_id: str
    tenant: str
    spec: Dict[str, Any]
    submitted_at: float
    max_attempts: int
    state: JobState = JobState.PENDING
    #: attempts started (== the attempt number of the latest lease)
    attempts: int = 0
    #: leases that expired without a report (presumed worker crash)
    crashes: int = 0
    #: attempts that reported a clean failure
    failures: int = 0
    #: earliest time the job may be leased again (retry backoff)
    not_before: float = 0.0
    worker: Optional[str] = None
    lease_expires: float = 0.0
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    dead_reason: Optional[str] = None
    dead_at: Optional[float] = None
    ended_at: Optional[float] = None
    #: FIFO tiebreaker: bumped each time the job (re)enters PENDING
    seq: int = 0
    #: per-attempt records, newest last (bounded at ``_HISTORY_LIMIT``)
    history: List[Dict[str, Any]] = field(default_factory=list)

    def copy(self) -> "Job":
        """Deep-enough copy handed to callers (mutating it is harmless)."""
        dup = replace(self)
        dup.spec = dict(self.spec)
        dup.history = [dict(h) for h in self.history]
        if self.result is not None:
            dup.result = dict(self.result)
        return dup

    def status_payload(self) -> Dict[str, Any]:
        """The JSON shape served by ``GET /api/v0/jobs/<id>``."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state.value,
            "spec": dict(self.spec),
            "submitted_at": self.submitted_at,
            "max_attempts": self.max_attempts,
            "attempts": self.attempts,
            "crashes": self.crashes,
            "failures": self.failures,
            "not_before": self.not_before,
            "worker": self.worker,
            "lease_expires": self.lease_expires,
            "result": self.result,
            "error": self.error,
            "dead_reason": self.dead_reason,
            "dead_at": self.dead_at,
            "ended_at": self.ended_at,
            "history": [dict(h) for h in self.history],
        }

    def snapshot_payload(self) -> Dict[str, Any]:
        """The single compaction record that reconstructs this job."""
        payload = self.status_payload()
        payload["seq"] = self.seq
        return payload


@dataclass(frozen=True)
class JobLease:
    """What a worker holds while it runs a job."""

    job_id: str
    tenant: str
    spec: Dict[str, Any]
    worker: str
    attempt: int
    expires: float
    lease_duration_s: float

    def to_payload(self) -> Dict[str, Any]:
        """JSON shape of a granted lease (the ``jobs:lease`` response)."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "spec": dict(self.spec),
            "worker": self.worker,
            "attempt": self.attempt,
            "expires": self.expires,
            "lease_duration_s": self.lease_duration_s,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "JobLease":
        """Rebuild a lease from its JSON shape (client side)."""
        return cls(
            job_id=str(payload["job_id"]),
            tenant=str(payload.get("tenant") or "default"),
            spec=dict(payload.get("spec") or {}),
            worker=str(payload["worker"]),
            attempt=int(payload["attempt"]),
            expires=float(payload["expires"]),
            lease_duration_s=float(payload.get("lease_duration_s") or 0.0),
        )


@dataclass
class _QueueState:
    """Mutable fold target shared by replay and live appends."""

    jobs: Dict[str, Job] = field(default_factory=dict)
    #: next FIFO sequence number
    seq: int = 0
    #: records folded since construction/compaction (valid ones)
    records: int = 0


def _trim_history(job: Job) -> None:
    if len(job.history) > _HISTORY_LIMIT:
        del job.history[: len(job.history) - _HISTORY_LIMIT]


def _close_open_attempt(job: Job, outcome: str, t: Any,
                        error: Optional[str] = None) -> None:
    """Mark the newest history entry terminal (idempotent on replay)."""
    if job.history and "outcome" not in job.history[-1]:
        entry = job.history[-1]
        entry["outcome"] = outcome
        entry["ended_at"] = t
        if error is not None:
            entry["error"] = error


def _fold(state: _QueueState, record: Mapping[str, Any]) -> Optional[str]:
    """Fold one WAL record into *state*; returns the job id it touched.

    Unknown kinds and records for unknown jobs are ignored (a newer
    writer's records must not poison an older reader's replay).  This is
    the single transition function — live appends call it too, so the
    in-memory state is always exactly what a restart would rebuild.
    """
    kind = record.get("k")
    job_id = record.get("job")
    if not isinstance(job_id, str) or not kind:
        return None
    state.records += 1
    job = state.jobs.get(job_id)
    if kind == "submit":
        if job is not None:  # duplicate submit: first write wins
            return job_id
        state.seq += 1
        state.jobs[job_id] = Job(
            job_id=job_id,
            tenant=str(record.get("tenant") or "default"),
            spec=dict(record.get("spec") or {}),
            submitted_at=float(record.get("t") or 0.0),
            max_attempts=int(record.get("max_attempts") or 1),
            seq=state.seq,
        )
        return job_id
    if kind == "snapshot":
        snap_seq = int(record.get("seq") or state.seq + 1)
        state.seq = max(state.seq, snap_seq)
        snap = Job(
            job_id=job_id,
            tenant=str(record.get("tenant") or "default"),
            spec=dict(record.get("spec") or {}),
            submitted_at=float(record.get("submitted_at") or 0.0),
            max_attempts=int(record.get("max_attempts") or 1),
            state=JobState(str(record.get("state") or "pending")),
            attempts=int(record.get("attempts") or 0),
            crashes=int(record.get("crashes") or 0),
            failures=int(record.get("failures") or 0),
            not_before=float(record.get("not_before") or 0.0),
            worker=record.get("worker"),
            lease_expires=float(record.get("lease_expires") or 0.0),
            result=record.get("result"),
            error=record.get("error"),
            dead_reason=record.get("dead_reason"),
            dead_at=record.get("dead_at"),
            ended_at=record.get("ended_at"),
            seq=snap_seq,
            history=[dict(h) for h in record.get("history") or []],
        )
        state.jobs[job_id] = snap
        return job_id
    if job is None:
        return None
    t = record.get("t")
    if kind == "lease":
        job.state = JobState.LEASED
        job.worker = str(record.get("worker") or "")
        job.attempts = int(record.get("attempt") or job.attempts + 1)
        job.lease_expires = float(record.get("expires") or 0.0)
        job.history.append({
            "attempt": job.attempts,
            "worker": job.worker,
            "leased_at": t,
        })
        _trim_history(job)
    elif kind == "renew":
        if (job.state is JobState.LEASED
                and job.worker == record.get("worker")
                and job.attempts == int(record.get("attempt") or 0)):
            job.lease_expires = float(record.get("expires") or 0.0)
    elif kind == "complete":
        job.state = JobState.DONE
        result = record.get("result")
        job.result = dict(result) if isinstance(result, Mapping) else None
        job.error = None
        job.worker = None
        job.lease_expires = 0.0
        job.ended_at = float(t) if t is not None else None
        _close_open_attempt(job, "completed", t)
    elif kind == "fail":
        job.state = JobState.PENDING
        job.failures += 1
        job.error = record.get("error")
        job.worker = None
        job.lease_expires = 0.0
        job.not_before = float(record.get("retry_at") or 0.0)
        state.seq += 1
        job.seq = state.seq
        _close_open_attempt(job, "failed", t, error=record.get("error"))
    elif kind == "expire":
        job.state = JobState.PENDING
        job.crashes += 1
        job.error = record.get("error") or job.error
        job.worker = None
        job.lease_expires = 0.0
        job.not_before = float(record.get("retry_at") or 0.0)
        state.seq += 1
        job.seq = state.seq
        _close_open_attempt(job, "expired", t,
                            error=record.get("error"))
    elif kind == "dead_letter":
        job.state = JobState.DEAD_LETTERED
        job.dead_reason = record.get("reason")
        job.dead_at = float(t) if t is not None else None
        job.worker = None
        job.lease_expires = 0.0
    elif kind == "requeue":
        job.state = JobState.PENDING
        job.attempts = 0
        job.crashes = 0
        job.failures = 0
        job.not_before = 0.0
        job.error = None
        job.dead_reason = None
        job.dead_at = None
        job.result = None
        job.ended_at = None
        state.seq += 1
        job.seq = state.seq
        job.history.append({"requeued_at": t, "outcome": "requeued"})
        _trim_history(job)
    elif kind == "purge":
        del state.jobs[job_id]
    else:
        state.records -= 1  # structurally valid but unknown: not replayed
        return None
    return job_id


def replay_queue(path: Union[str, Path]) -> Tuple[_QueueState, int]:
    """Fold a queue WAL into ``(state, bad record count)``.

    Unreadable lines (torn tail after SIGKILL, bit rot) are counted and
    skipped; every intact record is recovered, mirroring the core
    journal's reader.
    """
    path = Path(path)
    state = _QueueState()
    bad = 0
    if not path.is_file():
        return state, 0
    with path.open("rb") as fh:
        for line in fh:
            if not line.strip():
                continue
            try:
                record = decode_record(line)
            except JournalError:
                bad += 1
                continue
            _fold(state, record)
    return state, bad


class FleetQueue:
    """Thread-safe durable job queue over a single ``queue.wal``.

    One process owns the WAL (the scheduler); workers reach it through
    that process (directly in tests, via REST in production).  ``clock``
    is injectable so lease expiry and backoff are testable without real
    waiting; ``on_event(kind, job)`` fires after each durable transition
    (outside the lock) and is how the manager publishes provenance.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        lease_duration_s: float = 30.0,
        max_attempts: int = 3,
        scheduler: Optional[FairShareScheduler] = None,
        admission: Optional[AdmissionControl] = None,
        retry_backoff: Optional[ExponentialBackoff] = None,
        clock: Callable[[], float] = _time.time,
        fsync: bool = True,
        on_event: Optional[Callable[[str, Job], None]] = None,
    ) -> None:
        if lease_duration_s <= 0:
            raise FleetError(
                f"lease_duration_s must be positive, got {lease_duration_s}")
        if max_attempts < 1:
            raise FleetError(
                f"max_attempts must be >= 1, got {max_attempts}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / FLEET_QUEUE_NAME
        self.lease_duration_s = float(lease_duration_s)
        self.max_attempts = int(max_attempts)
        self.scheduler = scheduler or FairShareScheduler()
        self.admission = admission or AdmissionControl()
        self.retry_backoff = retry_backoff or ExponentialBackoff(
            base_s=0.5, factor=2.0, max_s=30.0, jitter=0.1)
        self.clock = clock
        self.fsync = bool(fsync)
        self.on_event = on_event
        self._lock = threading.RLock()
        self._state, self.bad_records = replay_queue(self.path)
        #: structurally valid records replayed at startup (chaos proof)
        self.replayed_records = self._state.records
        self._fh = self.path.open("ab")  # lint: disable=SL201 -- the append-only queue WAL is itself the durability primitive; atomic rewrite would defeat it
        if self.bad_records:
            # rewrite the file clean now, but keep the count: stats must
            # still report that this startup found damage
            bad = self.bad_records
            self._compact_locked()
            self.bad_records = bad

    # -- write path ----------------------------------------------------
    def _append_locked(self, record: Dict[str, Any]) -> Optional[Job]:
        if self._fh is None:
            raise FleetError(f"fleet queue {self.path} is closed")
        self._fh.write(encode_record(record))
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        job_id = _fold(self._state, record)
        job = self._state.jobs.get(job_id) if job_id else None
        return job.copy() if job is not None else None

    def _maybe_compact_locked(self) -> None:
        live = len(self._state.jobs)
        if self._state.records > max(_COMPACT_MIN, 8 * live):
            self._compact_locked()

    def _fire(self, events: Iterable[Tuple[str, Optional[Job]]]) -> None:
        if self.on_event is None:
            return
        for kind, job in events:
            if job is not None:
                self.on_event(kind, job)

    # -- public API ----------------------------------------------------
    def submit(
        self,
        spec: Mapping[str, Any],
        tenant: str = "default",
        job_id: Optional[str] = None,
        max_attempts: Optional[int] = None,
    ) -> Job:
        """Durably enqueue a job; returns once the record is fsynced.

        Admission control runs first: a full queue (global or per-tenant
        cap) raises :class:`~repro.errors.QueueFullError` *before*
        anything is journaled, so overflow costs no durable state.
        """
        if not isinstance(spec, Mapping):
            raise FleetError(f"job spec must be a mapping, got {type(spec).__name__}")
        tenant = str(tenant or "default")
        with self._lock:
            active_total = 0
            active_tenant = 0
            for job in self._state.jobs.values():
                if job.state in (JobState.PENDING, JobState.LEASED):
                    active_total += 1
                    if job.tenant == tenant:
                        active_tenant += 1
            self.admission.check(tenant, active_tenant, active_total)
            new_id = job_id or f"job-{uuid.uuid4().hex[:12]}"
            if new_id in self._state.jobs:
                raise JobStateError(f"job {new_id!r} already exists")
            job = self._append_locked({
                "k": "submit",
                "job": new_id,
                "tenant": tenant,
                "spec": to_jsonable(dict(spec)),
                "t": self.clock(),
                "max_attempts": int(max_attempts or self.max_attempts),
            })
            self._maybe_compact_locked()
        self._fire([("submit", job)])
        assert job is not None
        return job

    def get(self, job_id: str) -> Job:
        """The current folded state of one job (a copy)."""
        with self._lock:
            job = self._state.jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(f"no such job: {job_id!r}")
            return job.copy()

    def jobs(
        self,
        state: Optional[JobState] = None,
        tenant: Optional[str] = None,
    ) -> List[Job]:
        """All jobs (copies), optionally filtered, in submission order."""
        with self._lock:
            out = [
                job.copy()
                for job in self._state.jobs.values()
                if (state is None or job.state is state)
                and (tenant is None or job.tenant == tenant)
            ]
        out.sort(key=lambda j: (j.submitted_at, j.job_id))
        return out

    def dead_letters(self) -> List[Job]:
        """The dead-letter queue, oldest first."""
        out = self.jobs(state=JobState.DEAD_LETTERED)
        out.sort(key=lambda j: (j.dead_at or 0.0, j.job_id))
        return out

    def lease(self, worker_id: str, now: Optional[float] = None) -> Optional[JobLease]:
        """Grant the fair-share pick of the ready jobs to *worker_id*.

        Reclaims expired leases first (so a crashed worker's job is
        offered to its successor), then asks the deficit-round-robin
        scheduler which tenant's turn it is.  Returns ``None`` when no
        job is ready.  The lease record is fsynced before the lease is
        returned — a scheduler killed mid-lease either never granted it
        (the job is still pending after replay) or granted it durably.
        """
        events: List[Tuple[str, Optional[Job]]] = []
        with self._lock:
            now = self.clock() if now is None else now
            events.extend(self._reclaim_expired_locked(now))
            ready: Dict[str, List[Job]] = {}
            for job in self._state.jobs.values():
                if job.state is JobState.PENDING and job.not_before <= now:
                    ready.setdefault(job.tenant, []).append(job)
            lease: Optional[JobLease] = None
            tenant = self.scheduler.pick(
                {t: len(js) for t, js in ready.items()})
            if tenant is not None:
                job = min(ready[tenant], key=lambda j: j.seq)
                attempt = job.attempts + 1
                expires = now + self.lease_duration_s
                leased = self._append_locked({
                    "k": "lease",
                    "job": job.job_id,
                    "worker": str(worker_id),
                    "attempt": attempt,
                    "t": now,
                    "expires": expires,
                })
                assert leased is not None
                events.append(("lease", leased))
                lease = JobLease(
                    job_id=leased.job_id,
                    tenant=leased.tenant,
                    spec=dict(leased.spec),
                    worker=str(worker_id),
                    attempt=attempt,
                    expires=expires,
                    lease_duration_s=self.lease_duration_s,
                )
            self._maybe_compact_locked()
        self._fire(events)
        return lease

    def _check_holder_locked(self, job_id: str, worker_id: str,
                             attempt: int) -> Job:
        job = self._state.jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no such job: {job_id!r}")
        if (job.state is not JobState.LEASED
                or job.worker != worker_id
                or job.attempts != attempt):
            raise LeaseExpiredError(
                f"job {job_id!r}: lease for worker {worker_id!r} attempt "
                f"{attempt} is no longer current (state={job.state.value}, "
                f"holder={job.worker!r}, attempt={job.attempts})")
        return job

    def renew(self, job_id: str, worker_id: str, attempt: int,
              now: Optional[float] = None) -> float:
        """Extend a held lease; returns the new expiry.

        Raises :class:`~repro.errors.LeaseExpiredError` when the lease
        was reclaimed — the worker must abandon the attempt.
        """
        with self._lock:
            now = self.clock() if now is None else now
            self._check_holder_locked(job_id, worker_id, attempt)
            expires = now + self.lease_duration_s
            self._append_locked({
                "k": "renew",
                "job": job_id,
                "worker": str(worker_id),
                "attempt": attempt,
                "t": now,
                "expires": expires,
            })
        return expires

    def complete(self, job_id: str, worker_id: str, attempt: int,
                 result: Optional[Mapping[str, Any]] = None,
                 now: Optional[float] = None) -> Job:
        """Report success for a held lease (fenced against stale holders)."""
        with self._lock:
            now = self.clock() if now is None else now
            self._check_holder_locked(job_id, worker_id, attempt)
            job = self._append_locked({
                "k": "complete",
                "job": job_id,
                "worker": str(worker_id),
                "attempt": attempt,
                "t": now,
                "result": to_jsonable(dict(result)) if result else None,
            })
            self._maybe_compact_locked()
        self._fire([("complete", job)])
        assert job is not None
        return job

    def fail(self, job_id: str, worker_id: str, attempt: int, error: str,
             now: Optional[float] = None) -> Job:
        """Report a clean failure; requeues with seeded backoff or DLQs.

        The retry delay is deterministic per job (the backoff is seeded
        from the job id), so a retried sweep remains reproducible.  Once
        ``max_attempts`` attempts have been burned the job is
        dead-lettered instead of retried forever.
        """
        events: List[Tuple[str, Optional[Job]]] = []
        with self._lock:
            now = self.clock() if now is None else now
            job = self._check_holder_locked(job_id, worker_id, attempt)
            retry_at = now + self._retry_delay(job_id, attempt)
            folded = self._append_locked({
                "k": "fail",
                "job": job_id,
                "worker": str(worker_id),
                "attempt": attempt,
                "t": now,
                "error": str(error),
                "retry_at": retry_at,
            })
            events.append(("fail", folded))
            if attempt >= job.max_attempts:
                events.append(self._dead_letter_locked(
                    job_id, now,
                    f"failed {attempt}/{job.max_attempts} attempts: {error}"))
            self._maybe_compact_locked()
        self._fire(events)
        return self.get(job_id)

    def reclaim_expired(self, now: Optional[float] = None) -> List[str]:
        """Reclaim every expired lease; returns the touched job ids.

        Each reclaim journals an ``expire`` record (the attempt counts as
        a crash — the worker vanished without reporting) and either
        requeues the job with backoff or dead-letters it once
        ``max_attempts`` leases have died.
        """
        with self._lock:
            now = self.clock() if now is None else now
            events = self._reclaim_expired_locked(now)
            self._maybe_compact_locked()
        self._fire(events)
        return [job.job_id for _, job in events if job is not None]

    def _reclaim_expired_locked(
            self, now: float) -> List[Tuple[str, Optional[Job]]]:
        events: List[Tuple[str, Optional[Job]]] = []
        expired = [
            job for job in self._state.jobs.values()
            if job.state is JobState.LEASED and job.lease_expires < now
        ]
        for job in expired:
            attempt = job.attempts
            retry_at = now + self._retry_delay(job.job_id, attempt)
            folded = self._append_locked({
                "k": "expire",
                "job": job.job_id,
                "worker": job.worker,
                "attempt": attempt,
                "t": now,
                "error": f"lease expired (worker {job.worker!r} presumed dead)",
                "retry_at": retry_at,
            })
            events.append(("expire", folded))
            if attempt >= job.max_attempts:
                events.append(self._dead_letter_locked(
                    job.job_id, now,
                    f"{attempt}/{job.max_attempts} leases expired "
                    f"(job crashes its workers)"))
        return events

    def _dead_letter_locked(self, job_id: str, now: float,
                            reason: str) -> Tuple[str, Optional[Job]]:
        job = self._append_locked({
            "k": "dead_letter",
            "job": job_id,
            "t": now,
            "reason": reason,
        })
        return ("dead_letter", job)

    def _retry_delay(self, job_id: str, attempt: int) -> float:
        backoff = replace(self.retry_backoff, seed=seed_from_name(job_id))
        return backoff.delay_for(max(1, attempt))

    def requeue(self, job_id: str) -> Job:
        """Return a dead-lettered job to the pending queue (counters reset)."""
        with self._lock:
            job = self._state.jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(f"no such job: {job_id!r}")
            if job.state is not JobState.DEAD_LETTERED:
                raise JobStateError(
                    f"job {job_id!r} is {job.state.value}, not dead-lettered; "
                    "only DLQ entries can be requeued")
            folded = self._append_locked({
                "k": "requeue",
                "job": job_id,
                "t": self.clock(),
            })
        self._fire([("requeue", folded)])
        assert folded is not None
        return folded

    def purge(self, job_id: str) -> Job:
        """Drop a settled (done or dead-lettered) job from the queue."""
        with self._lock:
            job = self._state.jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(f"no such job: {job_id!r}")
            if job.state not in (JobState.DONE, JobState.DEAD_LETTERED):
                raise JobStateError(
                    f"job {job_id!r} is {job.state.value}; only done or "
                    "dead-lettered jobs can be purged")
            gone = job.copy()
            self._append_locked({
                "k": "purge",
                "job": job_id,
                "t": self.clock(),
            })
            self._maybe_compact_locked()
        self._fire([("purge", gone)])
        return gone

    def stats(self) -> Dict[str, Any]:
        """Counts by state and tenant plus journal health counters."""
        with self._lock:
            by_state = {state.value: 0 for state in JobState}
            by_tenant: Dict[str, int] = {}
            for job in self._state.jobs.values():
                by_state[job.state.value] += 1
                if job.state in (JobState.PENDING, JobState.LEASED):
                    by_tenant[job.tenant] = by_tenant.get(job.tenant, 0) + 1
            return {
                "jobs": len(self._state.jobs),
                "by_state": by_state,
                "active_by_tenant": by_tenant,
                "journal_records": self._state.records,
                "replayed_records": self.replayed_records,
                "bad_records": self.bad_records,
                "lease_duration_s": self.lease_duration_s,
                "max_attempts": self.max_attempts,
            }

    # -- maintenance ---------------------------------------------------
    def compact(self) -> None:
        """Atomically rewrite the WAL as one snapshot record per job."""
        with self._lock:
            self._compact_locked()

    def _compact_locked(self) -> None:
        if getattr(self, "_fh", None) is not None:
            self._fh.close()
        body = b"".join(
            encode_record({"k": "snapshot", "job": job.job_id,
                           **to_jsonable(job.snapshot_payload())})
            for job in self._state.jobs.values()
        )
        atomic_write_bytes(self.path, body, fsync=self.fsync)
        self._fh = self.path.open("ab")  # lint: disable=SL201 -- reopening the append-only queue WAL after atomic compaction
        self._state.records = len(self._state.jobs)
        self.bad_records = 0

    def close(self) -> None:
        """Flush and close; further appends raise. Idempotent."""
        with self._lock:
            if self._fh is None:
                return
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "FleetQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if getattr(self, "_fh", None) is None else "open"
        return (f"FleetQueue({str(self.path)!r}, {state}, "
                f"jobs={len(self._state.jobs)})")
