"""Fair-share dispatch and bounded admission for the job fleet.

Two small, deterministic policies live here:

- :class:`FairShareScheduler` — classic deficit round-robin (DRR) over
  per-tenant weights.  Each scheduling round credits every tenant with
  ready work ``quantum * weight`` of deficit; a tenant is picked when
  its deficit covers one job.  Over a saturated queue the completed-job
  share therefore converges to the weight ratio (2:1 weights → 2:1
  throughput), while an idle tenant's deficit is zeroed so it cannot
  hoard credit and burst-starve the others later.
- :class:`AdmissionControl` — bounded-queue admission mirroring the
  REST tier's ``TenantQuotas``: a global cap on active (pending+leased)
  jobs plus a per-tenant cap, raising
  :class:`~repro.errors.QueueFullError` with a suggested retry delay.
  The REST surface maps that to ``429`` + ``Retry-After``, which is
  what keeps a misbehaving submitter from growing the queue (and the
  WAL) without bound.

Both are plain in-memory policies: the durable truth lives in the
queue's WAL, so neither needs to survive a crash — a restarted
scheduler simply starts a fresh round over the replayed ready set.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional

from repro.errors import FleetError, QueueFullError

__all__ = ["AdmissionControl", "FairShareScheduler"]


class FairShareScheduler:
    """Deficit round-robin over per-tenant weights (deterministic)."""

    def __init__(
        self,
        weights: Optional[Mapping[str, float]] = None,
        default_weight: float = 1.0,
        quantum: float = 1.0,
    ) -> None:
        if default_weight <= 0:
            raise FleetError(
                f"default_weight must be positive, got {default_weight}")
        if quantum <= 0:
            raise FleetError(f"quantum must be positive, got {quantum}")
        self.default_weight = float(default_weight)
        self.quantum = float(quantum)
        self._weights: Dict[str, float] = {}
        self._deficits: Dict[str, float] = {}
        self._order: List[str] = []
        self._cursor = 0
        #: True when the cursor just arrived at a tenant (credit it once)
        self._fresh_visit = True
        for tenant, weight in (weights or {}).items():
            self.set_weight(tenant, weight)

    def set_weight(self, tenant: str, weight: float) -> None:
        """Set a tenant's fair-share weight (must be positive)."""
        if weight <= 0:
            raise FleetError(
                f"weight for tenant {tenant!r} must be positive, got {weight}")
        self._weights[str(tenant)] = float(weight)
        self._ensure(str(tenant))

    def weight(self, tenant: str) -> float:
        """The tenant's weight (``default_weight`` when unconfigured)."""
        return self._weights.get(tenant, self.default_weight)

    def weights(self) -> Dict[str, float]:
        """A copy of the explicitly configured weights."""
        return dict(self._weights)

    def _ensure(self, tenant: str) -> None:
        if tenant not in self._deficits:
            self._deficits[tenant] = 0.0
            self._order.append(tenant)

    def pick(self, ready: Mapping[str, int]) -> Optional[str]:
        """Choose the tenant whose turn it is among those with ready jobs.

        *ready* maps tenant → number of ready jobs; tenants with zero
        are treated as idle (their deficit resets, per standard DRR).
        Returns ``None`` when nothing is ready.

        Classic DRR serves a tenant's whole deficit as a burst before
        moving on, so the cursor *stays* on a tenant while its remaining
        deficit covers another job; the deficit is credited
        (``quantum * weight``) only when the cursor first arrives.  Over
        a saturated queue the pick counts therefore converge to the
        weight ratio exactly.  One job costs 1.0 deficit, so the loop
        terminates within ``ceil(1 / (quantum * min_weight)) + 1`` full
        cycles.
        """
        candidates = {t for t, n in ready.items() if n > 0}
        # sorted so first-seen registration order (and thus the whole
        # pick sequence) is deterministic across interpreter runs
        for tenant in sorted(candidates):
            self._ensure(tenant)
        if not candidates:
            self._deficits = {t: 0.0 for t in self._deficits}
            self._fresh_visit = True
            return None
        for tenant in self._order:
            if tenant not in candidates:
                self._deficits[tenant] = 0.0
        cost = 1.0
        min_weight = min(self.weight(t) for t in candidates)
        max_cycles = int(math.ceil(cost / (self.quantum * min_weight))) + 1
        for _ in range((max_cycles + 1) * len(self._order)):
            tenant = self._order[self._cursor % len(self._order)]
            if tenant in candidates:
                if self._fresh_visit:
                    self._deficits[tenant] += self.quantum * self.weight(tenant)
                    self._fresh_visit = False
                if self._deficits[tenant] >= cost:
                    # cursor stays put: the burst continues next call
                    self._deficits[tenant] -= cost
                    return tenant
            self._cursor = (self._cursor + 1) % len(self._order)
            self._fresh_visit = True
        raise FleetError("deficit round-robin failed to converge")  # pragma: no cover

    def __repr__(self) -> str:
        return (f"FairShareScheduler(weights={self._weights!r}, "
                f"default={self.default_weight})")


class AdmissionControl:
    """Bounded-queue admission: global and per-tenant caps on active jobs.

    ``check`` raises :class:`~repro.errors.QueueFullError` carrying
    ``retry_after_s`` when a cap is hit; the queue calls it *before*
    journaling, so overflow never consumes durable state.
    """

    def __init__(
        self,
        max_active_total: int = 1024,
        max_active_per_tenant: int = 64,
        retry_after_s: float = 1.0,
    ) -> None:
        if max_active_total < 1:
            raise FleetError(
                f"max_active_total must be >= 1, got {max_active_total}")
        if max_active_per_tenant < 1:
            raise FleetError("max_active_per_tenant must be >= 1, got "
                             f"{max_active_per_tenant}")
        self.max_active_total = int(max_active_total)
        self.max_active_per_tenant = int(max_active_per_tenant)
        self.retry_after_s = float(retry_after_s)

    def check(self, tenant: str, active_tenant: int, active_total: int) -> None:
        """Admit or refuse one submission given the current active counts."""
        if active_total >= self.max_active_total:
            raise QueueFullError(
                f"queue full: {active_total} active jobs "
                f"(cap {self.max_active_total})",
                retry_after_s=self.retry_after_s)
        if active_tenant >= self.max_active_per_tenant:
            raise QueueFullError(
                f"tenant {tenant!r} at capacity: {active_tenant} active jobs "
                f"(cap {self.max_active_per_tenant})",
                retry_after_s=self.retry_after_s)

    def __repr__(self) -> str:
        return (f"AdmissionControl(total={self.max_active_total}, "
                f"per_tenant={self.max_active_per_tenant})")
