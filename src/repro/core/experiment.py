"""Experiment and run-execution object model (Figure 2).

An :class:`Experiment` groups :class:`RunExecution` instances ("multiple
runs under a single experiment, each potentially configured with different
parameters").  A run divides into :class:`~repro.core.context.Context`
stages; training/validation contexts are organized into epochs.

Time is injectable: every run takes a ``clock`` callable returning epoch
seconds, so the distributed-training simulator can drive runs on simulated
time and produce bit-reproducible provenance.
"""

from __future__ import annotations

import datetime as _dt
import enum
import time as _time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.artifacts import Artifact, ArtifactRegistry, PathLike
from repro.core.context import Context
from repro.core.journal import RunJournal, journal_path_for, to_jsonable
from repro.core.metrics import MetricBuffer, MetricKey
from repro.core.params import LoggedParam, ParamStore
from repro.errors import TrackingError


class RunStatus(enum.Enum):
    """Lifecycle states of a run."""

    CREATED = "created"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"
    TRUNCATED = "truncated"  # walltime-limited (Figure 3's empty cells)


@dataclass
class EpochState:
    """Recorded interval of one epoch within a context."""

    index: int
    start_time: float
    end_time: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.start_time


@dataclass
class ContextState:
    """Bookkeeping for one context used by a run."""

    context: Context
    first_used: float
    last_used: float
    epochs: Dict[int, EpochState] = field(default_factory=dict)
    current_epoch: Optional[int] = None

    def touch(self, now: float) -> None:
        self.last_used = max(self.last_used, now)


@dataclass
class CommandRecord:
    """One console command captured by development tracking (§3.1)."""

    time: float
    command: str
    output: str = ""
    exit_code: int = 0


def utc(ts: float) -> _dt.datetime:
    """Epoch seconds -> aware UTC datetime (used for PROV timestamps)."""
    return _dt.datetime.fromtimestamp(ts, tz=_dt.timezone.utc)


class RunExecution:
    """A single run: parameters, metrics, artifacts, contexts and epochs."""

    def __init__(
        self,
        experiment_name: str,
        run_id: Optional[str] = None,
        run_index: int = 0,
        save_dir: Optional[PathLike] = None,
        user_namespace: str = "http://example.org/",
        username: str = "user",
        clock: Optional[Callable[[], float]] = None,
        rank: Optional[int] = None,
        journal: Union[bool, RunJournal, None] = True,
        journal_flush_every: int = 1,
        journal_fsync: bool = True,
        resumed_from: Optional[str] = None,
    ) -> None:
        if not experiment_name:
            raise TrackingError("experiment_name must be non-empty")
        self.experiment_name = experiment_name
        self.run_index = run_index
        self.run_id = run_id or f"{experiment_name}_{run_index}_{uuid.uuid4().hex[:8]}"
        self.user_namespace = user_namespace
        self.username = username
        self.clock: Callable[[], float] = clock or _time.time
        self.rank = rank
        self.resumed_from = resumed_from
        self.aborted = False

        self.save_dir = Path(save_dir) if save_dir is not None else Path("prov") / self.run_id
        self.save_dir.mkdir(parents=True, exist_ok=True)

        # write-ahead journal (crash safety): created lazily at start() so a
        # never-started run leaves no stray file behind
        if isinstance(journal, RunJournal):
            self.journal: Optional[RunJournal] = journal
            self._journal_pending = False
        else:
            self.journal = None
            self._journal_pending = bool(journal)
        self._journal_flush_every = journal_flush_every
        self._journal_fsync = journal_fsync

        self.params = ParamStore()
        self.metrics: Dict[MetricKey, MetricBuffer] = {}
        self.artifacts = ArtifactRegistry(self.save_dir / "artifacts")
        self.contexts: Dict[Context, ContextState] = {}
        self.commands: List[CommandRecord] = []
        self.captured_output: List[str] = []

        self.status = RunStatus.CREATED
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.last_publish: Optional[Any] = None
        self._collectors: List[Any] = []

    # ------------------------------------------------------------------
    # write-ahead journal
    # ------------------------------------------------------------------
    def _journal_event(self, kind: str, **payload: Any) -> None:
        """Append one event to the journal (no-op when journaling is off)."""
        if self.journal is not None and not self.journal.closed:
            self.journal.append(kind, payload)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "RunExecution":
        """Mark the run as running and open its write-ahead journal."""
        if self.status is not RunStatus.CREATED:
            raise TrackingError(f"run {self.run_id} already started")
        self.start_time = self.clock()
        self.status = RunStatus.RUNNING
        if self._journal_pending:
            self.journal = RunJournal(
                journal_path_for(self.save_dir),
                flush_every=self._journal_flush_every,
                fsync=self._journal_fsync,
            )
            self._journal_pending = False
        self._journal_event(
            "start_run",
            t=self.start_time,
            run_id=self.run_id,
            experiment=self.experiment_name,
            run_index=self.run_index,
            user_namespace=self.user_namespace,
            username=self.username,
            rank=self.rank,
            resumed_from=self.resumed_from,
        )
        return self

    def end(self, status: RunStatus = RunStatus.FINISHED) -> None:
        """Close the run with a terminal *status*, sealing open epochs/contexts."""
        if self.status is not RunStatus.RUNNING:
            raise TrackingError(f"run {self.run_id} is not running")
        if status in (RunStatus.CREATED, RunStatus.RUNNING):
            raise TrackingError(f"invalid terminal status: {status}")
        self.end_time = self.clock()
        # close any dangling epochs/contexts at the end timestamp
        for state in self.contexts.values():
            if state.current_epoch is not None:
                epoch = state.epochs[state.current_epoch]
                if epoch.end_time is None:
                    epoch.end_time = self.end_time
                state.current_epoch = None
            state.touch(self.end_time)
        self.status = status
        self._journal_event("end_run", t=self.end_time, status=status.value)

    def _require_running(self) -> None:
        if self.status is not RunStatus.RUNNING:
            raise TrackingError(
                f"run {self.run_id} is not running (status={self.status.value})"
            )

    @property
    def duration(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    # ------------------------------------------------------------------
    # contexts & epochs
    # ------------------------------------------------------------------
    def _context_state(
        self, context: Union[Context, str], now: Optional[float] = None
    ) -> ContextState:
        """Fetch/create the context state, touching it at *now*.

        Every logging call reads the clock exactly once and threads the
        timestamp through here, so a journal replay with the recorded
        timestamps reconstructs bit-identical context intervals.
        """
        ctx = Context.of(context)
        state = self.contexts.get(ctx)
        if now is None:
            now = self.clock()
        if state is None:
            state = ContextState(context=ctx, first_used=now, last_used=now)
            self.contexts[ctx] = state
        else:
            state.touch(now)
        return state

    def start_epoch(self, context: Union[Context, str], epoch: Optional[int] = None) -> int:
        """Open an epoch in *context*; returns its index (auto-incremented)."""
        self._require_running()
        now = self.clock()
        state = self._context_state(context, now)
        if state.current_epoch is not None:
            raise TrackingError(
                f"epoch {state.current_epoch} still open in context {state.context}"
            )
        if epoch is None:
            epoch = max(state.epochs) + 1 if state.epochs else 0
        if epoch in state.epochs:
            raise TrackingError(f"epoch {epoch} already recorded in {state.context}")
        state.epochs[epoch] = EpochState(index=epoch, start_time=now)
        state.current_epoch = epoch
        self._journal_event("start_epoch", t=now, c=state.context.name, e=epoch)
        return epoch

    def end_epoch(self, context: Union[Context, str]) -> EpochState:
        """Close the open epoch in *context*."""
        self._require_running()
        now = self.clock()
        state = self._context_state(context, now)
        if state.current_epoch is None:
            raise TrackingError(f"no open epoch in context {state.context}")
        epoch = state.epochs[state.current_epoch]
        epoch.end_time = now
        state.current_epoch = None
        self._journal_event("end_epoch", t=now, c=state.context.name, e=epoch.index)
        return epoch

    # ------------------------------------------------------------------
    # logging
    # ------------------------------------------------------------------
    def log_param(
        self,
        name: str,
        value: Any,
        is_input: bool = True,
        context: Optional[Union[Context, str]] = None,
    ) -> LoggedParam:
        """Record a one-time parameter (input by default), optionally scoped to a context."""
        self._require_running()
        now = self.clock()
        ctx = Context.of(context) if context is not None else None
        if ctx is not None:
            self._context_state(ctx, now)
        param = self.params.log(name, value, is_input=is_input, context=ctx)
        self._journal_event(
            "param",
            t=now,
            n=name,
            v=to_jsonable(value),
            i=is_input,
            c=ctx.name if ctx is not None else None,
        )
        return param

    def log_metric(
        self,
        name: str,
        value: float,
        context: Union[Context, str] = Context.TRAINING,
        step: Optional[int] = None,
        is_input: bool = False,
    ) -> None:
        """Record one metric sample in *context* at *step*.

        The sample is stamped with the clock time and the context's open
        epoch (if any).
        """
        self._require_running()
        now = self.clock()
        state = self._context_state(context, now)
        key = MetricKey(name, state.context)
        buffer = self.metrics.get(key)
        if buffer is None:
            buffer = MetricBuffer(key, is_input=is_input)
            self.metrics[key] = buffer
        if step is None:
            step = len(buffer)
        epoch = state.current_epoch if state.current_epoch is not None else -1
        buffer.append(int(step), float(value), now, epoch)
        self._journal_event(
            "metric",
            t=now,
            n=name,
            c=state.context.name,
            s=int(step),
            v=float(value),
            e=epoch,
            i=is_input,
        )

    def log_metrics(
        self,
        values: Dict[str, float],
        context: Union[Context, str] = Context.TRAINING,
        step: Optional[int] = None,
    ) -> None:
        """Log several metrics at one step."""
        for name, value in values.items():
            self.log_metric(name, value, context=context, step=step)

    def log_metric_array(
        self,
        name: str,
        steps: np.ndarray,
        values: np.ndarray,
        times: np.ndarray,
        context: Union[Context, str] = Context.TRAINING,
        epochs: Optional[np.ndarray] = None,
        is_input: bool = False,
    ) -> None:
        """Bulk-append a pre-computed series (simulator fast path)."""
        self._require_running()
        now = self.clock()
        state = self._context_state(context, now)
        key = MetricKey(name, state.context)
        buffer = self.metrics.get(key)
        if buffer is None:
            buffer = MetricBuffer(key, is_input=is_input)
            self.metrics[key] = buffer
        buffer.extend(steps, values, times, epochs)
        # samples belong to this context, so its interval must cover them —
        # on both ends: the simulator fast path backfills series whose
        # (simulated) timestamps can predate the context's first wall-clock use
        times_arr = np.asarray(times, dtype=np.float64)
        if times_arr.size:
            state.first_used = min(state.first_used, float(np.min(times_arr)))
            state.touch(float(np.max(times_arr)))
        self._journal_event(
            "metric_array",
            t=now,
            n=name,
            c=state.context.name,
            steps=to_jsonable(np.asarray(steps)),
            values=to_jsonable(np.asarray(values)),
            times=to_jsonable(np.asarray(times)),
            epochs=to_jsonable(np.asarray(epochs)) if epochs is not None else None,
            i=is_input,
        )

    def get_metric(
        self, name: str, context: Union[Context, str] = Context.TRAINING
    ) -> MetricBuffer:
        """Fetch the buffer of a logged metric series."""
        key = MetricKey(name, Context.of(context))
        try:
            return self.metrics[key]
        except KeyError:
            raise TrackingError(f"metric not logged: {key.series_name()}") from None

    def log_artifact(
        self,
        path: PathLike,
        name: Optional[str] = None,
        is_input: bool = False,
        is_model: bool = False,
        context: Optional[Union[Context, str]] = None,
        step: Optional[int] = None,
        copy: bool = True,
    ) -> Artifact:
        """Register a file artifact (copied into the run directory by default)."""
        self._require_running()
        now = self.clock()
        ctx = Context.of(context) if context is not None else None
        if ctx is not None:
            self._context_state(ctx, now)
        artifact = self.artifacts.log_file(
            path,
            name=name,
            is_input=is_input,
            is_model=is_model,
            context=ctx,
            logged_at=now,
            step=step,
            copy=copy,
        )
        self._journal_artifact(artifact)
        return artifact

    def log_artifact_bytes(
        self,
        name: str,
        data: bytes,
        is_input: bool = False,
        is_model: bool = False,
        context: Optional[Union[Context, str]] = None,
        step: Optional[int] = None,
    ) -> Artifact:
        """Write *data* into the artifact directory and register it."""
        self._require_running()
        now = self.clock()
        ctx = Context.of(context) if context is not None else None
        if ctx is not None:
            self._context_state(ctx, now)
        artifact = self.artifacts.log_bytes(
            name,
            data,
            is_input=is_input,
            is_model=is_model,
            context=ctx,
            logged_at=now,
            step=step,
        )
        self._journal_artifact(artifact)
        return artifact

    def _journal_artifact(self, artifact: Artifact) -> None:
        """Journal an artifact registration (metadata only; bytes are on disk)."""
        self._journal_event(
            "artifact",
            t=artifact.logged_at,
            n=artifact.name,
            path=str(artifact.path),
            sha256=artifact.sha256,
            size=artifact.size_bytes,
            i=artifact.is_input,
            m=artifact.is_model,
            c=artifact.context.name if artifact.context is not None else None,
            s=artifact.step,
        )

    # ------------------------------------------------------------------
    # development tracking (§3.1)
    # ------------------------------------------------------------------
    def log_execution_command(
        self, command: str, output: str = "", exit_code: int = 0
    ) -> CommandRecord:
        """Record a console command plus its textual output."""
        self._require_running()
        record = CommandRecord(self.clock(), command, output, exit_code)
        self.commands.append(record)
        self._journal_event(
            "command",
            t=record.time,
            command=command,
            output=output,
            exit_code=exit_code,
        )
        return record

    def capture_output(self, text: str) -> None:
        """Append a fragment of the training script's stdout/stderr."""
        self._require_running()
        self.captured_output.append(text)
        self._journal_event("output", t=self.clock(), text=text)

    # ------------------------------------------------------------------
    # collector plugins
    # ------------------------------------------------------------------
    def add_collector(self, collector: Any) -> None:
        """Attach a collector plugin (see :mod:`repro.core.collectors`)."""
        self._collectors.append(collector)

    @property
    def collectors(self) -> List[Any]:
        return list(self._collectors)

    def collect_system_metrics(
        self,
        context: Union[Context, str] = Context.TRAINING,
        step: Optional[int] = None,
    ) -> Dict[str, float]:
        """Poll every attached collector and log the readings as metrics."""
        self._require_running()
        readings: Dict[str, float] = {}
        for collector in self._collectors:
            for name, value in collector.collect(self).items():
                readings[name] = value
                self.log_metric(name, value, context=context, step=step)
        return readings

    # ------------------------------------------------------------------
    # persistence (delegates to provgen / storage / crate)
    # ------------------------------------------------------------------
    def save(
        self,
        metric_format: str = "zarrlike",
        create_graph: bool = False,
        create_rocrate: bool = False,
        validate: bool = True,
    ) -> Dict[str, Path]:
        """Write the provenance file (and metric store / crate) to disk.

        ``metric_format`` is one of ``inline`` (samples embedded in the
        PROV-JSON — the Table 1 baseline), ``zarrlike`` or ``netcdflike``.
        Returns a dict of the paths written (keys: ``prov``, optionally
        ``metrics``, ``graph``, ``rocrate``).
        """
        from repro.core.provgen import save_run

        paths = save_run(
            self,
            metric_format=metric_format,
            create_graph=create_graph,
            create_rocrate=create_rocrate,
            validate=validate,
        )
        # the provenance document is the compacted form of the journal; only
        # after it is durably on disk may the write-ahead log go away
        if self.journal is not None:
            self.journal.compact()
        return paths

    def publish(self, client, doc_id: Optional[str] = None):
        """Publish the saved ``prov.json`` to a provenance service.

        *client* is a :class:`~repro.yprov.client.ProvenanceClient` (or
        anything with its ``publish(doc_id, text)`` signature).  Delivery
        is at-least-once: with a spool configured on the client, a
        transport failure parks the document locally instead of raising,
        and a later drain delivers it — training is never stalled and the
        document is never lost.  Returns the client's
        :class:`~repro.yprov.client.PublishResult`, also kept on
        :attr:`last_publish`.
        """
        prov_path = self.save_dir / "prov.json"
        if not prov_path.exists():
            raise TrackingError(
                f"run {self.run_id} has no saved prov.json; call save() first"
            )
        result = client.publish(
            doc_id or self.run_id, prov_path.read_text(encoding="utf-8")
        )
        self.last_publish = result
        return result

    def __repr__(self) -> str:
        return (
            f"RunExecution({self.run_id!r}, status={self.status.value}, "
            f"params={len(self.params)}, metrics={len(self.metrics)})"
        )


class Experiment:
    """A named group of runs sharing a save directory."""

    def __init__(
        self,
        name: str,
        root_dir: PathLike = "prov",
        user_namespace: str = "http://example.org/",
        username: str = "user",
    ) -> None:
        if not name:
            raise TrackingError("experiment name must be non-empty")
        self.name = name
        self.root_dir = Path(root_dir)
        self.user_namespace = user_namespace
        self.username = username
        self.runs: List[RunExecution] = []

    def new_run(
        self,
        run_id: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
        rank: Optional[int] = None,
        journal: Union[bool, RunJournal, None] = True,
        journal_flush_every: int = 1,
        resumed_from: Optional[str] = None,
    ) -> RunExecution:
        """Create (but do not start) the next run of this experiment."""
        index = len(self.runs)
        run = RunExecution(
            experiment_name=self.name,
            run_id=run_id,
            run_index=index,
            save_dir=self.root_dir / (run_id or f"{self.name}_{index}"),
            user_namespace=self.user_namespace,
            username=self.username,
            clock=clock,
            rank=rank,
            journal=journal,
            journal_flush_every=journal_flush_every,
            resumed_from=resumed_from,
        )
        self.runs.append(run)
        return run

    def publish_all(self, client) -> List[Any]:
        """Publish every saved run of this experiment (at-least-once each).

        Runs that were never saved are skipped; the returned list holds one
        :class:`~repro.yprov.client.PublishResult` per published run.
        """
        results = []
        for run in self.runs:
            if (run.save_dir / "prov.json").exists():
                results.append(run.publish(client))
        return results

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)
