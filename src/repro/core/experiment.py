"""Experiment and run-execution object model (Figure 2).

An :class:`Experiment` groups :class:`RunExecution` instances ("multiple
runs under a single experiment, each potentially configured with different
parameters").  A run divides into :class:`~repro.core.context.Context`
stages; training/validation contexts are organized into epochs.

Time is injectable: every run takes a ``clock`` callable returning epoch
seconds, so the distributed-training simulator can drive runs on simulated
time and produce bit-reproducible provenance.
"""

from __future__ import annotations

import datetime as _dt
import enum
import time as _time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.artifacts import Artifact, ArtifactRegistry, PathLike
from repro.core.context import Context
from repro.core.metrics import MetricBuffer, MetricKey
from repro.core.params import LoggedParam, ParamStore
from repro.errors import TrackingError


class RunStatus(enum.Enum):
    """Lifecycle states of a run."""

    CREATED = "created"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"
    TRUNCATED = "truncated"  # walltime-limited (Figure 3's empty cells)


@dataclass
class EpochState:
    """Recorded interval of one epoch within a context."""

    index: int
    start_time: float
    end_time: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.start_time


@dataclass
class ContextState:
    """Bookkeeping for one context used by a run."""

    context: Context
    first_used: float
    last_used: float
    epochs: Dict[int, EpochState] = field(default_factory=dict)
    current_epoch: Optional[int] = None

    def touch(self, now: float) -> None:
        self.last_used = max(self.last_used, now)


@dataclass
class CommandRecord:
    """One console command captured by development tracking (§3.1)."""

    time: float
    command: str
    output: str = ""
    exit_code: int = 0


def utc(ts: float) -> _dt.datetime:
    """Epoch seconds -> aware UTC datetime (used for PROV timestamps)."""
    return _dt.datetime.fromtimestamp(ts, tz=_dt.timezone.utc)


class RunExecution:
    """A single run: parameters, metrics, artifacts, contexts and epochs."""

    def __init__(
        self,
        experiment_name: str,
        run_id: Optional[str] = None,
        run_index: int = 0,
        save_dir: Optional[PathLike] = None,
        user_namespace: str = "http://example.org/",
        username: str = "user",
        clock: Optional[Callable[[], float]] = None,
        rank: Optional[int] = None,
    ) -> None:
        if not experiment_name:
            raise TrackingError("experiment_name must be non-empty")
        self.experiment_name = experiment_name
        self.run_index = run_index
        self.run_id = run_id or f"{experiment_name}_{run_index}_{uuid.uuid4().hex[:8]}"
        self.user_namespace = user_namespace
        self.username = username
        self.clock: Callable[[], float] = clock or _time.time
        self.rank = rank

        self.save_dir = Path(save_dir) if save_dir is not None else Path("prov") / self.run_id
        self.save_dir.mkdir(parents=True, exist_ok=True)

        self.params = ParamStore()
        self.metrics: Dict[MetricKey, MetricBuffer] = {}
        self.artifacts = ArtifactRegistry(self.save_dir / "artifacts")
        self.contexts: Dict[Context, ContextState] = {}
        self.commands: List[CommandRecord] = []
        self.captured_output: List[str] = []

        self.status = RunStatus.CREATED
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self._collectors: List[Any] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "RunExecution":
        if self.status is not RunStatus.CREATED:
            raise TrackingError(f"run {self.run_id} already started")
        self.start_time = self.clock()
        self.status = RunStatus.RUNNING
        return self

    def end(self, status: RunStatus = RunStatus.FINISHED) -> None:
        """Close the run with a terminal *status*, sealing open epochs/contexts."""
        if self.status is not RunStatus.RUNNING:
            raise TrackingError(f"run {self.run_id} is not running")
        if status in (RunStatus.CREATED, RunStatus.RUNNING):
            raise TrackingError(f"invalid terminal status: {status}")
        self.end_time = self.clock()
        # close any dangling epochs/contexts at the end timestamp
        for state in self.contexts.values():
            if state.current_epoch is not None:
                epoch = state.epochs[state.current_epoch]
                if epoch.end_time is None:
                    epoch.end_time = self.end_time
                state.current_epoch = None
            state.touch(self.end_time)
        self.status = status

    def _require_running(self) -> None:
        if self.status is not RunStatus.RUNNING:
            raise TrackingError(
                f"run {self.run_id} is not running (status={self.status.value})"
            )

    @property
    def duration(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    # ------------------------------------------------------------------
    # contexts & epochs
    # ------------------------------------------------------------------
    def _context_state(self, context: Union[Context, str]) -> ContextState:
        ctx = Context.of(context)
        state = self.contexts.get(ctx)
        now = self.clock()
        if state is None:
            state = ContextState(context=ctx, first_used=now, last_used=now)
            self.contexts[ctx] = state
        else:
            state.touch(now)
        return state

    def start_epoch(self, context: Union[Context, str], epoch: Optional[int] = None) -> int:
        """Open an epoch in *context*; returns its index (auto-incremented)."""
        self._require_running()
        state = self._context_state(context)
        if state.current_epoch is not None:
            raise TrackingError(
                f"epoch {state.current_epoch} still open in context {state.context}"
            )
        if epoch is None:
            epoch = max(state.epochs) + 1 if state.epochs else 0
        if epoch in state.epochs:
            raise TrackingError(f"epoch {epoch} already recorded in {state.context}")
        state.epochs[epoch] = EpochState(index=epoch, start_time=self.clock())
        state.current_epoch = epoch
        return epoch

    def end_epoch(self, context: Union[Context, str]) -> EpochState:
        """Record a one-time parameter (input by default), optionally scoped to a context."""
        """Close the open epoch in *context*."""
        self._require_running()
        state = self._context_state(context)
        if state.current_epoch is None:
            raise TrackingError(f"no open epoch in context {state.context}")
        epoch = state.epochs[state.current_epoch]
        epoch.end_time = self.clock()
        state.current_epoch = None
        return epoch

    # ------------------------------------------------------------------
    # logging
    # ------------------------------------------------------------------
    def log_param(
        self,
        name: str,
        value: Any,
        is_input: bool = True,
        context: Optional[Union[Context, str]] = None,
    ) -> LoggedParam:
        """Record a one-time parameter (input by default), optionally scoped to a context."""
        self._require_running()
        ctx = Context.of(context) if context is not None else None
        if ctx is not None:
            self._context_state(ctx)
        return self.params.log(name, value, is_input=is_input, context=ctx)

    def log_metric(
        self,
        name: str,
        value: float,
        context: Union[Context, str] = Context.TRAINING,
        step: Optional[int] = None,
        is_input: bool = False,
    ) -> None:
        """Record one metric sample in *context* at *step*.

        The sample is stamped with the clock time and the context's open
        epoch (if any).
        """
        self._require_running()
        state = self._context_state(context)
        key = MetricKey(name, state.context)
        buffer = self.metrics.get(key)
        if buffer is None:
            buffer = MetricBuffer(key, is_input=is_input)
            self.metrics[key] = buffer
        if step is None:
            step = len(buffer)
        epoch = state.current_epoch if state.current_epoch is not None else -1
        buffer.append(int(step), float(value), self.clock(), epoch)

    def log_metrics(
        self,
        values: Dict[str, float],
        context: Union[Context, str] = Context.TRAINING,
        step: Optional[int] = None,
    ) -> None:
        """Log several metrics at one step."""
        for name, value in values.items():
            self.log_metric(name, value, context=context, step=step)

    def log_metric_array(
        self,
        name: str,
        steps: np.ndarray,
        values: np.ndarray,
        times: np.ndarray,
        context: Union[Context, str] = Context.TRAINING,
        epochs: Optional[np.ndarray] = None,
        is_input: bool = False,
    ) -> None:
        """Bulk-append a pre-computed series (simulator fast path)."""
        self._require_running()
        state = self._context_state(context)
        key = MetricKey(name, state.context)
        buffer = self.metrics.get(key)
        if buffer is None:
            buffer = MetricBuffer(key, is_input=is_input)
            self.metrics[key] = buffer
        buffer.extend(steps, values, times, epochs)
        # samples belong to this context, so its interval must cover them
        if len(buffer):
            state.touch(float(np.max(np.asarray(times, dtype=np.float64))))

    def get_metric(
        self, name: str, context: Union[Context, str] = Context.TRAINING
    ) -> MetricBuffer:
        """Register a file artifact (copied into the run directory by default)."""
        key = MetricKey(name, Context.of(context))
        try:
            return self.metrics[key]
        except KeyError:
            raise TrackingError(f"metric not logged: {key.series_name()}") from None

    def log_artifact(
        self,
        path: PathLike,
        name: Optional[str] = None,
        is_input: bool = False,
        is_model: bool = False,
        context: Optional[Union[Context, str]] = None,
        step: Optional[int] = None,
        copy: bool = True,
    ) -> Artifact:
        """Write *data* into the artifact directory and register it."""
        self._require_running()
        ctx = Context.of(context) if context is not None else None
        if ctx is not None:
            self._context_state(ctx)
        return self.artifacts.log_file(
            path,
            name=name,
            is_input=is_input,
            is_model=is_model,
            context=ctx,
            logged_at=self.clock(),
            step=step,
            copy=copy,
        )

    def log_artifact_bytes(
        self,
        name: str,
        data: bytes,
        is_input: bool = False,
        is_model: bool = False,
        context: Optional[Union[Context, str]] = None,
        step: Optional[int] = None,
    ) -> Artifact:
        """Write *data* into the artifact directory and register it."""
        self._require_running()
        ctx = Context.of(context) if context is not None else None
        if ctx is not None:
            self._context_state(ctx)
        return self.artifacts.log_bytes(
            name,
            data,
            is_input=is_input,
            is_model=is_model,
            context=ctx,
            logged_at=self.clock(),
            step=step,
        )

    # ------------------------------------------------------------------
    # development tracking (§3.1)
    # ------------------------------------------------------------------
    def log_execution_command(
        self, command: str, output: str = "", exit_code: int = 0
    ) -> CommandRecord:
        """Record a console command plus its textual output."""
        self._require_running()
        record = CommandRecord(self.clock(), command, output, exit_code)
        self.commands.append(record)
        return record

    def capture_output(self, text: str) -> None:
        """Append a fragment of the training script's stdout/stderr."""
        self._require_running()
        self.captured_output.append(text)

    # ------------------------------------------------------------------
    # collector plugins
    # ------------------------------------------------------------------
    def add_collector(self, collector: Any) -> None:
        """Attach a collector plugin (see :mod:`repro.core.collectors`)."""
        self._collectors.append(collector)

    @property
    def collectors(self) -> List[Any]:
        return list(self._collectors)

    def collect_system_metrics(
        self,
        context: Union[Context, str] = Context.TRAINING,
        step: Optional[int] = None,
    ) -> Dict[str, float]:
        """Poll every attached collector and log the readings as metrics."""
        self._require_running()
        readings: Dict[str, float] = {}
        for collector in self._collectors:
            for name, value in collector.collect(self).items():
                readings[name] = value
                self.log_metric(name, value, context=context, step=step)
        return readings

    # ------------------------------------------------------------------
    # persistence (delegates to provgen / storage / crate)
    # ------------------------------------------------------------------
    def save(
        self,
        metric_format: str = "zarrlike",
        create_graph: bool = False,
        create_rocrate: bool = False,
        validate: bool = True,
    ) -> Dict[str, Path]:
        """Write the provenance file (and metric store / crate) to disk.

        ``metric_format`` is one of ``inline`` (samples embedded in the
        PROV-JSON — the Table 1 baseline), ``zarrlike`` or ``netcdflike``.
        Returns a dict of the paths written (keys: ``prov``, optionally
        ``metrics``, ``graph``, ``rocrate``).
        """
        from repro.core.provgen import save_run

        return save_run(
            self,
            metric_format=metric_format,
            create_graph=create_graph,
            create_rocrate=create_rocrate,
            validate=validate,
        )

    def __repr__(self) -> str:
        return (
            f"RunExecution({self.run_id!r}, status={self.status.value}, "
            f"params={len(self.params)}, metrics={len(self.metrics)})"
        )


class Experiment:
    """A named group of runs sharing a save directory."""

    def __init__(
        self,
        name: str,
        root_dir: PathLike = "prov",
        user_namespace: str = "http://example.org/",
        username: str = "user",
    ) -> None:
        if not name:
            raise TrackingError("experiment name must be non-empty")
        self.name = name
        self.root_dir = Path(root_dir)
        self.user_namespace = user_namespace
        self.username = username
        self.runs: List[RunExecution] = []

    def new_run(
        self,
        run_id: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
        rank: Optional[int] = None,
    ) -> RunExecution:
        """Create (but do not start) the next run of this experiment."""
        index = len(self.runs)
        run = RunExecution(
            experiment_name=self.name,
            run_id=run_id,
            run_index=index,
            save_dir=self.root_dir / (run_id or f"{self.name}_{index}"),
            user_namespace=self.user_namespace,
            username=self.username,
            clock=clock,
            rank=rank,
        )
        self.runs.append(run)
        return run

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)
