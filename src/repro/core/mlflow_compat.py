"""MLflow-compatible façade (§4: "the integration of a plugin to allow for
integration between the two is already in the works").

yProv4ML "works along side MLFlow, so to offer a standardized pipeline
through which to log data, allowing the user to modify minimal portions of
code".  This module provides exactly that adapter: code written against the
``mlflow`` fluent API runs unchanged against yProv4ML provenance tracking —
change ``import mlflow`` to ``from repro.core import mlflow_compat as
mlflow`` and every ``log_param`` / ``log_metric`` lands in a W3C PROV
document instead of (or conceptually, in addition to) an MLflow store.

Supported surface: ``set_tracking_uri``, ``set_experiment``, ``start_run``
(as a context manager with ``run.info``), ``active_run``, ``log_param(s)``,
``log_metric(s)``, ``log_artifact``, ``log_text``, ``log_dict``,
``set_tag(s)``, ``end_run``.  MLflow has no notion of contexts; metrics go
to TRAINING unless the (extension) ``context=`` keyword is used.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.core import session as _session
from repro.core.context import Context
from repro.errors import NoActiveRunError

_state: Dict[str, Any] = {
    "tracking_dir": Path("mlruns_prov"),
    "experiment": "Default",
}


@dataclass
class RunInfo:
    """Subset of mlflow.entities.RunInfo that instrumented code reads."""

    run_id: str
    experiment_id: str
    status: str
    artifact_uri: str


class ActiveRun:
    """Context-manager wrapper matching ``mlflow.ActiveRun``."""

    def __init__(self, run) -> None:
        self._run = run

    @property
    def info(self) -> RunInfo:
        """MLflow-style RunInfo view of the wrapped run."""
        return RunInfo(
            run_id=self._run.run_id,
            experiment_id=self._run.experiment_name,
            status=self._run.status.value.upper(),
            artifact_uri=str(self._run.artifacts.artifact_dir),
        )

    def __enter__(self) -> "ActiveRun":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            end_run()
        else:
            end_run(status="FAILED")
        return False


def set_tracking_uri(uri: Union[str, Path]) -> None:
    """MLflow's tracking URI maps to the provenance save directory."""
    text = str(uri)
    if text.startswith("file://"):
        text = text[len("file://"):]
    _state["tracking_dir"] = Path(text)


def get_tracking_uri() -> str:
    """The current tracking directory (mlflow.get_tracking_uri)."""
    return str(_state["tracking_dir"])


def set_experiment(experiment_name: str) -> None:
    """Select the experiment for subsequent runs (mlflow.set_experiment)."""
    _state["experiment"] = experiment_name


def start_run(
    run_name: Optional[str] = None,
    nested: bool = False,
    tags: Optional[Dict[str, str]] = None,
) -> ActiveRun:
    """Open a run (mlflow semantics: one active run; nesting unsupported)."""
    if nested:
        raise NotImplementedError("nested runs are not part of the paper's model")
    run = _session.start_run(
        experiment_name=_state["experiment"],
        provenance_save_dir=_state["tracking_dir"],
        run_id=run_name,
    )
    for key, value in (tags or {}).items():
        run.log_param(f"tag.{key}", value)
    return ActiveRun(run)


def active_run() -> Optional[ActiveRun]:
    """The active run wrapper, or None (mlflow.active_run)."""
    if not _session.has_active_run():
        return None
    return ActiveRun(_session.active_run())


def end_run(status: str = "FINISHED"):
    """Close the active run, saving provenance (zarr-offloaded metrics)."""
    from repro.core.experiment import RunStatus

    mapped = {
        "FINISHED": RunStatus.FINISHED,
        "FAILED": RunStatus.FAILED,
        "KILLED": RunStatus.FAILED,
    }.get(status.upper(), RunStatus.FINISHED)
    return _session.end_run(status=mapped)


# -- logging -----------------------------------------------------------------

def log_param(key: str, value: Any) -> Any:
    """Log a parameter (mlflow.log_param)."""
    _session.log_param(key, value)
    return value


def log_params(params: Dict[str, Any]) -> None:
    """Log several parameters (mlflow.log_params)."""
    _session.log_params(params)


def log_metric(key: str, value: float, step: Optional[int] = None,
               context: Union[Context, str] = Context.TRAINING) -> None:
    """Log one metric sample (mlflow.log_metric; context is an extension)."""
    _session.log_metric(key, value, context=context, step=step)


def log_metrics(metrics: Dict[str, float], step: Optional[int] = None,
                context: Union[Context, str] = Context.TRAINING) -> None:
    """Log several metrics at one step (mlflow.log_metrics)."""
    _session.log_metrics(metrics, context=context, step=step)


def log_artifact(local_path: Union[str, Path],
                 artifact_path: Optional[str] = None) -> None:
    """Copy a local file into the run artifacts (mlflow.log_artifact)."""
    name = None
    if artifact_path is not None:
        name = f"{artifact_path}/{Path(local_path).name}"
    _session.log_artifact(local_path, name=name)


def log_text(text: str, artifact_file: str) -> None:
    """Write a text artifact (mlflow.log_text)."""
    _session.active_run().log_artifact_bytes(artifact_file, text.encode("utf-8"))


def log_dict(dictionary: Dict[str, Any], artifact_file: str) -> None:
    """Write a dict as a JSON artifact (mlflow.log_dict)."""
    payload = json.dumps(dictionary, indent=2, sort_keys=True, default=str)
    _session.active_run().log_artifact_bytes(artifact_file, payload.encode("utf-8"))


def set_tag(key: str, value: Any) -> None:
    """MLflow tags map to (string) parameters under the ``tag.`` prefix."""
    _session.log_param(f"tag.{key}", str(value))


def set_tags(tags: Dict[str, Any]) -> None:
    """Set several tags (mlflow.set_tags)."""
    for key, value in tags.items():
        set_tag(key, value)


def get_artifact_uri(artifact_path: Optional[str] = None) -> str:
    """The active run's artifact location (mlflow.get_artifact_uri)."""
    run = _session.active_run()
    base = Path(run.artifacts.artifact_dir)
    return str(base / artifact_path) if artifact_path else str(base)
