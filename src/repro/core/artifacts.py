"""Artifact tracking.

Artifacts are "any file or output that may be used later in the next phases
of the workflow" (paper §4) — model checkpoints, source code, generated
plots, input datasets.  The registry copies (or references) files into the
run's artifact directory, content-hashes them, and records direction
(input → ``used``, output → ``wasGeneratedBy``) plus the context and
timestamp of logging.
"""

from __future__ import annotations

import hashlib
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.atomicio import atomic_write_bytes
from repro.core.context import Context
from repro.errors import ArtifactError

PathLike = Union[str, Path]

_HASH_CHUNK = 1 << 20


def sha256_file(path: PathLike) -> str:
    """Streaming SHA-256 of a file (constant memory)."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as fh:
        while True:
            chunk = fh.read(_HASH_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class Artifact:
    """One tracked artifact."""

    name: str
    path: Path
    sha256: str
    size_bytes: int
    is_input: bool
    is_model: bool
    context: Optional[Context]
    logged_at: float
    step: Optional[int] = None

    @property
    def uri(self) -> str:
        return self.path.as_uri() if self.path.is_absolute() else str(self.path)


class ArtifactRegistry:
    """Artifacts of one run, stored under ``<run_dir>/artifacts/``."""

    def __init__(self, artifact_dir: PathLike) -> None:
        self.artifact_dir = Path(artifact_dir)
        self.artifact_dir.mkdir(parents=True, exist_ok=True)
        self._artifacts: Dict[str, Artifact] = {}

    def log_file(
        self,
        source: PathLike,
        name: Optional[str] = None,
        is_input: bool = False,
        is_model: bool = False,
        context: Optional[Context] = None,
        logged_at: float = 0.0,
        step: Optional[int] = None,
        copy: bool = True,
    ) -> Artifact:
        """Register a file as an artifact.

        With ``copy=True`` (default) the file is copied into the run's
        artifact directory; otherwise only the original path is referenced
        (for large inputs like datasets).
        """
        source = Path(source)
        if not source.is_file():
            raise ArtifactError(f"artifact file not found: {source}")
        name = name or source.name
        if name in self._artifacts:
            raise ArtifactError(f"artifact already logged: {name!r}")
        if copy:
            dest = self.artifact_dir / name
            dest.parent.mkdir(parents=True, exist_ok=True)
            if source.resolve() != dest.resolve():
                shutil.copy2(source, dest)
            path = dest
        else:
            path = source
        artifact = Artifact(
            name=name,
            path=path,
            sha256=sha256_file(path),
            size_bytes=path.stat().st_size,
            is_input=is_input,
            is_model=is_model,
            context=context,
            logged_at=logged_at,
            step=step,
        )
        self._artifacts[name] = artifact
        return artifact

    def log_bytes(
        self,
        name: str,
        data: bytes,
        is_input: bool = False,
        is_model: bool = False,
        context: Optional[Context] = None,
        logged_at: float = 0.0,
        step: Optional[int] = None,
    ) -> Artifact:
        """Write *data* into the artifact directory and register it.

        Used for synthesized artifacts (serialized model states, captured
        stdout, command logs) that never existed as user files.
        """
        if name in self._artifacts:
            raise ArtifactError(f"artifact already logged: {name!r}")
        dest = self.artifact_dir / name
        dest.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(dest, data)
        artifact = Artifact(
            name=name,
            path=dest,
            sha256=hashlib.sha256(data).hexdigest(),
            size_bytes=len(data),
            is_input=is_input,
            is_model=is_model,
            context=context,
            logged_at=logged_at,
            step=step,
        )
        self._artifacts[name] = artifact
        return artifact

    def restore(self, artifact: Artifact) -> Artifact:
        """Re-register an :class:`Artifact` from persisted metadata.

        Used by journal recovery (:mod:`repro.core.recover`): the bytes were
        hashed when originally logged, so the record is trusted as-is and no
        file access happens here.
        """
        if artifact.name in self._artifacts:
            raise ArtifactError(f"artifact already logged: {artifact.name!r}")
        self._artifacts[artifact.name] = artifact
        return artifact

    # -- access -----------------------------------------------------------
    def get(self, name: str) -> Artifact:
        try:
            return self._artifacts[name]
        except KeyError:
            raise ArtifactError(f"artifact not logged: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._artifacts

    def __iter__(self) -> Iterator[Artifact]:
        return iter(self._artifacts.values())

    def __len__(self) -> int:
        return len(self._artifacts)

    @property
    def inputs(self) -> List[Artifact]:
        return [a for a in self._artifacts.values() if a.is_input]

    @property
    def outputs(self) -> List[Artifact]:
        return [a for a in self._artifacts.values() if not a.is_input]

    @property
    def models(self) -> List[Artifact]:
        return [a for a in self._artifacts.values() if a.is_model]

    def verify(self) -> List[str]:
        """Re-hash all artifacts; returns names whose content changed/vanished."""
        corrupted: List[str] = []
        for artifact in self._artifacts.values():
            if not artifact.path.is_file():
                corrupted.append(artifact.name)
            elif sha256_file(artifact.path) != artifact.sha256:
                corrupted.append(artifact.name)
        return corrupted
