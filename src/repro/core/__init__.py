"""yProv4ML core: the paper's primary contribution.

An MLflow-style logging façade that records parameters, metrics and
artifacts during an ML run — organized by *context* (training / validation /
testing / user-defined) and *epoch* per Figure 2 — and emits a W3C PROV
document in PROV-JSON at the end of the run (Figure 1), optionally
offloading bulky metric time-series to compressed array stores (Table 1)
and packaging the artifact directory as an RO-Crate (Table 2).

Most users interact through the module-level session API re-exported at the
package root (``repro.start_run`` / ``repro.log_metric`` / ...); the classes
here are the underlying object model.
"""

from repro.core.context import Context
from repro.core.metrics import MetricBuffer, MetricKey, MetricSample
from repro.core.params import LoggedParam, ParamStore
from repro.core.artifacts import Artifact, ArtifactRegistry
from repro.core.experiment import Experiment, RunExecution, RunStatus
from repro.core.provgen import build_prov_document, RunSummary, summarize_document
from repro.core.collectors import (
    CollectorPlugin,
    SystemStatsCollector,
    EnergyCollector,
    CarbonCollector,
    GPUStatsCollector,
    collector_registry,
)
from repro.core.comparison import RunDiff, compare_runs
from repro.core.registry import ExperimentRegistry
from repro.core.reproduce import (
    ExperimentReplayer,
    ReproductionReport,
    default_replayer,
)
from repro.core.multirun import (
    build_experiment_document,
    experiment_comparison_table,
)

__all__ = [
    "Context",
    "MetricBuffer",
    "MetricKey",
    "MetricSample",
    "LoggedParam",
    "ParamStore",
    "Artifact",
    "ArtifactRegistry",
    "Experiment",
    "RunExecution",
    "RunStatus",
    "build_prov_document",
    "RunSummary",
    "summarize_document",
    "CollectorPlugin",
    "SystemStatsCollector",
    "EnergyCollector",
    "CarbonCollector",
    "GPUStatsCollector",
    "collector_registry",
    "RunDiff",
    "compare_runs",
    "ExperimentRegistry",
    "ExperimentReplayer",
    "ReproductionReport",
    "default_replayer",
    "build_experiment_document",
    "experiment_comparison_table",
]
