"""Run recovery: replay a dead run's write-ahead journal into PROV-JSON.

A run killed after its first journal flush (SIGKILL at the walltime cap, a
node failure, an OOM) leaves ``journal.wal`` in its save directory but no
``prov.json``.  :func:`recover_run` replays the journal through the very
same :class:`~repro.core.experiment.RunExecution` logging code paths —
driven by a clock that returns the journaled timestamps — so the recovered
document is bit-identical to what a clean ``end_run`` would have produced
for the flushed prefix of events, except that the run activity is marked
with ``repro:aborted`` and a ``failed`` status when no ``end_run`` event
made it to disk.

Exposed via the CLI as ``yprov recover <run-dir-or-journal>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

import numpy as np

from repro.core.artifacts import Artifact
from repro.core.context import Context
from repro.core.experiment import RunExecution, RunStatus
from repro.core.journal import JOURNAL_NAME, journal_path_for, read_journal
from repro.errors import RecoveryError, TrackingError

PathLike = Union[str, Path]


class _ReplayClock:
    """Callable clock fed from journaled timestamps (bit-exact replay)."""

    __slots__ = ("value",)

    def __init__(self, start: float = 0.0) -> None:
        self.value = float(start)

    def __call__(self) -> float:
        return self.value


@dataclass
class RecoveryReport:
    """What a journal replay found (and could not apply)."""

    journal_path: Path
    n_records: int = 0
    bad_records: int = 0
    applied: int = 0
    skipped: List[str] = field(default_factory=list)
    missing_artifacts: List[str] = field(default_factory=list)
    aborted: bool = False

    @property
    def is_clean(self) -> bool:
        """True when every journal record verified and replayed."""
        return self.bad_records == 0 and not self.skipped

    def summary(self) -> str:
        """One-line human summary."""
        state = "aborted run" if self.aborted else "cleanly ended run"
        return (
            f"{state}: {self.applied}/{self.n_records} events replayed, "
            f"{self.bad_records} corrupt record(s), "
            f"{len(self.skipped)} skipped, "
            f"{len(self.missing_artifacts)} missing artifact file(s)"
        )


def _resolve_journal(path: PathLike) -> Path:
    path = Path(path)
    if path.is_dir():
        path = journal_path_for(path)
    if not path.is_file():
        raise RecoveryError(f"no journal found at {path}")
    return path


def replay_journal(path: PathLike) -> Tuple[RunExecution, RecoveryReport]:
    """Rebuild a :class:`RunExecution` from its journal.

    *path* is the journal file or the run directory containing it.  Records
    that fail checksum verification or cannot be applied are skipped and
    reported; the intact prefix of the run always survives.  If the journal
    holds no ``end_run`` event the run is sealed at the last journaled
    timestamp with status ``failed`` and its ``aborted`` flag set.
    """
    journal_path = _resolve_journal(path)
    scan = read_journal(journal_path)
    report = RecoveryReport(
        journal_path=journal_path,
        n_records=len(scan.records),
        bad_records=scan.bad_records,
        skipped=list(scan.issues),
    )
    records = scan.records
    start_idx = next(
        (i for i, r in enumerate(records) if r["k"] == "start_run"), None
    )
    if start_idx is None:
        raise RecoveryError(
            f"journal {journal_path} holds no start_run event; nothing to recover"
        )
    head = records[start_idx]
    clock = _ReplayClock(float(head.get("t", 0.0)))
    run = RunExecution(
        experiment_name=str(head.get("experiment", "recovered")),
        run_id=str(head.get("run_id")) if head.get("run_id") else None,
        run_index=int(head.get("run_index", 0)),
        save_dir=journal_path.parent,
        user_namespace=str(head.get("user_namespace", "http://example.org/")),
        username=str(head.get("username", "user")),
        clock=clock,
        rank=head.get("rank"),
        journal=False,  # never journal the replay of a journal
        resumed_from=head.get("resumed_from"),
    )
    run.start()
    report.applied += 1

    ended = False
    for record in records[start_idx + 1:]:
        kind = record["k"]
        if "t" in record and record["t"] is not None:
            clock.value = float(record["t"])
        try:
            if kind == "start_run":
                raise TrackingError("second start_run event in one journal")
            elif kind == "end_run":
                run.end(RunStatus(str(record.get("status", "failed"))))
                ended = True
            else:
                _apply_event(run, kind, record, report)
        except (TrackingError, ValueError, KeyError, TypeError) as exc:
            report.skipped.append(f"{kind}: {type(exc).__name__}: {exc}")
            continue
        report.applied += 1

    if not ended:
        run.aborted = True
        report.aborted = True
        run.end(RunStatus.FAILED)
    return run, report


def _apply_event(
    run: RunExecution, kind: str, rec: Dict[str, Any], report: RecoveryReport
) -> None:
    """Dispatch one journaled event through the normal logging API."""
    ctx = rec.get("c")
    if kind == "param":
        run.log_param(rec["n"], rec["v"], is_input=bool(rec.get("i", True)),
                      context=ctx)
    elif kind == "metric":
        run.log_metric(rec["n"], float(rec["v"]), context=ctx or Context.TRAINING,
                       step=int(rec["s"]), is_input=bool(rec.get("i", False)))
    elif kind == "metric_array":
        epochs = rec.get("epochs")
        run.log_metric_array(
            rec["n"],
            np.asarray(rec["steps"], dtype=np.int64),
            np.asarray(rec["values"], dtype=np.float64),
            np.asarray(rec["times"], dtype=np.float64),
            context=ctx or Context.TRAINING,
            epochs=np.asarray(epochs, dtype=np.int64) if epochs is not None else None,
            is_input=bool(rec.get("i", False)),
        )
    elif kind == "start_epoch":
        run.start_epoch(ctx, rec["e"])
    elif kind == "end_epoch":
        run.end_epoch(ctx)
    elif kind == "artifact":
        _restore_artifact(run, rec, report)
    elif kind == "command":
        run.log_execution_command(
            rec.get("command", ""), rec.get("output", ""),
            int(rec.get("exit_code", 0)),
        )
    elif kind == "output":
        run.capture_output(rec.get("text", ""))
    else:
        raise TrackingError(f"unknown journal event kind: {kind!r}")


def _restore_artifact(
    run: RunExecution, rec: Dict[str, Any], report: RecoveryReport
) -> None:
    """Re-register an artifact from its journaled metadata.

    The artifact bytes were written to disk *before* the journal record, so
    the file normally exists; when it does not (lost filesystem, partial
    copy) the metadata is restored anyway and the loss reported.
    """
    ctx = Context.of(rec["c"]) if rec.get("c") else None
    if ctx is not None:
        run._context_state(ctx, float(rec["t"]))
    path = Path(rec["path"])
    if not path.is_file():
        report.missing_artifacts.append(str(path))
    run.artifacts.restore(
        Artifact(
            name=rec["n"],
            path=path,
            sha256=str(rec.get("sha256", "")),
            size_bytes=int(rec.get("size", 0)),
            is_input=bool(rec.get("i", False)),
            is_model=bool(rec.get("m", False)),
            context=ctx,
            logged_at=float(rec["t"]),
            step=rec.get("s"),
        )
    )


def recover_run(
    path: PathLike,
    metric_format: str = "zarrlike",
    validate: bool = True,
    force: bool = False,
) -> Tuple[Dict[str, Path], RecoveryReport]:
    """Replay a dead run's journal and persist its (partial) provenance.

    Returns the written paths (as :meth:`RunExecution.save` does) plus the
    recovery report.  Refuses to overwrite an existing ``prov.json`` unless
    *force* is set.  The journal itself is left untouched for forensics.
    """
    journal_path = _resolve_journal(path)
    prov_path = journal_path.parent / "prov.json"
    if prov_path.exists() and not force:
        raise RecoveryError(
            f"{prov_path} already exists; this run does not need recovery "
            f"(use force=True to rebuild it from the journal)"
        )
    run, report = replay_journal(journal_path)
    paths = run.save(metric_format=metric_format, validate=validate)
    return paths, report


def find_dead_runs(root: PathLike) -> List[Path]:
    """Run directories under *root* with a journal but no final provenance."""
    root = Path(root)
    dead: List[Path] = []
    if not root.exists():
        return dead
    for journal in sorted(root.rglob(JOURNAL_NAME)):
        if not (journal.parent / "prov.json").exists():
            dead.append(journal.parent)
    return dead


def recover_all(
    root: PathLike,
    metric_format: str = "zarrlike",
    validate: bool = True,
) -> Dict[str, Tuple[Dict[str, Path], RecoveryReport]]:
    """Recover every dead run under *root*; returns results keyed by run dir."""
    results: Dict[str, Tuple[Dict[str, Path], RecoveryReport]] = {}
    for run_dir in find_dead_runs(root):
        results[str(run_dir)] = recover_run(
            run_dir, metric_format=metric_format, validate=validate
        )
    return results
