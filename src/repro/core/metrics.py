"""Metric time-series buffers.

A metric is identified by ``(name, context)`` and accumulates samples
``(step, value, time, epoch)``.  Buffers grow by amortized doubling over
pre-allocated NumPy arrays — per the HPC guides, appending a sample is O(1)
with no per-sample Python object allocation, which keeps the logging
overhead negligible next to a training step (see
``benchmarks/bench_ablation_overhead.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, NamedTuple, Optional, Tuple

import numpy as np

from repro.core.context import Context
from repro.errors import TrackingError
from repro.storage.base import SeriesData

_INITIAL_CAPACITY = 256


class MetricKey(NamedTuple):
    """Identity of a metric series: name within a context."""

    name: str
    context: Context

    def series_name(self) -> str:
        """Flat name used by storage backends (``loss@TRAINING``)."""
        return f"{self.name}@{self.context.name}"

    @classmethod
    def parse(cls, series_name: str) -> "MetricKey":
        name, sep, ctx = series_name.rpartition("@")
        if not sep:
            raise TrackingError(f"not a metric series name: {series_name!r}")
        return cls(name, Context.of(ctx))


class MetricSample(NamedTuple):
    """One logged observation."""

    step: int
    value: float
    time: float
    epoch: int


@dataclass
class MetricBuffer:
    """Append-only columnar buffer for one metric series."""

    key: MetricKey
    is_input: bool = False

    def __post_init__(self) -> None:
        self._n = 0
        self._steps = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._values = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._times = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._epochs = np.empty(_INITIAL_CAPACITY, dtype=np.int64)

    def _grow(self, needed: int) -> None:
        cap = self._steps.shape[0]
        if needed <= cap:
            return
        new_cap = max(needed, cap * 2)
        for attr in ("_steps", "_values", "_times", "_epochs"):
            old = getattr(self, attr)
            fresh = np.empty(new_cap, dtype=old.dtype)
            fresh[: self._n] = old[: self._n]
            setattr(self, attr, fresh)

    def append(self, step: int, value: float, time: float, epoch: int = -1) -> None:
        """Record one sample.  ``epoch=-1`` means "no epoch structure"."""
        self._grow(self._n + 1)
        i = self._n
        self._steps[i] = step
        self._values[i] = value
        self._times[i] = time
        self._epochs[i] = epoch
        self._n = i + 1

    def extend(
        self,
        steps: np.ndarray,
        values: np.ndarray,
        times: np.ndarray,
        epochs: Optional[np.ndarray] = None,
    ) -> None:
        """Bulk-append parallel arrays (vectorized path for the simulator)."""
        steps = np.asarray(steps, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        times = np.asarray(times, dtype=np.float64)
        if epochs is None:
            epochs = np.full(steps.shape[0], -1, dtype=np.int64)
        else:
            epochs = np.asarray(epochs, dtype=np.int64)
        if not (steps.shape == values.shape == times.shape == epochs.shape):
            raise TrackingError("extend() arrays must have matching shapes")
        k = steps.shape[0]
        self._grow(self._n + k)
        sl = slice(self._n, self._n + k)
        self._steps[sl] = steps
        self._values[sl] = values
        self._times[sl] = times
        self._epochs[sl] = epochs
        self._n += k

    # -- views ----------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def steps(self) -> np.ndarray:
        return self._steps[: self._n]

    @property
    def values(self) -> np.ndarray:
        return self._values[: self._n]

    @property
    def times(self) -> np.ndarray:
        return self._times[: self._n]

    @property
    def epochs(self) -> np.ndarray:
        return self._epochs[: self._n]

    @property
    def last_value(self) -> float:
        if self._n == 0:
            raise TrackingError(f"metric {self.key.series_name()} has no samples")
        return float(self._values[self._n - 1])

    def epoch_values(self, epoch: int) -> np.ndarray:
        """Values logged during a specific epoch (view-free boolean mask)."""
        mask = self.epochs == epoch
        return self.values[mask]

    def stats(self) -> Dict[str, float]:
        """Summary statistics of the values (used in provenance attributes)."""
        if self._n == 0:
            return {"count": 0}
        values = self.values
        if bool(np.all(np.isnan(values))):
            # nanmin/nanmax would emit an All-NaN RuntimeWarning (a
            # warnings-module warning errstate can't silence)
            nan = float("nan")
            return {"count": int(self._n), "min": nan, "max": nan,
                    "mean": nan, "last": nan}
        # invalid: all-NaN / mixed-inf slices; over: a diverged series can
        # overflow the float64 running sum inside nanmean — the stats then
        # report inf rather than warning (or erroring under -W error).
        with np.errstate(invalid="ignore", over="ignore"):
            return {
                "count": int(self._n),
                "min": float(np.nanmin(values)),
                "max": float(np.nanmax(values)),
                "mean": float(np.nanmean(values)),
                "last": float(values[-1]),
            }

    def to_series(self) -> SeriesData:
        """Snapshot as storage-ready column data (copies, detached)."""
        return SeriesData(
            {
                "steps": self.steps.copy(),
                "values": self.values.copy(),
                "times": self.times.copy(),
                "epochs": self.epochs.copy(),
            },
            attrs={
                "metric": self.key.name,
                "context": self.key.context.name,
                "is_input": self.is_input,
            },
        )

    @classmethod
    def from_series(cls, series: SeriesData) -> "MetricBuffer":
        """Inverse of :meth:`to_series` (for reloading stores)."""
        attrs = series.attrs
        key = MetricKey(str(attrs["metric"]), Context.of(str(attrs["context"])))
        buf = cls(key, is_input=bool(attrs.get("is_input", False)))
        buf.extend(
            series.columns["steps"],
            series.columns["values"],
            series.columns["times"],
            series.columns.get("epochs"),
        )
        return buf
