"""Module-level session API — the MLflow-like façade the paper describes.

One global active run per process (like ``mlflow.start_run``)::

    import repro as prov4ml

    prov4ml.start_run(experiment_name="mnist", provenance_save_dir="prov")
    prov4ml.log_param("lr", 1e-3)
    for epoch in range(3):
        prov4ml.start_epoch(prov4ml.Context.TRAINING)
        prov4ml.log_metric("loss", 0.9 ** epoch, context=prov4ml.Context.TRAINING)
        prov4ml.end_epoch(prov4ml.Context.TRAINING)
    prov4ml.end_run(create_graph=True)

``end_run`` writes ``prov.json`` (PROV-JSON), the offloaded metric store and
the optional graph/RO-Crate, then clears the active run.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

import numpy as np

from repro.core.context import Context
from repro.core.experiment import Experiment, RunExecution, RunStatus
from repro.errors import NoActiveRunError, RunAlreadyActiveError

_lock = threading.Lock()
_active_run: Optional[RunExecution] = None
_experiments: Dict[str, Experiment] = {}


def start_run(
    experiment_name: str = "default",
    prov_user_namespace: str = "http://example.org/",
    provenance_save_dir: Union[str, Path] = "prov",
    username: str = "user",
    run_id: Optional[str] = None,
    clock: Optional[Callable[[], float]] = None,
    collectors: Optional[list] = None,
    rank: Optional[int] = None,
    journal: bool = True,
    journal_flush_every: int = 1,
    resumed_from: Optional[str] = None,
) -> RunExecution:
    """Open a new active run under *experiment_name*.

    With ``journal=True`` (the default) every logging call is appended to a
    write-ahead journal in the run directory and flushed every
    ``journal_flush_every`` records, so a crashed/killed run can be
    recovered with ``yprov recover`` (see :mod:`repro.core.recover`).
    ``resumed_from`` names the run this one continues after a failure; the
    provenance links the two segments via ``wasInformedBy``.

    Raises :class:`~repro.errors.RunAlreadyActiveError` when a run is
    already open (nested runs are not part of the paper's model).
    """
    global _active_run
    with _lock:
        if _active_run is not None:
            raise RunAlreadyActiveError(
                f"run {_active_run.run_id!r} is already active; call end_run() first"
            )
        key = (experiment_name, str(provenance_save_dir), prov_user_namespace)
        experiment = _experiments.get(str(key))
        if experiment is None:
            experiment = Experiment(
                experiment_name,
                root_dir=provenance_save_dir,
                user_namespace=prov_user_namespace,
                username=username,
            )
            _experiments[str(key)] = experiment
        run = experiment.new_run(
            run_id=run_id,
            clock=clock,
            rank=rank,
            journal=journal,
            journal_flush_every=journal_flush_every,
            resumed_from=resumed_from,
        )
        for collector in collectors or ():
            run.add_collector(collector)
        run.start()
        _active_run = run
        return run


def active_run() -> RunExecution:
    """The currently open run; raises when none is active."""
    if _active_run is None:
        raise NoActiveRunError("no active run; call start_run() first")
    return _active_run


def has_active_run() -> bool:
    """Whether a run is currently open."""
    return _active_run is not None


def end_run(
    metric_format: str = "zarrlike",
    create_graph: bool = False,
    create_rocrate: bool = False,
    status: RunStatus = RunStatus.FINISHED,
    publish_to: Optional[Any] = None,
    publish_spool_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Path]:
    """Close the active run and persist its provenance; returns written paths.

    With ``publish_to`` set — a base URL string like
    ``"http://host:3000/api/v0"`` or a pre-built
    :class:`~repro.yprov.client.ProvenanceClient` — the saved ``prov.json``
    is also published to the provenance service with at-least-once
    semantics: when the service is down or flaky the document is parked in
    a durable local spool (``publish_spool_dir``, default
    ``<save_dir>/.yprov-spool`` next to the run directories) and delivered
    later by ``yprov spool drain``.  End-of-run publishing therefore never
    raises on a transport failure and never loses the document.  The
    outcome is recorded on the run as ``run.last_publish``.
    """
    global _active_run
    with _lock:
        run = active_run()
        run.end(status=status)
        paths = run.save(
            metric_format=metric_format,
            create_graph=create_graph,
            create_rocrate=create_rocrate,
        )
        # the run is finished and persisted: clear the session *before*
        # publishing, so a publish failure (full spool, service rejection)
        # propagates without wedging the next start_run()
        _active_run = None
        if publish_to is not None:
            run.publish(_publisher(run, publish_to, publish_spool_dir))
        return paths


def _publisher(run: RunExecution, publish_to: Any,
               spool_dir: Optional[Union[str, Path]]):
    """Coerce *publish_to* into a spool-backed ProvenanceClient."""
    if isinstance(publish_to, str):
        from repro.yprov.client import ProvenanceClient
        from repro.yprov.spool import Spool

        spool = Spool(spool_dir if spool_dir is not None
                      else run.save_dir.parent / ".yprov-spool")
        return ProvenanceClient(publish_to, spool=spool)
    return publish_to


def abort_run() -> None:
    """Drop the active run without saving (for error paths and tests).

    The run's write-ahead journal is flushed and closed but *not* deleted,
    so an aborted run remains recoverable with ``yprov recover``.
    """
    global _active_run
    with _lock:
        if _active_run is not None and _active_run.journal is not None:
            _active_run.journal.close()
        _active_run = None


# -- logging delegates --------------------------------------------------------

def log_param(name: str, value: Any, is_input: bool = True,
              context: Optional[Union[Context, str]] = None):
    """Log a parameter on the active run (input by default)."""
    return active_run().log_param(name, value, is_input=is_input, context=context)


def log_params(params: Dict[str, Any]) -> None:
    """Log several parameters on the active run."""
    run = active_run()
    for name, value in params.items():
        run.log_param(name, value)


def log_metric(
    name: str,
    value: float,
    context: Union[Context, str] = Context.TRAINING,
    step: Optional[int] = None,
    is_input: bool = False,
) -> None:
    """Log one metric sample on the active run."""
    active_run().log_metric(name, value, context=context, step=step, is_input=is_input)


def log_metrics(
    values: Dict[str, float],
    context: Union[Context, str] = Context.TRAINING,
    step: Optional[int] = None,
) -> None:
    """Log several metric samples at one step on the active run."""
    active_run().log_metrics(values, context=context, step=step)


def log_metric_array(
    name: str,
    steps: np.ndarray,
    values: np.ndarray,
    times: np.ndarray,
    context: Union[Context, str] = Context.TRAINING,
    epochs: Optional[np.ndarray] = None,
) -> None:
    """Bulk-append a precomputed metric series on the active run."""
    active_run().log_metric_array(name, steps, values, times, context=context, epochs=epochs)


def log_artifact(
    path: Union[str, Path],
    name: Optional[str] = None,
    is_input: bool = False,
    is_model: bool = False,
    context: Optional[Union[Context, str]] = None,
    step: Optional[int] = None,
    copy: bool = True,
):
    """Log a file artifact on the active run."""
    return active_run().log_artifact(
        path, name=name, is_input=is_input, is_model=is_model,
        context=context, step=step, copy=copy,
    )


def log_input(path: Union[str, Path], name: Optional[str] = None,
              context: Optional[Union[Context, str]] = None):
    """Log an artifact explicitly as an input (``used`` relationship)."""
    return active_run().log_artifact(path, name=name, is_input=True, context=context)


def log_output(path: Union[str, Path], name: Optional[str] = None,
               context: Optional[Union[Context, str]] = None):
    """Log an artifact explicitly as an output (``wasGeneratedBy``)."""
    return active_run().log_artifact(path, name=name, is_input=False, context=context)


def log_model(
    name: str,
    state_bytes: bytes,
    context: Optional[Union[Context, str]] = None,
    step: Optional[int] = None,
):
    """Log a serialized model/checkpoint as a ModelVersion artifact."""
    return active_run().log_artifact_bytes(
        name, state_bytes, is_model=True, context=context, step=step
    )


def start_epoch(context: Union[Context, str], epoch: Optional[int] = None) -> int:
    """Open an epoch in *context* on the active run."""
    return active_run().start_epoch(context, epoch)


def end_epoch(context: Union[Context, str]):
    """Close the open epoch in *context* on the active run."""
    return active_run().end_epoch(context)


def log_execution_command(command: str, output: str = "", exit_code: int = 0):
    """Record a console command (development tracking) on the active run."""
    return active_run().log_execution_command(command, output, exit_code)


def capture_output(text: str) -> None:
    """Append a fragment of the script's stdout to the active run."""
    active_run().capture_output(text)


def log_system_metrics(
    context: Union[Context, str] = Context.TRAINING, step: Optional[int] = None
) -> Dict[str, float]:
    """Poll attached collector plugins and log their readings."""
    return active_run().collect_system_metrics(context=context, step=step)


def register_collector(collector: Any) -> None:
    """Attach a collector plugin to the active run."""
    active_run().add_collector(collector)
