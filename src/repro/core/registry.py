"""On-disk experiment registry — the searchable knowledge base of §3.2/§3.3.

Scans a provenance root directory for run provenance files (``prov.json``),
summarizes them, and answers the queries the paper motivates: "with a
knowledge base of previous runs available and metadata easily searchable,
the team could identify similar processes".
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Union

from repro.core.provgen import RunSummary, load_run_summary
from repro.errors import TrackingError


class ExperimentRegistry:
    """Knowledge base over a directory tree of provenance files."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._summaries: Dict[str, RunSummary] = {}
        self.refresh()

    def refresh(self) -> int:
        """(Re)scan the root directory; returns the number of runs found."""
        self._summaries.clear()
        if not self.root.exists():
            return 0
        for prov_path in sorted(self.root.rglob("prov.json")):
            try:
                summary = load_run_summary(prov_path)
            except Exception:
                # Corrupt or foreign files must not break the whole KB.
                continue
            self._summaries[summary.run_id] = summary
        return len(self._summaries)

    def add(self, summary: RunSummary) -> None:
        """Register an in-memory summary (e.g. straight from a finished run)."""
        self._summaries[summary.run_id] = summary

    # -- access ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._summaries)

    def __iter__(self) -> Iterator[RunSummary]:
        return iter(self._summaries.values())

    def get(self, run_id: str) -> RunSummary:
        try:
            return self._summaries[run_id]
        except KeyError:
            raise TrackingError(f"run not in registry: {run_id!r}") from None

    def experiments(self) -> List[str]:
        """Distinct experiment names, sorted."""
        return sorted({s.experiment for s in self._summaries.values()})

    def runs_of(self, experiment: str) -> List[RunSummary]:
        return sorted(
            (s for s in self._summaries.values() if s.experiment == experiment),
            key=lambda s: s.run_id,
        )

    # -- queries -----------------------------------------------------------
    def find(
        self,
        experiment: Optional[str] = None,
        where: Optional[Mapping[str, Any]] = None,
        predicate: Optional[Callable[[RunSummary], bool]] = None,
        status: Optional[str] = None,
    ) -> List[RunSummary]:
        """Filter runs by experiment name, exact parameter values, status
        and/or an arbitrary predicate."""
        out: List[RunSummary] = []
        for summary in self._summaries.values():
            if experiment is not None and summary.experiment != experiment:
                continue
            if status is not None and summary.status != status:
                continue
            if where is not None and any(
                summary.params.get(k) != v for k, v in where.items()
            ):
                continue
            if predicate is not None and not predicate(summary):
                continue
            out.append(summary)
        return sorted(out, key=lambda s: s.run_id)

    def best_run(
        self,
        metric: str,
        context: str = "VALIDATION",
        experiment: Optional[str] = None,
        lower_is_better: bool = True,
        where: Optional[Mapping[str, Any]] = None,
    ) -> Optional[RunSummary]:
        """The run with the best final value of *metric* (None when absent)."""
        candidates = []
        for summary in self.find(experiment=experiment, where=where):
            value = summary.final_metric(metric, context)
            if value is not None:
                candidates.append((value, summary))
        if not candidates:
            return None
        candidates.sort(key=lambda pair: pair[0], reverse=not lower_is_better)
        return candidates[0][1]

    def param_values(self, name: str, experiment: Optional[str] = None) -> List[Any]:
        """Distinct values a parameter took across matching runs."""
        values = []
        for summary in self.find(experiment=experiment):
            if name in summary.params and summary.params[name] not in values:
                values.append(summary.params[name])
        return values
