"""Reproducibility from a provenance file (§4 / §6 future work).

"With this change, reproducing an experiment by simply sharing a provJSON
file would become trivial" — this module delivers that workflow:

1. a provenance file records the experiment name, every input parameter
   (the ``used`` side of the graph) and the hashes of input artifacts;
2. an :class:`ExperimentReplayer` holds *recipes*: callables registered per
   experiment (name pattern) that know how to execute it given parameters;
3. :meth:`ExperimentReplayer.replay` loads the PROV-JSON, re-executes the
   matching recipe with the recorded parameters into a fresh tracked run,
   and verifies the outcome: final metric values within tolerance and
   output-artifact content hashes.

The distributed-training simulator ships a built-in recipe
(:func:`simulation_recipe`), so any run produced by
:func:`repro.simulator.training.simulate_training` can be reproduced
bit-for-bit from its provenance file alone.
"""

from __future__ import annotations

import fnmatch
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.experiment import RunExecution
from repro.core.provgen import RunSummary, load_run_summary
from repro.errors import TrackingError

#: A recipe executes an experiment: (params, run) -> None, logging into *run*.
Recipe = Callable[[Mapping[str, Any], RunExecution], None]


@dataclass
class MetricCheck:
    """Comparison of one metric series between original and replay."""

    series: str
    original: Optional[float]
    replayed: Optional[float]
    matched: bool


@dataclass
class ReproductionReport:
    """Outcome of a replay."""

    original_run_id: str
    replayed_run_id: str
    experiment: str
    metric_checks: List[MetricCheck] = field(default_factory=list)
    metrics_not_replayed: List[str] = field(default_factory=list)
    artifacts_verified: List[str] = field(default_factory=list)
    artifacts_mismatched: List[str] = field(default_factory=list)

    @property
    def is_faithful(self) -> bool:
        """True when at least one metric was compared and every compared
        metric/artifact matched (series the recipe does not re-log are
        reported separately, not counted as failures)."""
        return (
            bool(self.metric_checks)
            and all(c.matched for c in self.metric_checks)
            and not self.artifacts_mismatched
        )

    def summary(self) -> str:
        """One-line human-readable outcome."""
        ok = sum(1 for c in self.metric_checks if c.matched)
        return (
            f"replayed {self.original_run_id} -> {self.replayed_run_id}: "
            f"metrics {ok}/{len(self.metric_checks)} matched "
            f"({len(self.metrics_not_replayed)} not re-logged), "
            f"artifacts {len(self.artifacts_verified)} verified / "
            f"{len(self.artifacts_mismatched)} mismatched"
        )


class ExperimentReplayer:
    """Registry of experiment recipes + the replay/verify workflow."""

    def __init__(self, rel_tolerance: float = 1e-9) -> None:
        self._recipes: List[Tuple[str, Recipe]] = []
        self.rel_tolerance = rel_tolerance

    def register(self, experiment_pattern: str, recipe: Recipe) -> None:
        """Register a recipe for experiments matching *pattern* (fnmatch)."""
        if not experiment_pattern:
            raise TrackingError("experiment pattern must be non-empty")
        self._recipes.append((experiment_pattern, recipe))

    def recipe_for(self, experiment: str) -> Recipe:
        """Resolve the recipe whose pattern matches *experiment*."""
        for pattern, recipe in self._recipes:
            if fnmatch.fnmatch(experiment, pattern):
                return recipe
        raise TrackingError(
            f"no recipe registered for experiment {experiment!r}; "
            f"patterns: {[p for p, _ in self._recipes]}"
        )

    # ------------------------------------------------------------------
    def replay(
        self,
        prov_path: Union[str, Path],
        save_dir: Union[str, Path],
        clock: Optional[Callable[[], float]] = None,
    ) -> Tuple[RunExecution, ReproductionReport]:
        """Re-execute the experiment described by *prov_path* and verify it."""
        summary = load_run_summary(Path(prov_path))
        recipe = self.recipe_for(summary.experiment)

        run = RunExecution(
            experiment_name=summary.experiment,
            run_id=f"replay_{summary.run_id}",
            save_dir=Path(save_dir),
            clock=clock,
        )
        run.start()
        recipe(dict(summary.params), run)
        if run.status.value == "running":
            run.end()

        report = self.verify(summary, run)
        return run, report

    def verify(self, original: RunSummary, replayed: RunExecution) -> ReproductionReport:
        """Compare the replayed run against the original's recorded outcome."""
        report = ReproductionReport(
            original_run_id=original.run_id,
            replayed_run_id=replayed.run_id,
            experiment=original.experiment,
        )
        # metrics: compare final values of every series the original recorded
        replayed_finals: Dict[str, float] = {}
        for key, buffer in replayed.metrics.items():
            if len(buffer):
                replayed_finals[key.series_name()] = buffer.last_value
        for series, stats in sorted(original.metrics.items()):
            original_last = stats.get("last")
            new_last = replayed_finals.get(series)
            if new_last is None:
                report.metrics_not_replayed.append(series)
                continue
            matched = self._close(original_last, new_last)
            report.metric_checks.append(
                MetricCheck(series, original_last, new_last, matched)
            )
        # artifacts: hashes of same-named outputs must agree
        original_dir = (
            original.source_path.parent if original.source_path is not None else None
        )
        for artifact in replayed.artifacts:
            if artifact.is_input:
                continue
            if original_dir is None:
                continue
            candidate = original_dir / "artifacts" / artifact.name
            if not candidate.is_file():
                continue
            from repro.core.artifacts import sha256_file

            if sha256_file(candidate) == artifact.sha256:
                report.artifacts_verified.append(artifact.name)
            else:
                report.artifacts_mismatched.append(artifact.name)
        return report

    def _close(self, a: Optional[float], b: Optional[float]) -> bool:
        if a is None or b is None:
            return False
        if math.isnan(a) and math.isnan(b):
            return True
        return math.isclose(a, b, rel_tol=self.rel_tolerance, abs_tol=1e-12)


# ---------------------------------------------------------------------------
# built-in recipe: the distributed-training simulator
# ---------------------------------------------------------------------------

def simulation_recipe(params: Mapping[str, Any], run: RunExecution) -> None:
    """Re-execute a simulated training job from its recorded parameters.

    The simulator is deterministic given (architecture, size, GPUs, batch,
    epochs, dataset size, seed, mfu, walltime), all of which yProv4ML logged
    as input parameters — so the replay reproduces the original run's
    metrics exactly.
    """
    from repro.core.context import Context
    from repro.simulator.data import SyntheticMODIS
    from repro.simulator.training import job_from_zoo, simulate_training

    required = ("architecture", "model_size", "n_gpus", "batch_per_gpu",
                "epochs_target", "dataset_patches", "seed", "mfu", "walltime_s")
    missing = [name for name in required if name not in params]
    if missing:
        raise TrackingError(f"provenance lacks parameters for replay: {missing}")

    dataset = SyntheticMODIS(n_patches=int(params["dataset_patches"]))
    job = job_from_zoo(
        str(params["architecture"]),
        str(params["model_size"]),
        int(params["n_gpus"]),
        batch_per_gpu=int(params["batch_per_gpu"]),
        epochs=int(params["epochs_target"]),
        dataset=dataset,
        seed=int(params["seed"]),
        mfu=float(params["mfu"]),
        walltime_s=float(params["walltime_s"]),
    )
    result = simulate_training(job)

    # log the replayed outcome into the fresh run, mirroring what the
    # original tracking hooks recorded
    for name, value in params.items():
        run.log_param(name, value)
    run.log_metric("final_loss", result.final_loss, context=Context.TESTING)
    run.log_metric("total_energy_kwh", result.energy_kwh, context=Context.TESTING)
    run.log_metric("tradeoff_loss_x_kwh", result.tradeoff, context=Context.TESTING)
    run.log_metric("completed", 1.0 if result.completed else 0.0,
                   context=Context.TESTING)
    run.log_metric("val_loss", result.final_loss * 1.02, context=Context.VALIDATION)
    run.log_metric_array(
        "loss", result.loss_steps, result.loss_values,
        result.loss_steps.astype(float) * result.step_timing.step_s,
        context=Context.TRAINING,
    )


def default_replayer() -> ExperimentReplayer:
    """A replayer with the built-in simulator recipe registered."""
    replayer = ExperimentReplayer()
    replayer.register("scaling_*", simulation_recipe)
    return replayer
