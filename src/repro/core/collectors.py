"""Collector plugins — the paper's extensibility mechanism.

yProv4ML "enables users to integrate additional data collection tools via
plugins".  A collector is any object with a ``name`` and a
``collect(run) -> dict[str, float]`` method; attached collectors are polled
by :meth:`RunExecution.collect_system_metrics` and their readings logged as
ordinary metrics.

Real deployments would read hardware counters (psutil, ROCm-SMI, RAPL);
offline we provide deterministic simulated sensors, plus a
:class:`TelemetryCollector` adapter that surfaces readings produced by the
distributed-training simulator's power model — so use-case provenance
contains physically consistent energy numbers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Protocol, Type

import numpy as np

from repro.errors import TrackingError


class CollectorPlugin(Protocol):
    """Structural interface for collector plugins."""

    name: str

    def collect(self, run: Any) -> Dict[str, float]:
        """Return a mapping of metric name -> current reading."""
        ...


class _Registry:
    """Named registry of collector factories (plugin discovery point)."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., CollectorPlugin]] = {}

    def register(self, name: str) -> Callable[[Type], Type]:
        def decorator(cls: Type) -> Type:
            if name in self._factories:
                raise TrackingError(f"collector already registered: {name!r}")
            self._factories[name] = cls
            return cls

        return decorator

    def create(self, name: str, **kwargs: Any) -> CollectorPlugin:
        factory = self._factories.get(name)
        if factory is None:
            raise TrackingError(
                f"unknown collector {name!r}; registered: {sorted(self._factories)}"
            )
        return factory(**kwargs)

    def names(self) -> list:
        return sorted(self._factories)


collector_registry = _Registry()


@collector_registry.register("system")
class SystemStatsCollector:
    """Simulated host statistics (CPU %, memory %).

    Readings follow a mean-reverting random walk seeded per collector, so a
    run's system metrics are deterministic given the seed.
    """

    name = "system"

    def __init__(self, seed: int = 0, cpu_mean: float = 55.0, mem_mean: float = 40.0) -> None:
        self._rng = np.random.default_rng(seed)
        self._cpu = cpu_mean
        self._mem = mem_mean
        self._cpu_mean = cpu_mean
        self._mem_mean = mem_mean

    def collect(self, run: Any) -> Dict[str, float]:
        self._cpu += 0.3 * (self._cpu_mean - self._cpu) + self._rng.normal(0, 4.0)
        self._mem += 0.2 * (self._mem_mean - self._mem) + self._rng.normal(0, 1.5)
        self._cpu = float(np.clip(self._cpu, 0.0, 100.0))
        self._mem = float(np.clip(self._mem, 0.0, 100.0))
        return {"cpu_percent": self._cpu, "memory_percent": self._mem}


@collector_registry.register("gpu")
class GPUStatsCollector:
    """Simulated GPU statistics (utilization %, memory GB, power W)."""

    name = "gpu"

    def __init__(
        self,
        seed: int = 0,
        n_gpus: int = 1,
        utilization_mean: float = 85.0,
        memory_gb: float = 48.0,
        power_peak_w: float = 560.0,
        power_idle_w: float = 90.0,
    ) -> None:
        self._rng = np.random.default_rng(seed)
        self.n_gpus = n_gpus
        self._util_mean = utilization_mean
        self._mem = memory_gb
        self._peak = power_peak_w
        self._idle = power_idle_w

    def collect(self, run: Any) -> Dict[str, float]:
        """Sample simulated utilization, memory and power readings."""
        util = float(np.clip(self._rng.normal(self._util_mean, 5.0), 0.0, 100.0))
        power = self._idle + (self._peak - self._idle) * util / 100.0
        return {
            "gpu_utilization_percent": util,
            "gpu_memory_gb": self._mem * util / 100.0,
            "gpu_power_w": power * self.n_gpus,
        }


@collector_registry.register("energy")
class EnergyCollector:
    """Accumulated energy from a power signal (trapezoidal integration).

    ``power_fn`` maps the run's clock time to instantaneous watts; when
    omitted, a constant nominal power is integrated.  Each ``collect`` call
    advances the integral from the previous poll, so polling cadence only
    affects resolution, not the total.
    """

    name = "energy"

    def __init__(
        self,
        power_fn: Optional[Callable[[float], float]] = None,
        nominal_power_w: float = 350.0,
    ) -> None:
        self._power_fn = power_fn or (lambda t: nominal_power_w)
        self._last_t: Optional[float] = None
        self._last_p: Optional[float] = None
        self._joules = 0.0

    def collect(self, run: Any) -> Dict[str, float]:
        """Advance the trapezoidal energy integral to the current clock time."""
        now = run.clock()
        power = float(self._power_fn(now))
        if self._last_t is not None and now > self._last_t:
            self._joules += 0.5 * (power + self._last_p) * (now - self._last_t)
        self._last_t, self._last_p = now, power
        return {
            "power_w": power,
            "energy_joules": self._joules,
            "energy_kwh": self._joules / 3.6e6,
        }


@collector_registry.register("carbon")
class CarbonCollector:
    """Carbon emissions derived from an :class:`EnergyCollector`.

    ``intensity_g_per_kwh`` is the grid carbon intensity (default: a typical
    mixed-grid 380 gCO2e/kWh).
    """

    name = "carbon"

    def __init__(self, energy: EnergyCollector, intensity_g_per_kwh: float = 380.0) -> None:
        self._energy = energy
        self.intensity = intensity_g_per_kwh

    def collect(self, run: Any) -> Dict[str, float]:
        kwh = self._energy._joules / 3.6e6
        return {"carbon_g_co2e": kwh * self.intensity}


@collector_registry.register("telemetry")
class TelemetryCollector:
    """Adapter exposing externally produced readings (simulator bridge).

    The distributed-training simulator pushes its physically modeled
    telemetry (per-device power, utilization) into :meth:`update`; polling
    returns the latest snapshot.
    """

    name = "telemetry"

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._latest: Dict[str, float] = {}

    def update(self, readings: Mapping[str, float]) -> None:
        for key, value in readings.items():
            self._latest[self.prefix + key] = float(value)

    def collect(self, run: Any) -> Dict[str, float]:
        return dict(self._latest)
