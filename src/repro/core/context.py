"""Run contexts (Figure 2: the stages of a run).

The paper's data model divides a run into stages called *contexts*:
``TRAINING``, ``VALIDATION`` and ``TESTING`` are predefined, and — unlike
PROV-ML's fixed three-phase taxonomy, which the paper criticizes — users may
define arbitrary additional contexts (e.g. ``preprocessing``,
``fine_tuning``).

Contexts are interned: ``Context.of("training")`` always returns the same
object, so they are safe as dict keys and cheap to compare.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, Optional

from repro.errors import UnknownContextError

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_\-]*$")


class Context:
    """A named stage of a run.

    Use the predefined :attr:`TRAINING` / :attr:`VALIDATION` /
    :attr:`TESTING` constants or create custom stages with
    :meth:`Context.of`.
    """

    _interned: Dict[str, "Context"] = {}

    # populated below; declared for type checkers
    TRAINING: "Context"
    VALIDATION: "Context"
    TESTING: "Context"

    __slots__ = ("name", "predefined")

    def __init__(self, name: str, predefined: bool = False, _token: object = None) -> None:
        if _token is not _INTERN_TOKEN:
            raise TypeError("use Context.of(name) instead of the constructor")
        self.name = name
        self.predefined = predefined

    @classmethod
    def of(cls, name: object) -> "Context":
        """Return the interned context for *name* (case-insensitive).

        Accepts an existing :class:`Context` (returned unchanged) or a
        string; custom names must be valid identifiers.
        """
        if isinstance(name, Context):
            return name
        if not isinstance(name, str):
            raise UnknownContextError(f"context must be a string or Context: {name!r}")
        key = name.strip().upper()
        ctx = cls._interned.get(key)
        if ctx is not None:
            return ctx
        if not _NAME_RE.match(key):
            raise UnknownContextError(f"invalid context name: {name!r}")
        ctx = cls(key, predefined=False, _token=_INTERN_TOKEN)
        cls._interned[key] = ctx
        return ctx

    @classmethod
    def predefined_contexts(cls) -> Iterator["Context"]:
        return (c for c in cls._interned.values() if c.predefined)

    @property
    def is_epoch_structured(self) -> bool:
        """Per Figure 2, training and validation are organized into epochs."""
        return self.name in ("TRAINING", "VALIDATION")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Context.{self.name}" if self.predefined else f"Context.of({self.name!r})"

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Context):
            return self.name == other.name
        if isinstance(other, str):
            return self.name == other.strip().upper()
        return NotImplemented


_INTERN_TOKEN = object()

for _name in ("TRAINING", "VALIDATION", "TESTING"):
    _ctx = Context(_name, predefined=True, _token=_INTERN_TOKEN)
    Context._interned[_name] = _ctx
    setattr(Context, _name, _ctx)
