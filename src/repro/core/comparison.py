"""Run comparison (§4: "compare the results of successive, related runs").

Diffs two runs — live :class:`RunExecution` objects or
:class:`~repro.core.provgen.RunSummary` views recovered from provenance
files — reporting parameter changes and final-metric deltas, "allowing for a
better understanding of the impact of hyperparameters and model
configurations".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

from repro.core.experiment import RunExecution
from repro.core.provgen import RunSummary


@dataclass
class RunDiff:
    """Structured difference between two runs."""

    left_id: str
    right_id: str
    params_added: Dict[str, Any] = field(default_factory=dict)
    params_removed: Dict[str, Any] = field(default_factory=dict)
    params_changed: Dict[str, Tuple[Any, Any]] = field(default_factory=dict)
    metric_deltas: Dict[str, Tuple[Optional[float], Optional[float]]] = field(
        default_factory=dict
    )

    @property
    def is_identical_config(self) -> bool:
        return not (self.params_added or self.params_removed or self.params_changed)

    def metric_improvement(self, series: str, lower_is_better: bool = True) -> Optional[float]:
        """Signed improvement of *right* over *left* for a metric series.

        Positive means the right run improved (respecting direction).
        """
        pair = self.metric_deltas.get(series)
        if pair is None or pair[0] is None or pair[1] is None:
            return None
        left, right = pair
        return (left - right) if lower_is_better else (right - left)

    def format(self) -> str:
        """Human-readable rendering of the diff."""
        lines = [f"diff {self.left_id} -> {self.right_id}"]
        for name, value in sorted(self.params_added.items()):
            lines.append(f"  + param {name} = {value!r}")
        for name, value in sorted(self.params_removed.items()):
            lines.append(f"  - param {name} = {value!r}")
        for name, (old, new) in sorted(self.params_changed.items()):
            lines.append(f"  ~ param {name}: {old!r} -> {new!r}")
        for series, (old, new) in sorted(self.metric_deltas.items()):
            lines.append(f"  metric {series}: {old} -> {new}")
        return "\n".join(lines)


def _as_view(run: Union[RunExecution, RunSummary]) -> Tuple[str, Dict[str, Any], Dict[str, Optional[float]]]:
    """Normalize either run type to (id, params, final-metrics)."""
    if isinstance(run, RunExecution):
        params = run.params.as_dict()
        finals: Dict[str, Optional[float]] = {}
        for key, buffer in run.metrics.items():
            finals[key.series_name()] = buffer.last_value if len(buffer) else None
        return run.run_id, params, finals
    finals = {
        series: stats.get("last")
        for series, stats in run.metrics.items()
    }
    return run.run_id, dict(run.params), finals


def compare_runs(
    left: Union[RunExecution, RunSummary],
    right: Union[RunExecution, RunSummary],
) -> RunDiff:
    """Compute the parameter and metric diff between two runs."""
    left_id, left_params, left_metrics = _as_view(left)
    right_id, right_params, right_metrics = _as_view(right)

    diff = RunDiff(left_id=left_id, right_id=right_id)
    for name, value in right_params.items():
        if name not in left_params:
            diff.params_added[name] = value
        elif left_params[name] != value:
            diff.params_changed[name] = (left_params[name], value)
    for name, value in left_params.items():
        if name not in right_params:
            diff.params_removed[name] = value

    for series in sorted(set(left_metrics) | set(right_metrics)):
        diff.metric_deltas[series] = (
            left_metrics.get(series),
            right_metrics.get(series),
        )
    return diff
