"""Write-ahead journal: every tracking call is durable before ``end_run``.

The tracker originally materialized provenance only at ``end_run`` — a run
killed mid-epoch (the 2-hour-walltime kills of the paper's Figure 3, a node
failure, an OOM) lost *all* of its lineage.  The journal closes that hole:
each logging call (params, metrics, artifacts, epoch boundaries, lifecycle
events) is appended to ``journal.wal`` in the run directory as a
length-prefixed, checksummed JSON record and flushed at a configurable
cadence.  After a crash, :mod:`repro.core.recover` replays the journal into
a valid (partial) PROV document.

Record wire format — one record per line::

    <length:08x> <crc32:08x> <payload-json>\n

``length`` is the byte length of the UTF-8 payload and ``crc32`` its
checksum, so a reader detects torn tails and bit corruption record-by-record
and can always recover every intact record (skip-and-report, never crash).
A clean ``end_run`` compacts the journal away: the final PROV-JSON document
*is* the compacted form.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from repro.errors import JournalError

PathLike = Union[str, Path]

#: File name of the write-ahead journal inside a run directory.
JOURNAL_NAME = "journal.wal"


def journal_path_for(run_dir: PathLike) -> Path:
    """The journal location for a run save directory."""
    return Path(run_dir) / JOURNAL_NAME


def to_jsonable(value: Any) -> Any:
    """Coerce a logged value into something JSON-serializable.

    NumPy scalars/arrays become Python scalars/lists; mappings and
    sequences are converted recursively; anything else falls back to
    ``str`` so a weird user value can never poison the journal.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        try:
            return value.item()  # numpy scalar
        except (TypeError, ValueError):
            pass
    if hasattr(value, "tolist"):
        return value.tolist()  # numpy array
    if isinstance(value, Mapping):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in value]
    return str(value)


def encode_record(payload: Mapping[str, Any]) -> bytes:
    """Serialize one journal record into its wire form."""
    try:
        body = json.dumps(payload, separators=(",", ":"), allow_nan=True)
    except (TypeError, ValueError) as exc:
        raise JournalError(f"journal payload is not JSON-serializable: {exc}") from exc
    raw = body.encode("utf-8")
    return b"%08x %08x " % (len(raw), zlib.crc32(raw)) + raw + b"\n"


def decode_record(line: bytes) -> Dict[str, Any]:
    """Parse and verify one wire-format line; raises :class:`JournalError`."""
    line = line.rstrip(b"\n")
    parts = line.split(b" ", 2)
    if len(parts) != 3:
        raise JournalError("malformed journal line (missing prefix fields)")
    try:
        length = int(parts[0], 16)
        crc = int(parts[1], 16)
    except ValueError as exc:
        raise JournalError(f"malformed journal length/crc prefix: {exc}") from exc
    raw = parts[2]
    if len(raw) != length:
        raise JournalError(
            f"journal record truncated: expected {length} bytes, got {len(raw)}"
        )
    if zlib.crc32(raw) != crc:
        raise JournalError("journal record failed its crc32 checksum")
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise JournalError(f"journal record payload is not JSON: {exc}") from exc
    if not isinstance(payload, dict) or "k" not in payload:
        raise JournalError("journal record payload missing its kind ('k')")
    return payload


class RunJournal:
    """Append-only, checksummed event log for one run.

    ``flush_every`` controls the durability cadence: after that many
    appended records the OS buffer is flushed and fsynced (1 — the default —
    makes every single event durable; larger values trade a bounded tail
    loss for fewer syscalls on hot logging paths).  ``fsync=False`` keeps
    the flush but skips the fsync (tests, throwaway runs).
    """

    def __init__(
        self,
        path: PathLike,
        flush_every: int = 1,
        fsync: bool = True,
    ) -> None:
        if flush_every < 1:
            raise JournalError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self.flush_every = int(flush_every)
        self.fsync = bool(fsync)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("ab")  # lint: disable=SL201 -- the append-only WAL is itself the crash-safety primitive; atomic rewrite would defeat it
        self._unflushed = 0
        self._appended = 0

    # ------------------------------------------------------------------
    def append(self, kind: str, payload: Optional[Mapping[str, Any]] = None) -> None:
        """Append one event record (``kind`` plus payload fields)."""
        if self._fh is None:
            raise JournalError(f"journal {self.path} is closed")
        record: Dict[str, Any] = {"k": kind}
        if payload:
            record.update(payload)
        self._fh.write(encode_record(record))
        self._appended += 1
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Push buffered records to disk (fsync unless disabled)."""
        if self._fh is None or self._unflushed == 0:
            return
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._unflushed = 0

    def close(self) -> None:
        """Flush and close; further appends raise."""
        if self._fh is None:
            return
        self.flush()
        self._fh.close()
        self._fh = None

    def compact(self) -> None:
        """Remove the journal file (the final PROV document supersedes it)."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    @property
    def closed(self) -> bool:
        """Whether the journal no longer accepts appends."""
        return self._fh is None

    @property
    def record_count(self) -> int:
        """Number of records appended through this handle."""
        return self._appended

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"RunJournal({str(self.path)!r}, {state}, records={self._appended})"


# ---------------------------------------------------------------------------
# reading
# ---------------------------------------------------------------------------

@dataclass
class JournalReadResult:
    """Outcome of scanning a journal file.

    ``records`` holds every record that passed its length/checksum
    verification, in append order; ``bad_records`` counts lines that did
    not (torn tail after a crash, bit corruption); ``issues`` describes
    them.  A non-empty ``bad_records`` never prevents recovery of the
    intact prefix/suffix — skip-and-report, not crash.
    """

    path: Path
    records: List[Dict[str, Any]] = field(default_factory=list)
    bad_records: int = 0
    issues: List[str] = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        """True when every line verified."""
        return self.bad_records == 0

    def kinds(self) -> List[str]:
        """Event kinds in append order (debugging/summary helper)."""
        return [r["k"] for r in self.records]

    def has_kind(self, kind: str) -> bool:
        """Whether any record of *kind* was journaled."""
        return any(r["k"] == kind for r in self.records)


def read_journal(path: PathLike) -> JournalReadResult:
    """Scan a journal file, validating every record.

    Corrupt or truncated lines are skipped and reported in the result —
    the caller always gets every record that made it to disk intact.
    """
    path = Path(path)
    if path.is_dir():
        path = journal_path_for(path)
    if not path.is_file():
        raise JournalError(f"journal not found: {path}")
    result = JournalReadResult(path=path)
    with path.open("rb") as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                result.records.append(decode_record(line))
            except JournalError as exc:
                result.bad_records += 1
                result.issues.append(f"line {lineno}: {exc}")
    return result


def iter_journal(path: PathLike) -> Iterator[Dict[str, Any]]:
    """Iterate the intact records of a journal (convenience wrapper)."""
    return iter(read_journal(path).records)
