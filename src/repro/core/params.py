"""Parameter logging.

Parameters are "one-time recorded values used during training" (paper §4):
learning rate, model size, batch size, ...  Each logged parameter records a
*direction* — the latest library version lets users mark data as **input**
(needed to re-run the experiment, default for parameters) or **output**
(produced by it) — which drives the ``used`` vs ``wasGeneratedBy``
relationship in the provenance file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.core.context import Context
from repro.errors import TrackingError

_ALLOWED_TYPES = (str, int, float, bool, type(None))


def _check_value(value: Any) -> Any:
    """Parameters must be JSON-scalar-ish; containers of scalars are allowed."""
    if isinstance(value, _ALLOWED_TYPES):
        return value
    if isinstance(value, (list, tuple)):
        return [_check_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _check_value(v) for k, v in value.items()}
    raise TrackingError(
        f"parameter values must be scalars or containers of scalars, "
        f"got {type(value).__name__}"
    )


@dataclass(frozen=True)
class LoggedParam:
    """One recorded parameter."""

    name: str
    value: Any
    is_input: bool = True
    context: Optional[Context] = None


class ParamStore:
    """Ordered mapping of parameter name -> :class:`LoggedParam`.

    Re-logging a parameter with a *different* value raises — a run's
    parameters are one-time by definition; re-logging the same value is a
    harmless no-op (idempotent logging simplifies instrumentation).
    """

    def __init__(self) -> None:
        self._params: Dict[str, LoggedParam] = {}

    def log(
        self,
        name: str,
        value: Any,
        is_input: bool = True,
        context: Optional[Context] = None,
    ) -> LoggedParam:
        """Record a parameter; idempotent for identical re-logs, error otherwise."""
        if not name:
            raise TrackingError("parameter name must be non-empty")
        value = _check_value(value)
        existing = self._params.get(name)
        param = LoggedParam(name, value, is_input, context)
        if existing is not None:
            if existing.value != value or existing.is_input != is_input:
                raise TrackingError(
                    f"parameter {name!r} already logged with a different value "
                    f"({existing.value!r} != {value!r})"
                )
            return existing
        self._params[name] = param
        return param

    def get(self, name: str, default: Any = None) -> Any:
        param = self._params.get(name)
        return default if param is None else param.value

    def __getitem__(self, name: str) -> LoggedParam:
        try:
            return self._params[name]
        except KeyError:
            raise TrackingError(f"parameter not logged: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._params

    def __iter__(self) -> Iterator[LoggedParam]:
        return iter(self._params.values())

    def __len__(self) -> int:
        return len(self._params)

    def items(self) -> Iterator[Tuple[str, Any]]:
        return ((p.name, p.value) for p in self._params.values())

    def as_dict(self) -> Dict[str, Any]:
        return {p.name: p.value for p in self._params.values()}
