"""Single-file multi-run provenance (§6 future work).

"Future work on this library will target ... tracking all experiment runs
in a single provenance file, to enable easier comparison with each
individual execution."  :func:`build_experiment_document` packs every run
of an experiment into one PROV document: run-level records live in one
bundle per run; the top level holds the experiment entity, a summary entity
per run (``hadMember`` of the experiment) carrying the headline parameters
and final metrics, and ``wasInformedBy`` links chaining successive runs —
so cross-run comparison queries operate on the top level without opening
the bundles.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.experiment import Experiment, RunExecution
from repro.core.provgen import YPROV4ML, build_prov_document
from repro.errors import TrackingError
from repro.prov.document import ProvDocument
from repro.prov.identifiers import Namespace


def build_experiment_document(
    runs: Sequence[RunExecution],
    experiment_name: Optional[str] = None,
    metric_format: str = "inline",
) -> ProvDocument:
    """One provenance document covering every run of an experiment."""
    runs = list(runs)
    if not runs:
        raise TrackingError("at least one run is required")
    names = {run.experiment_name for run in runs}
    if experiment_name is None:
        if len(names) > 1:
            raise TrackingError(
                f"runs belong to different experiments: {sorted(names)}"
            )
        experiment_name = runs[0].experiment_name

    doc = ProvDocument()
    ex = doc.add_namespace(Namespace("ex", runs[0].user_namespace))
    doc.add_namespace(YPROV4ML)

    experiment_id = ex(f"experiment/{experiment_name}")
    doc.entity(
        experiment_id,
        {
            "prov:type": YPROV4ML("Experiment"),
            "prov:label": experiment_name,
            "yprov4ml:n_runs": len(runs),
        },
    )

    previous_summary = None
    for run in runs:
        run_doc = build_prov_document(run, metric_format=metric_format,
                                      metric_store_path=f"metrics_{run.run_id}")
        bundle_id = ex(f"bundle/{run.run_id}")
        bundle = doc.bundle(bundle_id)
        bundle.update(run_doc.flattened())

        summary_attrs: Dict[str, Any] = {
            "prov:type": YPROV4ML("RunSummary"),
            "prov:label": run.run_id,
            "yprov4ml:status": run.status.value,
            "yprov4ml:run_index": run.run_index,
        }
        if run.duration is not None:
            summary_attrs["yprov4ml:duration_s"] = float(run.duration)
        for param in run.params:
            value = param.value
            if isinstance(value, (list, dict)):
                import json

                value = json.dumps(value, sort_keys=True)
            summary_attrs[f"yprov4ml:param/{param.name}"] = value
        for key, buffer in run.metrics.items():
            if len(buffer):
                summary_attrs[f"yprov4ml:final/{key.series_name()}"] = buffer.last_value
        summary_id = ex(f"runs/{run.run_id}")
        doc.entity(summary_id, summary_attrs)
        doc.had_member(experiment_id, summary_id)
        doc.specialization_of(summary_id, bundle_id)
        doc.entity(bundle_id, {"prov:type": YPROV4ML("RunProvenance")})
        if previous_summary is not None:
            # successive runs: later summary derived from the earlier one
            # (the developer iterated from run N to run N+1)
            doc.was_derived_from(summary_id, previous_summary)
        previous_summary = summary_id

    return doc


def experiment_comparison_table(doc: ProvDocument) -> List[Dict[str, Any]]:
    """Cross-run comparison from a multi-run document's top level only.

    Returns one row per run (sorted by run index): run id, status, every
    ``param/*`` and ``final/*`` attribute, without touching the bundles —
    the "easier comparison" §6 promises.
    """
    rows: List[Dict[str, Any]] = []
    for ent in doc.entities.values():
        if not str(ent.prov_type or "").endswith("RunSummary"):
            continue
        row: Dict[str, Any] = {
            "run_id": str(ent.label),
            "status": ent.get_attribute("yprov4ml:status"),
            "run_index": ent.get_attribute("yprov4ml:run_index", 0),
        }
        for key, value in ent.attributes.items():
            if key.startswith("yprov4ml:param/"):
                row[f"param:{key.split('/', 1)[1]}"] = value
            elif key.startswith("yprov4ml:final/"):
                row[f"final:{key.split('/', 1)[1]}"] = value
        rows.append(row)
    rows.sort(key=lambda r: (r["run_index"], r["run_id"]))
    return rows


def format_comparison(rows: List[Dict[str, Any]]) -> str:
    """Plain-text rendering of the comparison table."""
    if not rows:
        return "(no runs)"
    columns = ["run_id", "status"]
    extra = sorted({k for row in rows for k in row}
                   - {"run_id", "status", "run_index"})
    columns += extra
    widths = {
        col: max(len(col), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    header = "  ".join(f"{col:<{widths[col]}}" for col in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(
            f"{str(row.get(col, '')):<{widths[col]}}" for col in columns
        ))
    return "\n".join(lines)
