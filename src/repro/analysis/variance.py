"""Seed-variance studies over simulated training.

Scaling studies report point estimates per grid cell; confidence in those
numbers comes from repeating cells across seeds.  :func:`seed_sweep` runs a
job across seeds and aggregates the outcomes, giving the error bars a
Figure-3-style plot would carry and the noise floor the §3.3 forecaster's
accuracy should be judged against.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.simulator.simclock import SimClock
from repro.simulator.training import TrainingJob, TrainingResult, simulate_training


@dataclass(frozen=True)
class MetricSpread:
    """Mean / std / extremes of one outcome metric across seeds."""

    name: str
    mean: float
    std: float
    min: float
    max: float
    n: int

    @property
    def relative_std(self) -> float:
        """Coefficient of variation (std / |mean|)."""
        return self.std / abs(self.mean) if self.mean else float("inf")


@dataclass
class SeedSweep:
    """Outcome of a multi-seed repetition of one job."""

    job: TrainingJob
    results: List[TrainingResult]
    spreads: Dict[str, MetricSpread]

    def spread(self, name: str) -> MetricSpread:
        """The spread of one outcome metric (KeyError-safe accessor)."""
        try:
            return self.spreads[name]
        except KeyError:
            raise AnalysisError(
                f"unknown outcome metric {name!r}; have {sorted(self.spreads)}"
            ) from None


def seed_sweep(
    job: TrainingJob,
    seeds: Sequence[int],
    clock: Optional[SimClock] = None,
) -> SeedSweep:
    """Run *job* once per seed; aggregate final loss / energy / trade-off.

    Only the seed varies; everything else (timing, energy) is deterministic
    per configuration, so their spreads quantify exactly the stochastic part
    (loss-curve noise).
    """
    if not seeds:
        raise AnalysisError("at least one seed is required")
    if len(set(seeds)) != len(seeds):
        raise AnalysisError("seeds must be distinct")
    clock = clock or SimClock()
    results = [
        simulate_training(replace(job, seed=int(seed)), clock=clock)
        for seed in seeds
    ]

    def aggregate(name: str, values: np.ndarray) -> MetricSpread:
        return MetricSpread(
            name=name,
            mean=float(values.mean()),
            std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
            min=float(values.min()),
            max=float(values.max()),
            n=int(values.size),
        )

    # use the *measured* (noisy) end-of-trajectory loss — `final_loss` is
    # the model's noise-free expectation and is seed-independent by design
    measured_loss = np.array([float(r.loss_values[-1]) for r in results])
    energy = np.array([r.energy_kwh for r in results])
    outcomes = {
        "final_loss": measured_loss,
        "energy_kwh": energy,
        "tradeoff": measured_loss * energy,
        "wall_time_s": np.array([r.wall_time_s for r in results]),
    }
    spreads = {name: aggregate(name, values) for name, values in outcomes.items()}
    return SeedSweep(job=job, results=results, spreads=spreads)
