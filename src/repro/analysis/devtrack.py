"""Development tracking (§3.1): script snapshots, diffs, command logs.

The paper proposes tracking "git differences ... enabling a one-to-one
memorization of each modification, along with the results obtained for the
specific version of the script", so developers can "roll back to a specific
moment in time and understand what caused the change".  No git binary is
assumed: the tracker content-hashes script snapshots into a parent-linked
chain (exactly the git object model in miniature), produces unified diffs
between any two versions, pairs snapshots with run results, and emits a
"development graph" as a W3C PROV document (snapshots as entities linked by
``wasDerivedFrom``, runs as activities that ``used`` their snapshot).
"""

from __future__ import annotations

import difflib
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.atomicio import atomic_write_text
from repro.errors import AnalysisError
from repro.prov.document import ProvDocument
from repro.prov.identifiers import Namespace

DEVTRACK_NS = Namespace("dev", "https://github.com/HPCI-Lab/yProvML/devtrack#")


@dataclass(frozen=True)
class Snapshot:
    """One recorded version of a tracked script."""

    id: str            # content hash (12 hex chars)
    parent: Optional[str]
    note: str
    content: str
    index: int

    @property
    def short(self) -> str:
        return self.id[:7]


@dataclass
class RunLink:
    """Pairing of a snapshot with the outcome of running it."""

    snapshot_id: str
    run_id: str
    metrics: Dict[str, float] = field(default_factory=dict)


class DevelopmentTracker:
    """Snapshot chain + command log for one script/project."""

    def __init__(self, name: str = "script") -> None:
        self.name = name
        self._snapshots: Dict[str, Snapshot] = {}
        self._order: List[str] = []
        self._links: List[RunLink] = []
        self.commands: List[Tuple[str, str]] = []  # (command, output)

    # -- snapshots -----------------------------------------------------------
    @staticmethod
    def _hash(content: str, parent: Optional[str]) -> str:
        digest = hashlib.sha256()
        digest.update((parent or "").encode())
        digest.update(content.encode())
        return digest.hexdigest()[:12]

    def snapshot(self, content: str, note: str = "") -> Snapshot:
        """Record a new version; identical consecutive content is a no-op."""
        parent = self._order[-1] if self._order else None
        if parent is not None and self._snapshots[parent].content == content:
            return self._snapshots[parent]
        snap_id = self._hash(content, parent)
        if snap_id in self._snapshots:
            # same content + same parent: already recorded
            return self._snapshots[snap_id]
        snap = Snapshot(
            id=snap_id, parent=parent, note=note,
            content=content, index=len(self._order),
        )
        self._snapshots[snap_id] = snap
        self._order.append(snap_id)
        return snap

    def snapshot_file(self, path: Union[str, Path], note: str = "") -> Snapshot:
        return self.snapshot(Path(path).read_text(encoding="utf-8"), note=note)

    def get(self, snapshot_id: str) -> Snapshot:
        """Look up a snapshot by id or unique prefix."""
        snap = self._snapshots.get(snapshot_id)
        if snap is None:
            # allow short prefixes
            matches = [s for sid, s in self._snapshots.items() if sid.startswith(snapshot_id)]
            if len(matches) == 1:
                return matches[0]
            raise AnalysisError(f"unknown snapshot: {snapshot_id!r}")
        return snap

    @property
    def history(self) -> List[Snapshot]:
        return [self._snapshots[sid] for sid in self._order]

    @property
    def head(self) -> Optional[Snapshot]:
        return self._snapshots[self._order[-1]] if self._order else None

    def rollback(self, snapshot_id: str) -> str:
        """Content of an earlier version ("roll back to a specific moment")."""
        return self.get(snapshot_id).content

    def diff(self, old_id: str, new_id: str) -> str:
        """Unified diff between two snapshots."""
        old = self.get(old_id)
        new = self.get(new_id)
        lines = difflib.unified_diff(
            old.content.splitlines(keepends=True),
            new.content.splitlines(keepends=True),
            fromfile=f"{self.name}@{old.short}",
            tofile=f"{self.name}@{new.short}",
        )
        return "".join(lines)

    # -- pairing with results (§3.1: version <-> outcome) ----------------------
    def link_run(self, snapshot_id: str, run_id: str,
                 metrics: Optional[Dict[str, float]] = None) -> RunLink:
        snap = self.get(snapshot_id)
        link = RunLink(snapshot_id=snap.id, run_id=run_id, metrics=dict(metrics or {}))
        self._links.append(link)
        return link

    def runs_of(self, snapshot_id: str) -> List[RunLink]:
        snap = self.get(snapshot_id)
        return [l for l in self._links if l.snapshot_id == snap.id]

    def best_snapshot(self, metric: str, lower_is_better: bool = True) -> Snapshot:
        """"Investigate which version of the project worked better"."""
        scored: List[Tuple[float, str]] = [
            (link.metrics[metric], link.snapshot_id)
            for link in self._links
            if metric in link.metrics
        ]
        if not scored:
            raise AnalysisError(f"no linked runs with metric {metric!r}")
        scored.sort(reverse=not lower_is_better)
        return self.get(scored[0][1])

    # -- command log -----------------------------------------------------------
    def record_command(self, command: str, output: str = "") -> None:
        """Append to "the full list of executed console commands, along with
        the textual output of each one"."""
        self.commands.append((command, output))

    # -- development graph -------------------------------------------------------
    def development_graph(self) -> ProvDocument:
        """Persist snapshots, run links and the command log as JSON."""
        """The §3.1 "development graph" as a PROV document."""
        doc = ProvDocument()
        doc.add_namespace(DEVTRACK_NS)
        agent = doc.agent(DEVTRACK_NS("developer"), {"prov:label": "developer"})
        for snap in self.history:
            ent = DEVTRACK_NS(f"snapshot/{snap.id}")
            doc.entity(
                ent,
                {
                    "prov:type": DEVTRACK_NS("ScriptVersion"),
                    "prov:label": f"{self.name}@{snap.short}",
                    "dev:note": snap.note or "(none)",
                    "dev:index": snap.index,
                    "dev:lines": snap.content.count("\n") + 1,
                },
            )
            doc.was_attributed_to(ent, agent.identifier)
            if snap.parent is not None:
                doc.was_derived_from(ent, DEVTRACK_NS(f"snapshot/{snap.parent}"))
        for i, link in enumerate(self._links):
            act = DEVTRACK_NS(f"run/{link.run_id}")
            doc.activity(act, attributes={
                "prov:type": DEVTRACK_NS("TrackedRun"),
                "prov:label": link.run_id,
            })
            doc.used(act, DEVTRACK_NS(f"snapshot/{link.snapshot_id}"))
            for metric, value in sorted(link.metrics.items()):
                ent = DEVTRACK_NS(f"result/{link.run_id}/{metric}")
                doc.entity(ent, {
                    "prov:type": DEVTRACK_NS("Result"),
                    "prov:label": metric,
                    "dev:value": float(value),
                })
                doc.was_generated_by(ent, act)
        for i, (command, output) in enumerate(self.commands):
            ent = DEVTRACK_NS(f"command/{i}")
            doc.entity(ent, {
                "prov:type": DEVTRACK_NS("ConsoleCommand"),
                "prov:label": command,
                "dev:output_chars": len(output),
            })
            doc.was_attributed_to(ent, agent.identifier)
        return doc

    # -- persistence ------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Rebuild a tracker persisted with :meth:`save`."""
        doc = {
            "name": self.name,
            "snapshots": [
                {"id": s.id, "parent": s.parent, "note": s.note,
                 "content": s.content, "index": s.index}
                for s in self.history
            ],
            "links": [
                {"snapshot_id": l.snapshot_id, "run_id": l.run_id, "metrics": l.metrics}
                for l in self._links
            ],
            "commands": self.commands,
        }
        atomic_write_text(Path(path), json.dumps(doc, indent=1))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "DevelopmentTracker":
        """Rebuild a tracker persisted with :meth:`save`."""
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
        tracker = cls(doc["name"])
        for spec in doc["snapshots"]:
            snap = Snapshot(**spec)
            tracker._snapshots[snap.id] = snap
            tracker._order.append(snap.id)
        for spec in doc["links"]:
            tracker._links.append(RunLink(**spec))
        tracker.commands = [tuple(c) for c in doc["commands"]]
        return tracker
