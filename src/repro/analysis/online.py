"""Online advisory tracking (§3.2).

"An online provenance tracking process could give real-time guidelines in
how to proceed during the training process, understanding when to stop.
This would result in a more optimized use of compute hours, as the process
could be stopped when a specific threshold of energy, compute, or
performance is achieved, removing unnecessary iterations."

Two layers:

* :class:`OnlineAdvisor` — attaches an
  :class:`~repro.analysis.tradeoff.EarlyStopAdvisor` to a *live*
  :class:`~repro.core.experiment.RunExecution`: each :meth:`check` reads
  the run's own metric buffers (loss + cumulative energy) and returns the
  advised stop step, if any;
* :func:`apply_early_stop` — the simulator integration: truncates a
  :class:`~repro.simulator.training.TrainingResult` at the advised step,
  recomputing walltime, energy and final loss, so benches can quantify the
  compute-hours the advisor saves.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

import numpy as np

from repro.analysis.tradeoff import EarlyStopAdvisor
from repro.core.context import Context
from repro.core.experiment import RunExecution
from repro.errors import AnalysisError


class OnlineAdvisor:
    """Live stop-signal over a running tracked run."""

    def __init__(
        self,
        advisor: Optional[EarlyStopAdvisor] = None,
        loss_metric: str = "loss",
        energy_metric: str = "energy_joules",
        context: Union[Context, str] = Context.TRAINING,
    ) -> None:
        self.advisor = advisor or EarlyStopAdvisor()
        self.loss_metric = loss_metric
        self.energy_metric = energy_metric
        self.context = Context.of(context)
        self._decision: Optional[int] = None

    def check(self, run: RunExecution) -> Optional[int]:
        """Advised stop step given the run's trajectories so far (sticky:
        once a stop is advised it is remembered)."""
        if self._decision is not None:
            return self._decision
        try:
            loss = run.get_metric(self.loss_metric, self.context)
            energy = run.get_metric(self.energy_metric, self.context)
        except Exception:
            return None  # metrics not logged yet
        n = min(len(loss), len(energy))
        if n == 0:
            return None
        decision = self.advisor.decide(
            loss.steps[:n],
            loss.values[:n],
            energy.values[:n] / 3.6e6,  # joules -> kWh
        )
        if decision is not None:
            self._decision = decision
        return decision

    def should_stop(self, run: RunExecution) -> bool:
        return self.check(run) is not None

    @property
    def decision(self) -> Optional[int]:
        return self._decision


def apply_early_stop(result, advisor: Optional[EarlyStopAdvisor] = None):
    """Truncate a :class:`TrainingResult` at the advisor's stop step.

    Returns a new result (the original is untouched) with steps, walltime,
    energy and the loss trajectory cut at the advised step; when the
    advisor never fires, the original result is returned unchanged.
    """
    from repro.simulator.lossmodel import ScalingLawLoss
    from repro.simulator.power import EnergyAccount, PowerModel

    advisor = advisor or EarlyStopAdvisor()
    timing = result.step_timing
    job = result.job
    power = PowerModel(job.resolve_cluster().allocate(job.n_gpus))
    step_energy_j = (
        timing.compute_s * power.compute_power_w
        + timing.exposed_comm_s * power.comm_power_w
    )
    energy_kwh = result.loss_steps.astype(np.float64) * step_energy_j / 3.6e6
    stop = advisor.decide(result.loss_steps, result.loss_values, energy_kwh)
    if stop is None or stop >= result.steps_done:
        return result

    keep = result.loss_steps <= stop
    steps_done = int(stop)
    loss_model = ScalingLawLoss(
        architecture=job.model.architecture,
        param_count=job.model.param_count,
        unique_tokens=job.dataset.n_patches * job.model.tokens_per_sample,
        seed=job.seed,
    )
    tokens_per_step = job.batch_per_gpu * job.n_gpus * job.model.tokens_per_sample
    energy = EnergyAccount()
    energy.add("compute", power.compute_power_w, steps_done * timing.compute_s)
    energy.add("communication", power.comm_power_w,
               steps_done * timing.exposed_comm_s)
    steps_per_epoch = max(1, result.steps_target // job.epochs)
    return replace(
        result,
        completed=False,
        steps_done=steps_done,
        epochs_done=steps_done // steps_per_epoch,
        wall_time_s=steps_done * timing.step_s,
        final_loss=loss_model.final_loss(steps_done, tokens_per_step),
        energy=energy,
        loss_steps=result.loss_steps[keep],
        loss_values=result.loss_values[keep],
        run_id=None,      # the truncated result is a hypothetical, not the
        prov_path=None,   # tracked run it was derived from
    )
