"""Hyperparameter analysis across grouped runs (§3.4).

"A better approach could revolve around the grouping of the results of a
high number of experiments.  This way, users will be able to identify
targets that are similar to their own and deduce the optimal hyperparameter
values for their particular application."

:class:`HyperparamAnalyzer` works over the provenance knowledge base:

* :meth:`effects` — rank numeric hyperparameters by Spearman correlation
  with a target metric (which knobs matter);
* :meth:`best_values` — for each hyperparameter, the value carried by the
  best runs;
* :meth:`suggest` — given a partial configuration, propose values for the
  remaining knobs from the most similar historical runs;
* :meth:`group_by` — aggregate a metric per hyperparameter value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.core.provgen import RunSummary
from repro.core.registry import ExperimentRegistry
from repro.errors import AnalysisError, InsufficientHistoryError


@dataclass(frozen=True)
class ParamEffect:
    """Correlation of one hyperparameter with the target metric."""

    param: str
    spearman_rho: float
    p_value: float
    n_runs: int

    @property
    def direction(self) -> str:
        """Whether increasing the parameter increases or decreases the target."""
        if abs(self.spearman_rho) < 0.1:
            return "negligible"
        return "increases" if self.spearman_rho > 0 else "decreases"


class HyperparamAnalyzer:
    """Hyperparameter queries over a run registry."""

    def __init__(self, registry: ExperimentRegistry, min_runs: int = 3) -> None:
        self.registry = registry
        self.min_runs = min_runs

    def _collect(
        self,
        metric: str,
        context: str,
        experiment: Optional[str],
        where: Optional[Mapping[str, Any]],
    ) -> List[Tuple[RunSummary, float]]:
        rows = []
        for summary in self.registry.find(experiment=experiment, where=where):
            value = summary.final_metric(metric, context)
            if value is not None:
                rows.append((summary, float(value)))
        if len(rows) < self.min_runs:
            raise InsufficientHistoryError(
                f"only {len(rows)} runs with metric {metric!r} (need >= {self.min_runs})"
            )
        return rows

    @staticmethod
    def _numeric(value: Any) -> Optional[float]:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        return None

    # ------------------------------------------------------------------
    def effects(
        self,
        metric: str = "final_loss",
        context: str = "TESTING",
        experiment: Optional[str] = None,
        where: Optional[Mapping[str, Any]] = None,
    ) -> List[ParamEffect]:
        """Spearman correlation of every numeric param with the metric,
        sorted by absolute correlation (strongest knob first)."""
        rows = self._collect(metric, context, experiment, where)
        param_names = sorted({name for s, _ in rows for name in s.params})
        effects: List[ParamEffect] = []
        for name in param_names:
            xs, ys = [], []
            for summary, y in rows:
                x = self._numeric(summary.params.get(name))
                if x is not None:
                    xs.append(x)
                    ys.append(y)
            if len(xs) < self.min_runs or len(set(xs)) < 2:
                continue
            rho, p = stats.spearmanr(xs, ys)
            if np.isnan(rho):
                continue
            effects.append(ParamEffect(name, float(rho), float(p), len(xs)))
        effects.sort(key=lambda e: abs(e.spearman_rho), reverse=True)
        return effects

    def group_by(
        self,
        param: str,
        metric: str = "final_loss",
        context: str = "TESTING",
        experiment: Optional[str] = None,
    ) -> Dict[Any, Dict[str, float]]:
        """Aggregate the metric per distinct value of *param*."""
        rows = self._collect(metric, context, experiment, None)
        buckets: Dict[Any, List[float]] = {}
        for summary, y in rows:
            if param in summary.params:
                key = summary.params[param]
                key = tuple(key) if isinstance(key, list) else key
                buckets.setdefault(key, []).append(y)
        return {
            key: {
                "count": len(vals),
                "mean": float(np.mean(vals)),
                "min": float(np.min(vals)),
                "max": float(np.max(vals)),
            }
            for key, vals in sorted(buckets.items(), key=lambda kv: str(kv[0]))
        }

    def best_values(
        self,
        metric: str = "final_loss",
        context: str = "TESTING",
        experiment: Optional[str] = None,
        lower_is_better: bool = True,
        top_k: int = 3,
    ) -> Dict[str, Any]:
        """Modal parameter values among the *top_k* best runs."""
        rows = self._collect(metric, context, experiment, None)
        rows.sort(key=lambda pair: pair[1], reverse=not lower_is_better)
        top = rows[: min(top_k, len(rows))]
        out: Dict[str, Any] = {}
        names = sorted({name for s, _ in top for name in s.params})
        for name in names:
            values = [s.params[name] for s, _ in top if name in s.params]
            hashable = [tuple(v) if isinstance(v, list) else v for v in values]
            # mode, ties broken by value of the best run
            counts: Dict[Any, int] = {}
            for v in hashable:
                counts[v] = counts.get(v, 0) + 1
            best_value = max(hashable, key=lambda v: (counts[v], v == hashable[0]))
            out[name] = list(best_value) if isinstance(best_value, tuple) else best_value
        return out

    def suggest(
        self,
        partial_config: Mapping[str, Any],
        metric: str = "final_loss",
        context: str = "TESTING",
        experiment: Optional[str] = None,
        lower_is_better: bool = True,
        k_similar: int = 5,
    ) -> Dict[str, Any]:
        """Fill unspecified hyperparameters from the most similar good runs.

        Similarity = number of matching fixed parameters; among the most
        similar runs, the best-by-metric run donates its remaining values.
        """
        rows = self._collect(metric, context, experiment, None)

        def similarity(summary: RunSummary) -> int:
            return sum(
                1 for key, value in partial_config.items()
                if summary.params.get(key) == value
            )

        rows.sort(key=lambda pair: (-similarity(pair[0]),
                                    pair[1] if lower_is_better else -pair[1]))
        pool = rows[: min(k_similar, len(rows))]
        if not pool:
            raise InsufficientHistoryError("no similar runs found")
        donor = pool[0][0]
        suggestion = dict(partial_config)
        for name, value in donor.params.items():
            suggestion.setdefault(name, value)
        return suggestion
