"""History-based forecasting from the provenance knowledge base (§3.3, #2).

"Another approach ... would revolve around the use of historical data from
previous, but similar, experiments.  A ML-based forecasting approach could
give ... a more precise estimate ... with a single inference step."

:class:`ProvenanceForecaster` fits a small model on the runs recorded in an
:class:`~repro.core.registry.ExperimentRegistry` (i.e. recovered straight
out of PROV-JSON files) and predicts target metrics for unseen
configurations.  Features are log-scaled numeric parameters; the predictor
is ridge-regularized least squares with a k-nearest-neighbour fallback when
the design matrix is degenerate.  Deliberately simple — the paper's point
is the *pipeline* (provenance → searchable KB → one-inference-step
estimate), not a SOTA regressor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.provgen import RunSummary
from repro.core.registry import ExperimentRegistry
from repro.errors import AnalysisError, InsufficientHistoryError

#: Parameters treated as numeric features when present (log1p-scaled).
DEFAULT_FEATURES = (
    "param_count",
    "n_gpus",
    "global_batch",
    "dataset_patches",
    "epochs_target",
)


@dataclass(frozen=True)
class Forecast:
    """Prediction for one configuration."""

    target: str
    predicted: float
    n_history: int
    method: str  # "ridge" or "knn"


class ProvenanceForecaster:
    """Fit on a run registry, predict metrics for new configurations."""

    def __init__(
        self,
        registry: ExperimentRegistry,
        features: Sequence[str] = DEFAULT_FEATURES,
        min_history: int = 3,
        ridge_lambda: float = 1e-3,
    ) -> None:
        self.registry = registry
        self.features = tuple(features)
        self.min_history = min_history
        self.ridge_lambda = ridge_lambda

    # -- feature extraction ---------------------------------------------------
    def _feature_vector(self, params: Mapping[str, object]) -> Optional[np.ndarray]:
        values = []
        for name in self.features:
            raw = params.get(name)
            if raw is None:
                return None
            try:
                values.append(np.log1p(float(raw)))
            except (TypeError, ValueError):
                return None
        return np.asarray(values, dtype=np.float64)

    def _training_set(
        self,
        target: str,
        context: str,
        experiment: Optional[str],
        where: Optional[Mapping[str, object]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        xs: List[np.ndarray] = []
        ys: List[float] = []
        for summary in self.registry.find(experiment=experiment, where=where):
            y = summary.final_metric(target, context)
            if y is None:
                continue
            x = self._feature_vector(summary.params)
            if x is None:
                continue
            xs.append(x)
            ys.append(float(y))
        if len(xs) < self.min_history:
            raise InsufficientHistoryError(
                f"only {len(xs)} usable runs for target {target!r} "
                f"(need >= {self.min_history})"
            )
        return np.stack(xs), np.asarray(ys)

    # -- prediction --------------------------------------------------------------
    def predict(
        self,
        params: Mapping[str, object],
        target: str = "final_loss",
        context: str = "TESTING",
        experiment: Optional[str] = None,
        where: Optional[Mapping[str, object]] = None,
        log_target: bool = False,
    ) -> Forecast:
        """One-inference-step estimate of *target* for a configuration.

        ``log_target=True`` fits the regression on ``log(y)`` and returns
        the exponentiated prediction — the right space for strictly
        positive, multiplicative quantities like energy or walltime.
        """
        x_new = self._feature_vector(params)
        if x_new is None:
            missing = [f for f in self.features if f not in params]
            raise AnalysisError(f"configuration lacks numeric features: {missing}")
        X, y = self._training_set(target, context, experiment, where)
        if log_target:
            if np.any(y <= 0):
                raise AnalysisError("log_target requires strictly positive history")
            y = np.log(y)

        # standardize features (constant columns get unit scale)
        mean = X.mean(axis=0)
        std = X.std(axis=0)
        std = np.where(std > 1e-12, std, 1.0)
        Xs = (X - mean) / std
        xs_new = (x_new - mean) / std

        # ridge regression with intercept
        design = np.hstack([Xs, np.ones((Xs.shape[0], 1))])
        k = design.shape[1]
        gram = design.T @ design + self.ridge_lambda * np.eye(k)
        try:
            weights = np.linalg.solve(gram, design.T @ y)
            predicted = float(np.append(xs_new, 1.0) @ weights)
            method = "ridge"
        except np.linalg.LinAlgError:
            predicted, method = self._knn(Xs, y, xs_new), "knn"

        # ridge can extrapolate wildly from tiny histories; clamp to a sane
        # envelope around observed values and fall back to kNN when insane
        lo, hi = y.min(), y.max()
        span = max(hi - lo, abs(hi) * 0.5, 1e-12)
        if not (lo - 2 * span <= predicted <= hi + 2 * span):
            predicted, method = self._knn(Xs, y, xs_new), "knn"

        if log_target:
            predicted = float(np.exp(predicted))
        return Forecast(target=target, predicted=predicted,
                        n_history=y.shape[0], method=method)

    def _knn(self, Xs: np.ndarray, y: np.ndarray, x: np.ndarray, k: int = 3) -> float:
        d = np.linalg.norm(Xs - x, axis=1)
        idx = np.argsort(d)[: min(k, d.shape[0])]
        weights = 1.0 / (d[idx] + 1e-9)
        return float(np.average(y[idx], weights=weights))

    # -- evaluation ----------------------------------------------------------------
    def leave_one_out_error(
        self,
        target: str = "final_loss",
        context: str = "TESTING",
        experiment: Optional[str] = None,
    ) -> float:
        """Mean relative LOO prediction error over the KB (quality gauge)."""
        X, y = self._training_set(target, context, experiment, None)
        n = y.shape[0]
        if n < self.min_history + 1:
            raise InsufficientHistoryError("too few runs for leave-one-out")
        errors = []
        for i in range(n):
            mask = np.arange(n) != i
            sub = _ArrayRegistry(X[mask], y[mask], self.features, target, context)
            forecaster = ProvenanceForecaster(
                sub, features=self.features,
                min_history=self.min_history, ridge_lambda=self.ridge_lambda,
            )
            params = {f: float(np.expm1(v)) for f, v in zip(self.features, X[i])}
            pred = forecaster.predict(params, target=target, context=context).predicted
            denom = abs(y[i]) if abs(y[i]) > 1e-12 else 1.0
            errors.append(abs(pred - y[i]) / denom)
        return float(np.mean(errors))


class _ArrayRegistry:
    """Minimal registry view over pre-extracted arrays (internal, for LOO)."""

    def __init__(self, X: np.ndarray, y: np.ndarray, features: Sequence[str],
                 target: str, context: str) -> None:
        self._summaries: List[RunSummary] = []
        for i in range(y.shape[0]):
            params = {f: float(np.expm1(v)) for f, v in zip(features, X[i])}
            summary = RunSummary(
                experiment="loo", run_id=f"loo_{i}", status="finished",
                duration_s=None, params=params,
                metrics={f"{target}@{context}": {"last": float(y[i])}},
            )
            self._summaries.append(summary)

    def find(self, experiment=None, where=None, predicate=None, status=None):
        return list(self._summaries)
