"""Analysis layer: the four application scenarios of paper §3.

* :mod:`repro.analysis.devtrack` — §3.1 development tracking: script
  snapshots, diffs, command logs, the "development graph";
* :mod:`repro.analysis.tradeoff` — §3.2 + Figure 3: energy × performance
  trade-off grids and the online early-stopping advisor;
* :mod:`repro.analysis.scaling` — §3.3 analytical scaling-study estimation
  without training (scaling laws + the DDP cost model);
* :mod:`repro.analysis.forecasting` — §3.3 history-based forecasting from
  the provenance knowledge base (single-inference-step prediction);
* :mod:`repro.analysis.hyperparams` — §3.4 hyperparameter analysis across
  grouped runs.
"""

from repro.analysis.tradeoff import TradeoffGrid, EarlyStopAdvisor, tradeoff_score
from repro.analysis.scaling import ScalingEstimator, ScalingEstimate
from repro.analysis.forecasting import ProvenanceForecaster, Forecast
from repro.analysis.hyperparams import HyperparamAnalyzer, ParamEffect
from repro.analysis.devtrack import DevelopmentTracker, Snapshot
from repro.analysis.online import OnlineAdvisor, apply_early_stop
from repro.analysis.variance import MetricSpread, SeedSweep, seed_sweep

__all__ = [
    "OnlineAdvisor",
    "apply_early_stop",
    "MetricSpread",
    "SeedSweep",
    "seed_sweep",
    "TradeoffGrid",
    "EarlyStopAdvisor",
    "tradeoff_score",
    "ScalingEstimator",
    "ScalingEstimate",
    "ProvenanceForecaster",
    "Forecast",
    "HyperparamAnalyzer",
    "ParamEffect",
    "DevelopmentTracker",
    "Snapshot",
]
