"""Analytical scaling-study estimation without training (§3.3, approach 1).

"The former utilizes an analytical approach to determine an estimate of the
performance when scaling one of the three aforementioned factors
[parameters, dataset size, compute devices]."  The estimator combines the
scaling-law loss model with the DDP cost model, so a user can ask "what if
I doubled the parameters / the data / the GPUs?" and receive predicted
loss, walltime and energy with a single function call — no training run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from repro.errors import AnalysisError
from repro.simulator.cluster import ClusterSpec, frontier
from repro.simulator.data import SyntheticMODIS
from repro.simulator.ddp import DDPEngine
from repro.simulator.lossmodel import ScalingLawLoss
from repro.simulator.models import MAEConfig, model_zoo
from repro.simulator.power import PowerModel
from repro.simulator.training import TrainingJob


@dataclass(frozen=True)
class ScalingEstimate:
    """Predicted outcome of a hypothetical configuration."""

    architecture: str
    param_count: float
    n_gpus: int
    dataset_patches: int
    epochs: int
    predicted_loss: float
    predicted_walltime_s: float
    predicted_energy_kwh: float
    fits_walltime: bool

    @property
    def predicted_tradeoff(self) -> float:
        return self.predicted_loss * self.predicted_energy_kwh


class ScalingEstimator:
    """Predicts loss / walltime / energy for hypothetical configurations."""

    def __init__(self, cluster: Optional[ClusterSpec] = None) -> None:
        self.cluster = cluster if cluster is not None else frontier()

    def estimate_job(self, job: TrainingJob) -> ScalingEstimate:
        """Closed-form prediction of what :func:`simulate_training` would do.

        (The two agree by construction — the value of the estimator is that
        analyses built on it can sweep thousands of hypothetical
        configurations cheaply, and that it can also be driven from a
        RunSummary recovered out of provenance, not just from live jobs.)
        """
        allocation = self.cluster.allocate(job.n_gpus)
        engine = DDPEngine(
            model=job.model, allocation=allocation,
            batch_per_gpu=job.batch_per_gpu, mfu=job.mfu,
        )
        timing = engine.step_timing()
        steps_per_epoch = max(1, -(-job.dataset.n_patches // engine.global_batch))
        steps_target = steps_per_epoch * job.epochs
        walltime = steps_target * timing.step_s
        fits = walltime <= job.walltime_s
        steps_done = min(steps_target, int(job.walltime_s // timing.step_s))
        steps_done = max(steps_done, 1)

        loss_model = ScalingLawLoss(
            architecture=job.model.architecture,
            param_count=job.model.param_count,
            unique_tokens=job.dataset.n_patches * job.model.tokens_per_sample,
            seed=job.seed,
        )
        tokens_per_step = engine.global_batch * job.model.tokens_per_sample
        loss = loss_model.final_loss(steps_done, tokens_per_step)

        power = PowerModel(allocation)
        energy_j = steps_done * (
            timing.compute_s * power.compute_power_w
            + timing.exposed_comm_s * power.comm_power_w
        )
        return ScalingEstimate(
            architecture=job.model.architecture,
            param_count=float(job.model.param_count),
            n_gpus=job.n_gpus,
            dataset_patches=job.dataset.n_patches,
            epochs=job.epochs,
            predicted_loss=loss,
            predicted_walltime_s=min(walltime, steps_done * timing.step_s),
            predicted_energy_kwh=energy_j / 3.6e6,
            fits_walltime=fits,
        )

    # -- the three §3.3 scaling axes ---------------------------------------
    def scale_parameters(self, base: TrainingJob, sizes: List[str]) -> List[ScalingEstimate]:
        """Sweep model size (zoo labels) at fixed data and devices."""
        zoo = model_zoo()
        arch = base.model.architecture
        if arch not in zoo:
            raise AnalysisError(f"architecture {arch!r} not in the zoo")
        out = []
        for size in sizes:
            if size not in zoo[arch]:
                raise AnalysisError(f"size {size!r} not in the zoo")
            out.append(self.estimate_job(replace(base, model=zoo[arch][size])))
        return out

    def scale_data(self, base: TrainingJob, fractions: List[float]) -> List[ScalingEstimate]:
        """Sweep dataset fraction at fixed model and devices."""
        out = []
        for fraction in fractions:
            out.append(
                self.estimate_job(replace(base, dataset=base.dataset.subset(fraction)))
            )
        return out

    def scale_devices(self, base: TrainingJob, gpu_counts: List[int]) -> List[ScalingEstimate]:
        """Sweep GPU count at fixed model and data."""
        return [self.estimate_job(replace(base, n_gpus=n)) for n in gpu_counts]

    def min_gpus_within_walltime(
        self, base: TrainingJob, candidates: Optional[List[int]] = None
    ) -> Optional[int]:
        """Smallest GPU count whose full run fits the walltime (None = none)."""
        candidates = candidates or [8, 16, 32, 64, 128, 256, 512]
        for n in sorted(candidates):
            estimate = self.estimate_job(replace(base, n_gpus=n))
            if estimate.fits_walltime:
                return n
        return None

    def compute_optimal_params(self, architecture: str, budget_flops: float) -> float:
        """Chinchilla-style compute-optimal parameter count for a budget."""
        probe = ScalingLawLoss(
            architecture=architecture, param_count=1e8, unique_tokens=1e12
        )
        return probe.compute_optimal_size(budget_flops)
