"""Energy × performance trade-off analysis (§3.2, Figure 3).

Figure 3 plots "the loss times the total energy consumption" over a grid of
model sizes × GPU counts, with empty cells where the job exceeded the
2-hour walltime.  :class:`TradeoffGrid` holds such a grid, renders it in
the paper's layout, and answers the qualitative questions the paper draws
from it (where is the best cell, how steep is an architecture's curve).

:class:`EarlyStopAdvisor` implements the §3.2 idea that "an online
provenance tracking process could give real-time guidelines ... when to
stop": it watches a loss trajectory with a known energy cost per step and
signals when the marginal improvement per kWh falls under a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError


def tradeoff_score(loss: float, energy_kwh: float) -> float:
    """The Figure 3 metric: loss × total energy (kWh)."""
    if loss < 0 or energy_kwh < 0:
        raise AnalysisError("loss and energy must be non-negative")
    return loss * energy_kwh


@dataclass
class TradeoffGrid:
    """A (model size × GPU count) grid of trade-off scores.

    ``None`` cells are walltime-exceeded jobs (the paper's empty cells).
    """

    architecture: str
    sizes: List[str]
    gpu_counts: List[int]
    cells: Dict[Tuple[str, int], Optional[float]] = field(default_factory=dict)

    def set(self, size: str, n_gpus: int, score: Optional[float]) -> None:
        if size not in self.sizes or n_gpus not in self.gpu_counts:
            raise AnalysisError(f"cell ({size}, {n_gpus}) outside grid")
        self.cells[(size, n_gpus)] = score

    def get(self, size: str, n_gpus: int) -> Optional[float]:
        return self.cells.get((size, n_gpus))

    @classmethod
    def from_results(cls, architecture: str, results: Sequence) -> "TradeoffGrid":
        """Build from :class:`~repro.simulator.training.TrainingResult` list."""
        sizes: List[str] = []
        gpus: List[int] = []
        for res in results:
            if res.job.size_label not in sizes:
                sizes.append(res.job.size_label)
            if res.job.n_gpus not in gpus:
                gpus.append(res.job.n_gpus)
        grid = cls(architecture=architecture, sizes=sizes, gpu_counts=sorted(gpus))
        for res in results:
            grid.set(
                res.job.size_label,
                res.job.n_gpus,
                res.tradeoff if res.completed else None,
            )
        return grid

    # -- queries ------------------------------------------------------------
    def best_cell(self) -> Tuple[str, int, float]:
        """The completed cell with the lowest (best) trade-off score."""
        best: Optional[Tuple[str, int, float]] = None
        for (size, gpus), score in self.cells.items():
            if score is None:
                continue
            if best is None or score < best[2]:
                best = (size, gpus, score)
        if best is None:
            raise AnalysisError("grid has no completed cells")
        return best

    def empty_cells(self) -> List[Tuple[str, int]]:
        """Walltime-exceeded cells, sorted."""
        out = [cell for cell, score in self.cells.items() if score is None]
        return sorted(out, key=lambda c: (self.sizes.index(c[0]), c[1]))

    def completed_fraction(self) -> float:
        if not self.cells:
            return 0.0
        done = sum(1 for s in self.cells.values() if s is not None)
        return done / len(self.cells)

    def steepness(self) -> float:
        """Mean log-slope of the trade-off vs model size (paper: MAE is
        "steeper" than SwinT).

        For each GPU count, fit the slope of ``log(score)`` against the size
        index over completed cells; returns the average slope.  Larger means
        the metric degrades faster as the model grows.
        """
        slopes: List[float] = []
        for gpus in self.gpu_counts:
            xs, ys = [], []
            for i, size in enumerate(self.sizes):
                score = self.get(size, gpus)
                if score is not None and score > 0:
                    xs.append(float(i))
                    ys.append(np.log(score))
            if len(xs) >= 2:
                slope = np.polyfit(np.asarray(xs), np.asarray(ys), 1)[0]
                slopes.append(float(slope))
        if not slopes:
            raise AnalysisError("not enough completed cells to measure steepness")
        return float(np.mean(slopes))

    def to_csv(self) -> str:
        """CSV rendering (size rows × GPU columns; empty cells stay empty),
        ready for external plotting of Figure 3."""
        lines = ["size," + ",".join(str(g) for g in self.gpu_counts)]
        for size in self.sizes:
            cells = []
            for gpus in self.gpu_counts:
                score = self.get(size, gpus)
                cells.append("" if score is None else f"{score!r}")
            lines.append(f"{size}," + ",".join(cells))
        return "\n".join(lines) + "\n"

    def format(self, precision: int = 3) -> str:
        """Render the grid in Figure 3's layout (sizes × GPU counts)."""
        width = max(10, precision + 7)
        header = f"{self.architecture:<8}" + "".join(
            f"{g:>{width}}" for g in self.gpu_counts
        )
        lines = [header, "-" * len(header)]
        for size in self.sizes:
            row = [f"{size:<8}"]
            for gpus in self.gpu_counts:
                score = self.get(size, gpus)
                row.append(
                    f"{'':>{width}}" if score is None else f"{score:>{width}.{precision}f}"
                )
            lines.append("".join(row))
        return "\n".join(lines)


@dataclass
class EarlyStopAdvisor:
    """Online stop-signal from marginal-improvement-per-energy (§3.2).

    ``min_improvement_per_kwh`` — keep training only while each additional
    kWh buys at least this much loss reduction (averaged over ``window``
    observations).  Optional hard budgets on loss / energy / steps.
    """

    min_improvement_per_kwh: float = 1e-3
    window: int = 20
    loss_target: Optional[float] = None
    energy_budget_kwh: Optional[float] = None
    max_steps: Optional[int] = None

    def decide(
        self,
        steps: np.ndarray,
        losses: np.ndarray,
        energy_kwh: np.ndarray,
    ) -> Optional[int]:
        """First step at which training should stop (None = keep going).

        All arrays are parallel trajectories (monotone steps and energy).
        """
        steps = np.asarray(steps)
        losses = np.asarray(losses, dtype=np.float64)
        energy_kwh = np.asarray(energy_kwh, dtype=np.float64)
        if not (steps.shape == losses.shape == energy_kwh.shape):
            raise AnalysisError("trajectory arrays must have matching shapes")
        if steps.size == 0:
            return None

        if self.loss_target is not None:
            hit = np.nonzero(losses <= self.loss_target)[0]
            if hit.size:
                return int(steps[hit[0]])
        if self.energy_budget_kwh is not None:
            hit = np.nonzero(energy_kwh >= self.energy_budget_kwh)[0]
            if hit.size:
                return int(steps[hit[0]])
        if self.max_steps is not None:
            hit = np.nonzero(steps >= self.max_steps)[0]
            if hit.size:
                return int(steps[hit[0]])

        w = self.window
        if steps.size <= w:
            return None
        d_loss = losses[:-w] - losses[w:]          # improvement over the window
        d_energy = energy_kwh[w:] - energy_kwh[:-w]
        with np.errstate(divide="ignore", invalid="ignore"):
            rate = np.where(d_energy > 0, d_loss / d_energy, np.inf)
        stalled = np.nonzero(rate < self.min_improvement_per_kwh)[0]
        if stalled.size:
            return int(steps[stalled[0] + w])
        return None
