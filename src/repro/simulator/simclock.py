"""Explicit simulated time.

All simulator components share a :class:`SimClock`; nothing reads the wall
clock, so simulations are reproducible bit-for-bit and can cover hours of
"training" in milliseconds of real time.  The clock is callable, so it
plugs directly into :class:`~repro.core.experiment.RunExecution` as the
run's time source — provenance timestamps come out in simulated time.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    __slots__ = ("_now", "epoch_offset")

    def __init__(self, start: float = 0.0, epoch_offset: float = 1_700_000_000.0) -> None:
        """``epoch_offset`` shifts simulated 0 into a plausible epoch-seconds
        range so provenance timestamps render as real dates."""
        self._now = float(start)
        self.epoch_offset = float(epoch_offset)

    def now(self) -> float:
        """Current simulated time in seconds since simulation start."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by *dt* seconds; returns the new time."""
        if dt < 0:
            raise SimulationError(f"cannot advance clock by negative dt: {dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Jump to absolute simulated time *t* (must not move backwards)."""
        if t < self._now:
            raise SimulationError(f"cannot move clock backwards: {t} < {self._now}")
        self._now = t
        return self._now

    def __call__(self) -> float:
        """Epoch-seconds view (for use as a RunExecution clock)."""
        return self.epoch_offset + self._now

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.3f}s)"
