"""Training-loop simulation with walltime caps and provenance collection.

:func:`simulate_training` runs one pre-training job of the §5 scaling study:
a model from the zoo, an allocation of GPUs, the (synthetic) MODIS dataset,
a target epoch count and a walltime limit.  Because step time is
deterministic per job, the loop is evaluated *analytically* — loss and
telemetry trajectories are produced as vectorized arrays — yet everything a
real yProv4ML-instrumented run would log is logged: parameters, per-epoch
activities on simulated time, metric time-series (loss, throughput, power,
cumulative energy), the dataset descriptor as an input artifact, and the
final checkpoint as an output ModelVersion.

Jobs that cannot finish their epoch target inside the walltime stop at the
cap and are marked ``TRUNCATED`` — these are Figure 3's empty cells.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.core.context import Context
from repro.core.experiment import RunExecution, RunStatus
from repro.errors import SimulationError, WalltimeExceededError
from repro.simulator.cluster import Allocation, ClusterSpec, frontier
from repro.simulator.data import SyntheticMODIS
from repro.simulator.ddp import DDPEngine, ModelConfig, StepTiming
from repro.simulator.lossmodel import ScalingLawLoss
from repro.simulator.models import model_zoo
from repro.simulator.power import EnergyAccount, PowerModel
from repro.simulator.simclock import SimClock


@dataclass(frozen=True)
class TrainingJob:
    """One cell of the scaling-study grid."""

    model: ModelConfig
    n_gpus: int
    dataset: SyntheticMODIS = field(default_factory=SyntheticMODIS)
    epochs: int = 10
    batch_per_gpu: int = 32
    walltime_s: float = 7200.0  # the paper's 2-hour cap
    cluster: Optional[ClusterSpec] = None
    mfu: float = 0.35
    seed: int = 0
    log_every_steps: int = 20

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise SimulationError("epochs must be positive")
        if self.walltime_s <= 0:
            raise SimulationError("walltime must be positive")

    def resolve_cluster(self) -> ClusterSpec:
        return self.cluster if self.cluster is not None else frontier()

    @property
    def size_label(self) -> str:
        """Human size label ('100M', '1.4B') derived from the zoo model name."""
        # zoo models are named "<arch>-<size>"; fall back to the raw count
        name = getattr(self.model, "name", "")
        if "-" in name:
            return name.rsplit("-", 1)[1]
        millions = self.model.param_count / 1e6
        if millions >= 1000:
            return f"{millions / 1000:.1f}B"
        return f"{millions:.0f}M"


@dataclass
class TrainingResult:
    """Outcome of one simulated job."""

    job: TrainingJob
    completed: bool
    steps_done: int
    steps_target: int
    epochs_done: int
    wall_time_s: float
    final_loss: float
    energy: EnergyAccount
    step_timing: StepTiming
    throughput_samples_s: float
    loss_steps: np.ndarray
    loss_values: np.ndarray
    run_id: Optional[str] = None
    prov_path: Optional[Path] = None

    @property
    def energy_kwh(self) -> float:
        return self.energy.total_kwh

    @property
    def tradeoff(self) -> float:
        """The paper's Figure 3 metric: loss × total energy (kWh)."""
        return self.final_loss * self.energy_kwh

    def carbon_g(self, intensity_g_per_kwh: float = 380.0) -> float:
        """Estimated emissions (gCO2e) at a grid carbon intensity.

        The default 380 g/kWh is a typical mixed grid; pass the facility's
        actual intensity for site-specific accounting (the sustainability
        framing of the paper's conclusions).
        """
        if intensity_g_per_kwh < 0:
            raise SimulationError("carbon intensity must be non-negative")
        return self.energy_kwh * intensity_g_per_kwh

    @property
    def mean_power_w(self) -> float:
        if self.wall_time_s == 0:
            return 0.0
        return self.energy.total_joules / self.wall_time_s


def job_from_zoo(
    architecture: str,
    size: str,
    n_gpus: int,
    **kwargs,
) -> TrainingJob:
    """Convenience: build a job from the (architecture, size) zoo."""
    zoo = model_zoo()
    if architecture not in zoo:
        raise SimulationError(f"unknown architecture: {architecture!r}")
    if size not in zoo[architecture]:
        raise SimulationError(f"unknown size: {size!r}")
    return TrainingJob(model=zoo[architecture][size], n_gpus=n_gpus, **kwargs)


def simulate_training(
    job: TrainingJob,
    clock: Optional[SimClock] = None,
    provenance_dir: Optional[Union[str, Path]] = None,
    metric_format: str = "zarrlike",
    strict_walltime: bool = False,
) -> TrainingResult:
    """Simulate one training job; optionally record yProv4ML provenance.

    With ``strict_walltime=True`` a truncated job raises
    :class:`~repro.errors.WalltimeExceededError` instead of returning a
    truncated result.
    """
    clock = clock or SimClock()
    cluster = job.resolve_cluster()
    allocation = cluster.allocate(job.n_gpus)
    engine = DDPEngine(
        model=job.model,
        allocation=allocation,
        batch_per_gpu=job.batch_per_gpu,
        mfu=job.mfu,
    )
    engine.check_memory()
    timing = engine.step_timing()
    power = PowerModel(allocation)

    steps_per_epoch = max(1, -(-job.dataset.n_patches // engine.global_batch))
    steps_target = steps_per_epoch * job.epochs
    max_steps_by_walltime = int(job.walltime_s // timing.step_s)
    steps_done = min(steps_target, max_steps_by_walltime)
    completed = steps_done >= steps_target
    if steps_done == 0:
        raise SimulationError(
            f"walltime {job.walltime_s}s cannot fit a single step "
            f"({timing.step_s:.1f}s) for {job.model.name} on {job.n_gpus} GPUs"
        )
    if not completed and strict_walltime:
        raise WalltimeExceededError(
            f"{job.model.name} on {job.n_gpus} GPUs needs "
            f"{steps_target * timing.step_s:.0f}s > walltime {job.walltime_s}s"
        )
    epochs_done = steps_done // steps_per_epoch
    wall_time = steps_done * timing.step_s

    # loss trajectory ------------------------------------------------------------
    tokens_per_step = engine.global_batch * job.model.tokens_per_sample
    loss_model = ScalingLawLoss(
        architecture=job.model.architecture,
        param_count=job.model.param_count,
        unique_tokens=job.dataset.n_patches * job.model.tokens_per_sample,
        seed=job.seed,
    )
    log_steps = np.arange(1, steps_done + 1, job.log_every_steps, dtype=np.int64)
    if log_steps[-1] != steps_done:
        log_steps = np.append(log_steps, steps_done)
    loss_values = loss_model.loss_curve(log_steps, tokens_per_step)
    final_loss = loss_model.final_loss(steps_done, tokens_per_step)

    # energy ----------------------------------------------------------------------
    energy = EnergyAccount()
    compute_time = steps_done * timing.compute_s
    comm_time = steps_done * timing.exposed_comm_s
    energy.add("compute", power.compute_power_w, compute_time)
    energy.add("communication", power.comm_power_w, comm_time)

    throughput = engine.throughput_samples_per_s()

    result = TrainingResult(
        job=job,
        completed=completed,
        steps_done=steps_done,
        steps_target=steps_target,
        epochs_done=epochs_done,
        wall_time_s=wall_time,
        final_loss=final_loss,
        energy=energy,
        step_timing=timing,
        throughput_samples_s=throughput,
        loss_steps=log_steps,
        loss_values=loss_values,
    )

    if provenance_dir is not None:
        _record_provenance(result, clock, Path(provenance_dir), metric_format)
    else:
        clock.advance(wall_time)
    return result


# ---------------------------------------------------------------------------
# provenance integration
# ---------------------------------------------------------------------------

def _record_provenance(
    result: TrainingResult,
    clock: SimClock,
    provenance_dir: Path,
    metric_format: str,
) -> None:
    """Drive a RunExecution on simulated time, mirroring the job timeline."""
    job = result.job
    timing = result.step_timing
    run_id = (
        f"{job.model.architecture}_{job.size_label}_{job.n_gpus}gpu"
        f"_b{job.batch_per_gpu}_e{job.epochs}_d{job.dataset.n_patches}"
        f"_seed{job.seed}"
    )
    experiment = f"scaling_{job.model.architecture}"
    run = RunExecution(
        experiment_name=experiment,
        run_id=run_id,
        save_dir=provenance_dir / run_id,
        user_namespace="https://ornl.example.org/modis-fm/",
        username="modis-fm",
        clock=clock,
    )
    run.start()
    start_t = clock.now()

    run.log_param("architecture", job.model.architecture)
    run.log_param("model_name", job.model.name)
    run.log_param("param_count", float(job.model.param_count))
    run.log_param("model_size", job.size_label)
    run.log_param("n_gpus", job.n_gpus)
    run.log_param("batch_per_gpu", job.batch_per_gpu)
    run.log_param("global_batch", job.batch_per_gpu * job.n_gpus)
    run.log_param("epochs_target", job.epochs)
    run.log_param("walltime_s", job.walltime_s)
    run.log_param("dataset_patches", job.dataset.n_patches)
    run.log_param("dataset_fraction", job.dataset.n_patches / 800_000)
    run.log_param("mfu", job.mfu)
    run.log_param("seed", job.seed)
    run.log_param("cluster", job.resolve_cluster().name)

    # dataset descriptor as an input artifact ("used" in Figure 1)
    run.log_artifact_bytes(
        "dataset_descriptor.json",
        json.dumps(job.dataset.descriptor(), indent=1).encode(),
        is_input=True,
        context=Context.TRAINING,
    )

    # epoch activities on simulated time (run these first so context end
    # times cover every metric timestamp)
    steps_per_epoch = max(1, result.steps_target // job.epochs)
    epoch_duration = steps_per_epoch * timing.step_s
    for epoch in range(result.epochs_done):
        run.start_epoch(Context.TRAINING, epoch)
        clock.advance(epoch_duration)
        run.end_epoch(Context.TRAINING)
    if clock.now() < start_t + result.wall_time_s:
        # partial final epoch of a truncated run (and float-rounding slack)
        run.start_epoch(Context.TRAINING, result.epochs_done)
        clock.advance_to(start_t + result.wall_time_s)
        run.end_epoch(Context.TRAINING)

    # metric trajectories on simulated timestamps, clamped to the run end so
    # accumulated-advance rounding cannot push a sample past its context
    base_epoch_seconds = clock.epoch_offset + start_t
    end_epoch_seconds = clock()
    times = np.minimum(
        base_epoch_seconds + result.loss_steps.astype(np.float64) * timing.step_s,
        end_epoch_seconds,
    )
    epoch_of_step = np.minimum(
        (result.loss_steps - 1) // steps_per_epoch, job.epochs - 1
    ).astype(np.int64)
    run.log_metric_array(
        "loss", result.loss_steps, result.loss_values, times,
        context=Context.TRAINING, epochs=epoch_of_step,
    )
    n_log = result.loss_steps.shape[0]
    power = PowerModel(cluster_alloc := job.resolve_cluster().allocate(job.n_gpus))
    step_energy_j = (
        timing.compute_s * power.compute_power_w
        + timing.exposed_comm_s * power.comm_power_w
    )
    cumulative = result.loss_steps.astype(np.float64) * step_energy_j
    run.log_metric_array(
        "energy_joules", result.loss_steps, cumulative, times,
        context=Context.TRAINING, epochs=epoch_of_step,
    )
    mean_power = step_energy_j / timing.step_s
    run.log_metric_array(
        "power_w",
        result.loss_steps,
        np.full(n_log, mean_power),
        times,
        context=Context.TRAINING,
        epochs=epoch_of_step,
    )
    run.log_metric_array(
        "throughput_samples_s",
        result.loss_steps,
        np.full(n_log, result.throughput_samples_s),
        times,
        context=Context.TRAINING,
        epochs=epoch_of_step,
    )

    # validation context: one held-out evaluation at the end
    run.log_metric("val_loss", result.final_loss * 1.02, context=Context.VALIDATION)

    # summary metrics
    run.log_metric("final_loss", result.final_loss, context=Context.TESTING)
    run.log_metric("total_energy_kwh", result.energy_kwh, context=Context.TESTING)
    run.log_metric("carbon_g_co2e", result.carbon_g(), context=Context.TESTING)
    run.log_metric("tradeoff_loss_x_kwh", result.tradeoff, context=Context.TESTING)
    run.log_metric("completed", 1.0 if result.completed else 0.0, context=Context.TESTING)

    run.log_artifact_bytes(
        "checkpoint_final.json",
        json.dumps(
            {
                "model": job.model.name,
                "steps": result.steps_done,
                "final_loss": result.final_loss,
            }
        ).encode(),
        is_model=True,
        context=Context.TRAINING,
    )

    run.end(RunStatus.FINISHED if result.completed else RunStatus.TRUNCATED)
    paths = run.save(metric_format=metric_format)
    result.run_id = run.run_id
    result.prov_path = paths["prov"]
