"""DDP step timing: compute + gradient allreduce with overlap.

Distributed Data Parallel replicates the model on every device; each step
runs forward+backward on a local micro-batch, then averages gradients with
an allreduce that modern implementations overlap with the tail of the
backward pass (bucketed gradients).  The engine models exactly that:

* ``compute_s`` — training FLOPs per local batch over the device's
  *achieved* throughput (peak × MFU);
* ``comm_s`` — the ring-allreduce time for one gradient copy;
* ``exposed_comm_s`` — the part of the allreduce not hidden behind the
  backward pass (overlap window ≈ backward ≈ 2/3 of compute);
* memory feasibility — parameters, gradients, Adam states and an
  activation estimate against device HBM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import SimulationError
from repro.simulator.cluster import Allocation
from repro.simulator.comm import RingAllreduceModel
from repro.simulator.models import MAEConfig, SwinConfig, TransformerConfig

ModelConfig = Union[TransformerConfig, MAEConfig, SwinConfig]

#: Adam in mixed precision: bf16 weights+grads (2+2) plus fp32 master weights
#: and two moments (4+4+4) = 16 bytes per parameter.
_OPTIMIZER_BYTES_PER_PARAM = 16


@dataclass(frozen=True)
class StepTiming:
    """Timing decomposition of one DDP training step."""

    compute_s: float
    comm_s: float
    exposed_comm_s: float

    @property
    def step_s(self) -> float:
        return self.compute_s + self.exposed_comm_s

    @property
    def comm_fraction(self) -> float:
        """Fraction of the step spent in *exposed* communication."""
        return self.exposed_comm_s / self.step_s if self.step_s > 0 else 0.0


@dataclass(frozen=True)
class DDPEngine:
    """Analytic DDP timing for (model, allocation, batch size)."""

    model: ModelConfig
    allocation: Allocation
    batch_per_gpu: int = 32
    mfu: float = 0.35  # achieved fraction of peak FLOPs
    overlap_fraction: float = 0.65  # how much of the backward hides comm
    activation_bytes_per_token: float = 64.0  # per layer, bf16 w/ checkpointing

    def __post_init__(self) -> None:
        if self.batch_per_gpu <= 0:
            raise SimulationError("batch_per_gpu must be positive")
        if not 0.0 < self.mfu <= 1.0:
            raise SimulationError(f"mfu must be in (0, 1]: {self.mfu}")
        if not 0.0 <= self.overlap_fraction <= 1.0:
            raise SimulationError("overlap_fraction must be in [0, 1]")

    # -- sizes -----------------------------------------------------------
    @property
    def global_batch(self) -> int:
        return self.batch_per_gpu * self.allocation.n_gpus

    @property
    def grad_bytes(self) -> float:
        return self.model.grad_bytes(dtype_bytes=2)

    # -- timing -----------------------------------------------------------
    def step_timing(self) -> StepTiming:
        """Compute/communication decomposition of one DDP step."""
        flops = self.model.train_flops_per_sample() * self.batch_per_gpu
        achieved = self.allocation.gpu.peak_flops_bf16 * self.mfu
        compute = flops / achieved
        ring = RingAllreduceModel(self.allocation)
        comm = ring.time(self.grad_bytes)
        backward = compute * (2.0 / 3.0)
        hidden = min(comm, backward * self.overlap_fraction)
        return StepTiming(compute_s=compute, comm_s=comm,
                          exposed_comm_s=comm - hidden)

    def throughput_samples_per_s(self) -> float:
        return self.global_batch / self.step_timing().step_s

    def scaling_efficiency(self) -> float:
        """Per-device memory: optimizer states plus a checkpointed-activation estimate."""
        """Weak-scaling efficiency vs. a single device (1.0 = perfect)."""
        single = Allocation(cluster=self.allocation.cluster, n_gpus=1, n_nodes=1)
        solo = DDPEngine(
            model=self.model,
            allocation=single,
            batch_per_gpu=self.batch_per_gpu,
            mfu=self.mfu,
            overlap_fraction=self.overlap_fraction,
        )
        ideal = solo.throughput_samples_per_s() * self.allocation.n_gpus
        return self.throughput_samples_per_s() / ideal if ideal > 0 else 0.0

    # -- memory -----------------------------------------------------------
    def memory_required_gb(self) -> float:
        """Per-device memory: optimizer states plus a checkpointed-activation estimate."""
        params = self.model.param_count
        states = params * _OPTIMIZER_BYTES_PER_PARAM
        tokens = self.model.tokens_per_sample * self.batch_per_gpu
        depth = getattr(self.model, "depth", None)
        if depth is None:  # Swin: use total block count
            depth = sum(self.model.stage_depths)  # type: ignore[union-attr]
        hidden = getattr(self.model, "hidden_dim", None) or getattr(
            self.model, "base_dim"
        )
        activations = tokens * depth * hidden * self.activation_bytes_per_token / 16.0
        return (states + activations) / 1e9

    def fits_in_memory(self) -> bool:
        return self.memory_required_gb() <= self.allocation.gpu.memory_gb

    def check_memory(self) -> None:
        if not self.fits_in_memory():
            raise SimulationError(
                f"model {self.model.name} needs {self.memory_required_gb():.1f} GB "
                f"but {self.allocation.gpu.name} has {self.allocation.gpu.memory_gb} GB"
            )
