"""Distributed-training simulator (the paper's use-case substrate).

The paper's evaluation (§5, Figure 3) trains MAE-ViT and SwinT-V2
foundation-model baselines on Frontier with Distributed Data Parallel over
{8, 16, 32, 64, 128} GPUs and {100 M, 200 M, 600 M, 1.4 B} parameters,
under a 2-hour walltime, and reports the energy × performance trade-off
collected through yProv4ML.  No supercomputer is available offline, so this
package implements an *analytical simulator* of that system:

* :mod:`repro.simulator.simclock` — explicit simulated time;
* :mod:`repro.simulator.cluster` — cluster topology & device inventory
  (a Frontier-like preset: 8 MI250X GCDs per node, EPYC host, Slingshot
  interconnect);
* :mod:`repro.simulator.power` — device power and energy accounting;
* :mod:`repro.simulator.models` — transformer model zoo with analytic
  parameter/FLOP counting (ViT, MAE, SwinT-V2);
* :mod:`repro.simulator.data` — the synthetic MODIS dataset descriptor
  (800 k patches of 128×128×6);
* :mod:`repro.simulator.comm` — communication: a functional in-process
  SPMD communicator (mpi4py-style) and an analytic ring-allreduce cost
  model;
* :mod:`repro.simulator.lossmodel` — scaling-law loss curves
  (Kaplan/Chinchilla-style, with data-constrained repetition decay);
* :mod:`repro.simulator.ddp` — per-step timing of DDP training
  (compute + gradient allreduce overlap);
* :mod:`repro.simulator.training` — the training-loop simulator with
  walltime caps, integrated with yProv4ML provenance collection.

Everything is deterministic given the seeds; wall-clock time never enters
the simulation.
"""

from repro.simulator.simclock import SimClock
from repro.simulator.cluster import ClusterSpec, DeviceSpec, NodeSpec, Allocation, frontier
from repro.simulator.power import PowerModel, EnergyAccount
from repro.simulator.models import (
    TransformerConfig,
    MAEConfig,
    SwinConfig,
    model_zoo,
    MODEL_SIZES,
)
from repro.simulator.data import SyntheticMODIS
from repro.simulator.comm import ThreadComm, RingAllreduceModel
from repro.simulator.lossmodel import ScalingLawLoss
from repro.simulator.ddp import DDPEngine, StepTiming
from repro.simulator.training import (
    TrainingJob,
    TrainingResult,
    simulate_training,
)
from repro.simulator.finetune import (
    FinetuneJob,
    FinetuneResult,
    finetune_from_pretraining,
    simulate_finetuning,
)
from repro.simulator.faults import FailureModel, apply_failures

__all__ = [
    "SimClock",
    "ClusterSpec",
    "DeviceSpec",
    "NodeSpec",
    "Allocation",
    "frontier",
    "PowerModel",
    "EnergyAccount",
    "TransformerConfig",
    "MAEConfig",
    "SwinConfig",
    "model_zoo",
    "MODEL_SIZES",
    "SyntheticMODIS",
    "ThreadComm",
    "RingAllreduceModel",
    "ScalingLawLoss",
    "DDPEngine",
    "StepTiming",
    "TrainingJob",
    "TrainingResult",
    "simulate_training",
    "FinetuneJob",
    "FinetuneResult",
    "simulate_finetuning",
    "finetune_from_pretraining",
    "FailureModel",
    "apply_failures",
]
